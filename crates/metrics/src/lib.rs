//! `ups-metrics` — measurement utilities for the paper's evaluation:
//! empirical CDFs/CCDFs and percentiles (Figures 1 and 3), flow-size
//! bucketed means (Figure 2), Jain's fairness index over sliding windows
//! (Figure 4), summary statistics for the Table 1 reports, and deadline
//! miss-rate/lateness ledgers recorded through the `ups-obs` registry.

#![forbid(unsafe_code)]

pub mod deadline;
pub mod fairness;
pub mod stats;

pub use deadline::{DeadlineLedger, DeadlineStats};
pub use fairness::{jain_index, throughput_fairness_series, FairnessPoint};
pub use stats::{bucket_means, percentile, Cdf, SizeBuckets, Summary, Welford};
