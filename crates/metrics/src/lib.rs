//! `ups-metrics` — measurement utilities for the paper's evaluation:
//! empirical CDFs/CCDFs and percentiles (Figures 1 and 3), flow-size
//! bucketed means (Figure 2), Jain's fairness index over sliding windows
//! (Figure 4), and summary statistics for the Table 1 reports.

pub mod fairness;
pub mod stats;

pub use fairness::{jain_index, throughput_fairness_series, FairnessPoint};
pub use stats::{bucket_means, percentile, Cdf, SizeBuckets, Summary, Welford};
