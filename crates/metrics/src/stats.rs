//! Distribution summaries: empirical CDF/CCDF, percentiles, bucketed
//! means.

/// An empirical distribution built from `f64` samples.
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (NaNs rejected).
    pub fn new(mut samples: Vec<f64>) -> Cdf {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "NaN sample in CDF input"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples > `x` (complementary CDF).
    pub fn ccdf_at(&self, x: f64) -> f64 {
        1.0 - self.at(x)
    }

    /// The `p`-quantile (0 ≤ p ≤ 1), nearest-rank.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        self.sorted[idx.min(self.sorted.len() - 1)]
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// `F(x)` at each of the given points — the fixed-grid evaluation
    /// the sweep engine aggregates across seed replicates (every
    /// replicate reports its CDF on the same x-axis, so per-point
    /// mean ± stddev is well-defined).
    pub fn at_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.at(x)).collect()
    }

    /// Nearest-rank quantiles at each of the given probabilities
    /// (0 ≤ p ≤ 1). Panics on an empty CDF, like [`Cdf::quantile`].
    pub fn quantiles(&self, ps: &[f64]) -> Vec<f64> {
        ps.iter().map(|&p| self.quantile(p)).collect()
    }

    /// Evenly spaced (x, F(x)) points for plotting/reporting. Degenerate
    /// inputs stay meaningful: an empty CDF yields no points, and a
    /// constant distribution (`min == max`, a real occurrence at tiny
    /// sweep scales) yields the single point `(x, 1.0)` instead of `n`
    /// duplicates of it.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2);
        if self.sorted.is_empty() {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if lo == hi {
            return vec![(lo, 1.0)];
        }
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }
}

/// Nearest-rank percentile of unsorted data (convenience).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    Cdf::new(samples.to_vec()).quantile(p / 100.0)
}

/// Streaming mean/variance accumulator (Welford's online algorithm),
/// numerically stable for long runs. Used by the sweep engine to
/// aggregate per-seed replicates without holding samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Accumulate one sample. NaN is rejected (it would poison every
    /// later statistic silently).
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN sample in Welford input");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Samples accumulated so far.
    pub fn count(&self) -> usize {
        self.n as usize
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0.0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation (0.0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `stddev / sqrt(n)` (0.0 when empty).
    pub fn stderr(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.stddev() / (self.n as f64).sqrt()
        }
    }
}

/// Five-number-ish summary.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation (Welford; 0 for n < 2).
    pub stddev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize samples. Panics on empty input.
    pub fn of(samples: &[f64]) -> Summary {
        let cdf = Cdf::new(samples.to_vec());
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        Summary {
            n: cdf.len(),
            mean: cdf.mean(),
            stddev: w.stddev(),
            stderr: w.stderr(),
            p50: cdf.quantile(0.50),
            p99: cdf.quantile(0.99),
            max: cdf.quantile(1.0),
        }
    }
}

/// Flow-size bucket boundaries for Figure 2 style reporting: bucket `i`
/// holds flows with `size ≤ edges[i]` (sizes in packets), the last bucket
/// is open-ended.
#[derive(Debug, Clone)]
pub struct SizeBuckets {
    /// Upper edges, ascending.
    pub edges: Vec<u64>,
}

impl SizeBuckets {
    /// The paper's Figure 2 buckets (multiples of one MSS, then the tail),
    /// expressed in packets.
    pub fn paper_fig2() -> SizeBuckets {
        SizeBuckets {
            edges: vec![1, 2, 3, 5, 7, 40, 72, 200, 1_000, 10_000],
        }
    }

    /// Index of the bucket for a flow of `pkts` packets.
    pub fn index(&self, pkts: u64) -> usize {
        self.edges
            .iter()
            .position(|&e| pkts <= e)
            .unwrap_or(self.edges.len())
    }

    /// Number of buckets (edges + open tail).
    pub fn count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Label for bucket `i`. Total: with no edges there is exactly one
    /// (open) bucket, labelled `"all"` — indexing `edges` would panic.
    pub fn label(&self, i: usize) -> String {
        if self.edges.is_empty() {
            "all".to_string()
        } else if i == 0 {
            format!("<={}", self.edges[0])
        } else if i < self.edges.len() {
            format!("{}-{}", self.edges[i - 1] + 1, self.edges[i])
        } else {
            format!(">{}", self.edges[self.edges.len() - 1])
        }
    }
}

/// Mean of `values` grouped into `buckets` by `sizes` (parallel slices).
/// Returns `(mean, count)` per bucket; empty buckets give `(0, 0)`.
pub fn bucket_means(buckets: &SizeBuckets, sizes: &[u64], values: &[f64]) -> Vec<(f64, usize)> {
    assert_eq!(sizes.len(), values.len());
    let mut sum = vec![0f64; buckets.count()];
    let mut cnt = vec![0usize; buckets.count()];
    for (&s, &v) in sizes.iter().zip(values) {
        let b = buckets.index(s);
        sum[b] += v;
        cnt[b] += 1;
    }
    sum.iter()
        .zip(&cnt)
        .map(|(&s, &c)| if c == 0 { (0.0, 0) } else { (s / c as f64, c) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basic_properties() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(2.0), 0.5);
        assert_eq!(c.at(10.0), 1.0);
        assert_eq!(c.ccdf_at(3.0), 0.25);
        assert_eq!(c.mean(), 2.5);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let c = Cdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(c.quantile(0.5), 50.0);
        assert_eq!(c.quantile(0.99), 99.0);
        assert_eq!(c.quantile(1.0), 100.0);
        assert_eq!(c.quantile(0.0), 1.0);
    }

    #[test]
    fn at_many_and_quantiles_match_scalar_forms() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.at_many(&[0.5, 2.0, 10.0]), vec![0.0, 0.5, 1.0]);
        assert_eq!(c.quantiles(&[0.0, 0.5, 1.0]), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn points_are_monotone() {
        let c = Cdf::new(vec![5.0, 1.0, 9.0, 3.0, 3.0]);
        let pts = c.points(11);
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn points_of_constant_distribution_is_a_single_point() {
        let c = Cdf::new(vec![4.2; 7]);
        assert_eq!(c.points(11), vec![(4.2, 1.0)]);
    }

    #[test]
    fn points_of_empty_cdf_is_empty() {
        let c = Cdf::new(Vec::new());
        assert!(c.points(5).is_empty());
    }

    #[test]
    fn empty_edges_have_one_total_bucket() {
        let b = SizeBuckets { edges: Vec::new() };
        assert_eq!(b.count(), 1);
        assert_eq!(b.index(0), 0);
        assert_eq!(b.index(u64::MAX), 0);
        assert_eq!(b.label(0), "all");
    }

    #[test]
    fn buckets_index_and_label() {
        let b = SizeBuckets::paper_fig2();
        assert_eq!(b.index(1), 0);
        assert_eq!(b.index(2), 1);
        assert_eq!(b.index(6), 4);
        assert_eq!(b.index(1_000_000), b.count() - 1);
        assert_eq!(b.label(0), "<=1");
        assert!(b.label(b.count() - 1).starts_with('>'));
    }

    #[test]
    fn bucket_means_group_correctly() {
        let b = SizeBuckets {
            edges: vec![10, 100],
        };
        let sizes = [5, 7, 50, 500];
        let vals = [1.0, 3.0, 10.0, 100.0];
        let m = bucket_means(&b, &sizes, &vals);
        assert_eq!(m[0], (2.0, 2));
        assert_eq!(m[1], (10.0, 1));
        assert_eq!(m[2], (100.0, 1));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 3.0);
        assert!(s.stddev > 0.0);
        assert!((s.stderr - s.stddev / 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_textbook_stddev() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((w.stddev() - (32.0 / 7.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_is_all_zeros() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
        assert_eq!(w.stderr(), 0.0);
    }

    #[test]
    fn welford_single_sample_has_zero_spread() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.stddev(), 0.0, "sample stddev undefined at n=1 → 0");
        assert_eq!(w.stderr(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn welford_rejects_nan() {
        Welford::new().push(f64::NAN);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.stderr, 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        Cdf::new(vec![1.0, f64::NAN]);
    }
}
