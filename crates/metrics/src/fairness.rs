//! Jain's fairness index and throughput time series (Figure 4).
//!
//! "Figure 4 shows the fairness computed using Jain's Fairness Index,
//! from the throughput each flow receives per millisecond." We reproduce
//! that: per-window delivered bytes per flow → Jain index per window.

use ups_sim::{Dur, Time};

/// Jain's fairness index: `(Σx)² / (n · Σx²)`; 1 = perfectly fair.
/// Zero-throughput flows count (they drag the index down), matching the
/// paper's treatment of not-yet-started flows.
pub fn jain_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len();
    assert!(n > 0, "jain_index of no flows");
    let sum: f64 = throughputs.iter().sum();
    let sumsq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 0.0;
    }
    sum * sum / (n as f64 * sumsq)
}

/// One fairness sample.
#[derive(Debug, Clone, Copy)]
pub struct FairnessPoint {
    /// End of the measurement window.
    pub t: Time,
    /// Jain index over per-flow bytes delivered in the window.
    pub jain: f64,
    /// Aggregate goodput in the window (bytes).
    pub total_bytes: u64,
}

/// Compute the Jain-index time series from per-packet deliveries.
///
/// `deliveries` is an iterator of `(delivery time, flow index, bytes)`;
/// `n_flows` fixes the index universe (flows that have not delivered
/// anything in a window count as zero); `window` is the paper's 1 ms.
pub fn throughput_fairness_series(
    deliveries: impl Iterator<Item = (Time, usize, u32)>,
    n_flows: usize,
    window: Dur,
    horizon: Time,
) -> Vec<FairnessPoint> {
    assert!(n_flows > 0 && window > Dur::ZERO);
    let n_windows = (horizon.as_ps()).div_ceil(window.as_ps()) as usize;
    let mut per_window: Vec<Vec<u64>> = vec![vec![0u64; n_flows]; n_windows];
    for (t, flow, bytes) in deliveries {
        if t >= horizon {
            continue;
        }
        let w = (t.as_ps() / window.as_ps()) as usize;
        per_window[w][flow] += bytes as u64;
    }
    per_window
        .into_iter()
        .enumerate()
        .map(|(w, flows)| {
            let xs: Vec<f64> = flows.iter().map(|&b| b as f64).collect();
            FairnessPoint {
                t: Time((w as u64 + 1) * window.as_ps()),
                jain: jain_index(&xs),
                total_bytes: flows.iter().sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_hog_gives_one_over_n() {
        let j = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn all_zero_is_zero() {
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn series_buckets_by_window() {
        let deliveries = vec![
            (Time::from_micros(100), 0usize, 1000u32),
            (Time::from_micros(200), 1, 1000),
            (Time::from_micros(1500), 0, 2000), // second window, flow 0 only
        ];
        let pts = throughput_fairness_series(
            deliveries.into_iter(),
            2,
            Dur::from_millis(1),
            Time::from_millis(2),
        );
        assert_eq!(pts.len(), 2);
        assert!((pts[0].jain - 1.0).abs() < 1e-12, "window 0 fair");
        assert!((pts[1].jain - 0.5).abs() < 1e-12, "window 1 is one-sided");
        assert_eq!(pts[0].total_bytes, 2000);
        assert_eq!(pts[1].total_bytes, 2000);
    }

    #[test]
    fn deliveries_past_horizon_ignored() {
        let pts = throughput_fairness_series(
            vec![(Time::from_millis(5), 0usize, 100u32)].into_iter(),
            1,
            Dur::from_millis(1),
            Time::from_millis(2),
        );
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.total_bytes == 0));
    }
}
