//! Deadline outcomes: miss rate and lateness distribution.
//!
//! Deadline-tagged flows (`ups-flowgen`'s `FlowClass`) carry a
//! completion budget relative to their start; after a run each tagged
//! flow either beat its absolute deadline or missed it by some
//! lateness. The [`DeadlineLedger`] records those outcomes *through*
//! an [`ups_obs::Registry`] — counters `deadline_tagged` /
//! `deadline_missed` plus the `lateness_us` histogram — so per-shard
//! ledgers inherit the registry's exactly associative, commutative
//! merge and fold to identical aggregates in any order.

use ups_obs::{CounterId, HistId, ObsLevel, Registry};
use ups_sim::Time;

/// Accumulates deadline-tagged flow outcomes into a metrics registry.
#[derive(Debug, Clone)]
pub struct DeadlineLedger {
    registry: Registry,
    tagged: CounterId,
    missed: CounterId,
    lateness_us: HistId,
}

impl Default for DeadlineLedger {
    fn default() -> Self {
        DeadlineLedger::new()
    }
}

impl DeadlineLedger {
    /// An empty ledger with its metrics registered.
    pub fn new() -> DeadlineLedger {
        let mut registry = Registry::new(ObsLevel::On);
        let tagged = registry.counter("deadline_tagged");
        let missed = registry.counter("deadline_missed");
        let lateness_us = registry.histogram("lateness_us");
        DeadlineLedger {
            registry,
            tagged,
            missed,
            lateness_us,
        }
    }

    /// Record one tagged flow's outcome: its absolute deadline and its
    /// completion time (`None` when the flow never finished). A late or
    /// unfinished flow counts as missed; late *completions* additionally
    /// record their lateness, in whole microseconds, into the histogram
    /// (an unfinished flow has no defined lateness).
    pub fn observe(&mut self, deadline: Time, completion: Option<Time>) {
        self.registry.inc(self.tagged);
        match completion {
            Some(done) if done <= deadline => {}
            Some(done) => {
                self.registry.inc(self.missed);
                let lateness_ps = done.as_ps() - deadline.as_ps();
                self.registry
                    .record(self.lateness_us, lateness_ps / 1_000_000);
            }
            None => self.registry.inc(self.missed),
        }
    }

    /// Fold another ledger in (counters add, histogram merges) —
    /// associative and commutative, like the registry merge it wraps.
    pub fn merge(&mut self, other: &DeadlineLedger) {
        self.registry.merge(other.registry());
    }

    /// The backing registry (e.g. for export alongside other metrics).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Reduce the ledger to summary statistics.
    pub fn stats(&self) -> DeadlineStats {
        let hist = self
            .registry
            .hist("lateness_us")
            .expect("registered in new()");
        DeadlineStats {
            tagged: self.registry.counter_value("deadline_tagged"),
            missed: self.registry.counter_value("deadline_missed"),
            mean_lateness_us: hist.mean(),
            p99_lateness_us: hist.quantile_upper(0.99) as f64,
        }
    }
}

/// Summary of deadline outcomes over a set of tagged flows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineStats {
    /// Deadline-tagged flows observed.
    pub tagged: u64,
    /// Flows that finished late or never finished.
    pub missed: u64,
    /// Mean lateness (µs) over *late completions* (0 when none).
    pub mean_lateness_us: f64,
    /// 99th-percentile lateness (µs) as a log2-bucket upper bound —
    /// integer-exact and merge-stable (see
    /// [`ups_obs::Histogram::quantile_upper`]).
    pub p99_lateness_us: f64,
}

impl DeadlineStats {
    /// Fraction of tagged flows that missed (0 when none were tagged).
    pub fn miss_rate(&self) -> f64 {
        if self.tagged == 0 {
            0.0
        } else {
            self.missed as f64 / self.tagged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> Time {
        Time::from_micros(us)
    }

    #[test]
    fn counts_on_time_late_and_unfinished() {
        let mut ledger = DeadlineLedger::new();
        ledger.observe(at(100), Some(at(90))); // on time
        ledger.observe(at(100), Some(at(100))); // exactly on time
        ledger.observe(at(100), Some(at(350))); // 250 µs late
        ledger.observe(at(100), None); // never finished
        let s = ledger.stats();
        assert_eq!((s.tagged, s.missed), (4, 2));
        assert_eq!(s.miss_rate(), 0.5);
        // Only the late completion has a lateness sample.
        assert_eq!(s.mean_lateness_us, 250.0);
        // 250 lives in [128, 256): bucket upper bound 255.
        assert_eq!(s.p99_lateness_us, 255.0);
    }

    #[test]
    fn empty_ledger_is_all_zero() {
        let s = DeadlineLedger::new().stats();
        assert_eq!((s.tagged, s.missed), (0, 0));
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.mean_lateness_us, 0.0);
        assert_eq!(s.p99_lateness_us, 0.0);
    }

    #[test]
    fn merged_shards_match_single_ledger() {
        let mut whole = DeadlineLedger::new();
        let mut left = DeadlineLedger::new();
        let mut right = DeadlineLedger::new();
        for i in 0..20u64 {
            let completion = (i % 3 != 0).then(|| at(100 + i * 17));
            whole.observe(at(120), completion);
            let shard = if i % 2 == 0 { &mut left } else { &mut right };
            shard.observe(at(120), completion);
        }
        let mut folded = left.clone();
        folded.merge(&right);
        assert_eq!(folded.stats(), whole.stats());
        // Commutative: the opposite fold order agrees.
        let mut other = right;
        other.merge(&left);
        assert_eq!(other.stats(), whole.stats());
    }
}
