//! `ups-core` — the Universal Packet Scheduling engine (NSDI 2016).
//!
//! This crate holds the paper's actual contribution, built on the
//! substrate crates (`ups-sim`, `ups-net`, `ups-sched`, `ups-topo`,
//! `ups-flowgen`, `ups-transport`, `ups-metrics`):
//!
//! * [`schedule`] — recorded schedules `{(path(p), i(p), o(p))}` with
//!   per-hop times and congestion-point analysis (§2.1, §2.2);
//! * [`replay`] — the replay engine: record an original schedule under
//!   any scheduler mix, re-run the identical input under LSTF /
//!   Priority / EDF / the omniscient UPS, score overdue fractions and
//!   queueing-delay ratios (§2.3, Table 1, Figure 1);
//! * [`deadline`] — the deadline replay objective: record EDF on
//!   per-packet virtual deadlines, replay with LSTF-using-deadline-slack
//!   (or EDF / static priority), score fidelity and per-flow lateness;
//! * [`omniscient`](mod@omniscient) — the Appendix B per-hop-vector UPS;
//! * [`objectives`] — the §3 slack-initialization heuristics (mean FCT,
//!   tail delay, fairness) and their experiment drivers (Figures 2–4);
//! * [`theory`] — executable versions of the appendix counterexamples
//!   (Figures 5, 6, 7): nonexistence of a black-box UPS, the priority
//!   cycle, and LSTF's three-congestion-point failure.
//!
//! # Quick start
//!
//! ```
//! use ups_core::replay::{replay_experiment, ReplayMode};
//! use ups_sched::SchedKind;
//! use ups_net::{FlowId, TraceLevel};
//! use ups_sim::{Bandwidth, Dur, Time};
//! use ups_topo::simple::star;
//! use ups_transport::FlowDesc;
//!
//! let factory = || star(4, Bandwidth::gbps(1), Dur::from_micros(5), TraceLevel::Hops);
//! let topo = factory();
//! let flows: Vec<FlowDesc> = (0..4)
//!     .map(|i| FlowDesc {
//!         id: FlowId(i),
//!         src: topo.hosts[i as usize],
//!         dst: topo.hosts[(i as usize + 1) % 4],
//!         pkts: 10,
//!         start: Time::ZERO,
//!         deadline: None,
//!     })
//!     .collect();
//! let (schedule, report) =
//!     replay_experiment(factory, &flows, SchedKind::Random, ReplayMode::lstf(), 1, 1500);
//! assert_eq!(report.total, 40);
//! assert!(report.frac_overdue() <= 1.0);
//! assert!(schedule.max_congestion_points() <= 2); // star topology
//! ```

#![forbid(unsafe_code)]

pub mod deadline;
pub mod objectives;
pub mod omniscient;
pub mod replay;
pub mod schedule;
pub mod theory;
pub mod workload;

pub use deadline::{
    deadline_flow_stats, record_deadline_original, replay_deadline, replay_deadline_lossy,
    DeadlineMode, DeadlineSchedule, DeadlineTag,
};
pub use objectives::{run_fairness, run_fct, run_goodput, run_tail_delays, Scheme};
pub use omniscient::{omniscient, Omniscient};
pub use replay::{
    record_original, replay_experiment, replay_schedule, replay_schedule_lossy, ReplayMode,
    ReplayReport,
};
pub use schedule::{RecordedPacket, RecordedSchedule};
pub use workload::{default_udp_workload, to_flow_descs, WorkloadKind};
