//! Recorded schedules — the formal object of §2.1.
//!
//! A schedule is the set `{(path(p), i(p), o(p))}` produced by running a
//! collection of scheduling algorithms over an input load. We extract it
//! from the network's hop-level telemetry after an *original* run,
//! keeping the per-hop scheduling times `o(p, α)` (for the omniscient UPS
//! and congestion-point analysis) and the per-hop queueing delays (for
//! Figure 1's delay-ratio CDF).

use std::sync::Arc;
use ups_net::{FlowId, NodeId, Path, Telemetry};
use ups_sim::{Dur, Time};

/// One packet of a recorded schedule.
#[derive(Debug, Clone)]
pub struct RecordedPacket {
    /// Flow identity (as injected in the original run).
    pub flow: FlowId,
    /// Sequence within the flow.
    pub seq: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// The path taken (fixed input in the formal model).
    pub path: Arc<Path>,
    /// Ingress arrival `i(p)`.
    pub i: Time,
    /// Network exit `o(p)` (full arrival at the destination host).
    pub o: Time,
    /// Per-hop scheduling times `o(p, α_k)` (transmission starts).
    pub hop_tx_start: Vec<Time>,
    /// Total queueing delay in the original schedule.
    pub qdelay: Dur,
    /// Number of hops at which the packet was forced to wait.
    pub congestion_points: usize,
}

impl RecordedPacket {
    /// Uncongested transit time over the recorded path.
    pub fn tmin(&self) -> Dur {
        self.path.tmin(self.size)
    }

    /// The replay slack `o(p) − i(p) − tmin(p, src, dest)` (§2.1).
    ///
    /// Non-negative for any viable schedule; an assertion in
    /// [`RecordedSchedule::from_telemetry`] enforces that invariant.
    pub fn slack(&self) -> i64 {
        self.o.signed_since(self.i) - self.tmin().as_i64()
    }
}

/// A complete recorded schedule.
#[derive(Debug, Clone)]
pub struct RecordedSchedule {
    /// All delivered packets, in injection (packet-id) order.
    pub packets: Vec<RecordedPacket>,
}

impl RecordedSchedule {
    /// Extract the schedule from an original run's telemetry.
    ///
    /// Requires hop-level tracing and a drop-free run (the formal model
    /// assumes no losses; replay experiments use unbounded buffers).
    pub fn from_telemetry(tel: &Telemetry) -> RecordedSchedule {
        assert_eq!(
            tel.counters.dropped, 0,
            "replay requires a drop-free original schedule"
        );
        assert_eq!(
            tel.counters.delivered, tel.counters.injected,
            "original run still has packets in flight"
        );
        let packets = tel
            .packets
            .iter()
            .map(|r| {
                let delivered = r.delivered.expect("undelivered packet in drop-free run");
                assert_eq!(
                    r.hops.len(),
                    r.path.hops(),
                    "hop tracing incomplete; build the network with TraceLevel::Hops"
                );
                let rec = RecordedPacket {
                    flow: r.flow,
                    seq: r.seq,
                    size: r.size,
                    src: r.src,
                    dst: r.dst,
                    path: Arc::clone(&r.path),
                    i: r.created,
                    o: delivered,
                    hop_tx_start: r.hops.iter().map(|h| h.tx_start).collect(),
                    qdelay: r.total_qdelay(),
                    congestion_points: r.congestion_points(),
                };
                debug_assert!(
                    rec.slack() >= 0,
                    "negative slack {} for packet {:?}/{} — o/i/tmin inconsistent",
                    rec.slack(),
                    rec.flow,
                    rec.seq
                );
                rec
            })
            .collect();
        RecordedSchedule { packets }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if no packets were recorded.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Histogram of congestion points per packet: `hist[k]` = packets
    /// that waited at exactly `k` hops (the quantity the replay theorems
    /// are stated in).
    pub fn congestion_point_histogram(&self) -> Vec<usize> {
        let max = self
            .packets
            .iter()
            .map(|p| p.congestion_points)
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for p in &self.packets {
            hist[p.congestion_points] += 1;
        }
        hist
    }

    /// Largest number of congestion points any packet saw.
    pub fn max_congestion_points(&self) -> usize {
        self.packets
            .iter()
            .map(|p| p.congestion_points)
            .max()
            .unwrap_or(0)
    }

    /// Mean slack across packets (diagnostic: the paper explains the
    /// utilization trend through growing average slack).
    pub fn mean_slack(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets.iter().map(|p| p.slack() as f64).sum::<f64>() / self.packets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::{PacketKind, SchedHeader, TraceLevel};
    use ups_sim::Bandwidth;
    use ups_topo::simple::line;

    fn run_line() -> RecordedSchedule {
        let mut topo = line(2, Bandwidth::gbps(1), Dur::from_micros(5), TraceLevel::Hops);
        let (h0, h1) = (topo.hosts[0], topo.hosts[1]);
        let routes = std::sync::Arc::clone(&topo.routes);
        for s in 0..4 {
            topo.net.inject(
                &routes,
                Time::ZERO,
                FlowId(0),
                s,
                1500,
                h0,
                h1,
                SchedHeader::default(),
                PacketKind::Data { bytes: 1460 },
            );
        }
        topo.net.run_to_completion();
        RecordedSchedule::from_telemetry(&topo.net.telemetry)
    }

    #[test]
    fn slack_equals_queueing_delay_on_a_line() {
        // On a single path with no cross traffic, a packet's end-to-end
        // delay is tmin + queueing, so slack == total queueing delay.
        let sched = run_line();
        for p in &sched.packets {
            assert_eq!(p.slack(), p.qdelay.as_i64(), "packet {}", p.seq);
        }
        // First packet never waits; later ones wait at the source NIC.
        assert_eq!(sched.packets[0].slack(), 0);
        assert!(sched.packets[3].slack() > 0);
    }

    #[test]
    fn congestion_histogram_counts_waits() {
        let sched = run_line();
        let hist = sched.congestion_point_histogram();
        // Packet 0 has 0 congestion points; packets 1-3 exactly one (the
        // host NIC); none have two.
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 3);
        assert_eq!(sched.max_congestion_points(), 1);
    }

    #[test]
    fn hop_tx_starts_are_recorded_in_order() {
        let sched = run_line();
        for p in &sched.packets {
            assert_eq!(p.hop_tx_start.len(), p.path.hops());
            assert!(p.hop_tx_start.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
