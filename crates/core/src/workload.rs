//! Bridging workload generation (`ups-flowgen`) to transport flow
//! descriptors, plus the standard experiment workloads.

use ups_flowgen::{DeadlineMixConfig, FlowSpec, IncastConfig, PoissonConfig};
use ups_sim::Dur;
use ups_topo::Topology;
use ups_transport::FlowDesc;

/// Convert generated flow specs into transport flow descriptors.
pub fn to_flow_descs(specs: &[FlowSpec]) -> Vec<FlowDesc> {
    specs
        .iter()
        .map(|f| FlowDesc {
            id: f.id,
            src: f.src,
            dst: f.dst,
            pkts: f.pkts,
            start: f.start,
            // Deadline-tagged classes carry their deadline into the
            // transport layer, where injection turns it into an initial
            // header slack for EDF/LSTF.
            deadline: f.class.deadline,
        })
        .collect()
}

/// The paper's default replay workload: Poisson UDP flows with
/// heavy-tailed sizes at `utilization` of the most-loaded core link,
/// arriving over `horizon`.
pub fn default_udp_workload(
    topo: &Topology,
    utilization: f64,
    horizon: Dur,
    seed: u64,
) -> Vec<FlowDesc> {
    let cfg = PoissonConfig {
        utilization,
        horizon,
        seed,
        ..Default::default()
    };
    to_flow_descs(&ups_flowgen::poisson_workload(topo, &cfg))
}

/// A named workload family a scenario can pair with any topology — the
/// uniform `(topo, utilization, horizon, seed) → flows` interface the
/// sweep engine's cells run on. Each kind keeps `utilization` meaningful
/// (see the generator docs for what link it calibrates against).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The paper's default: Poisson web flows with heavy-tailed sizes,
    /// calibrated to the most-loaded core link
    /// ([`ups_flowgen::poisson_workload`]).
    Web,
    /// Datacenter partition/aggregate fan-in bursts, calibrated to the
    /// receiver NIC ([`ups_flowgen::incast_workload`]).
    Incast,
    /// Short deadline-tagged urgent flows over best-effort background,
    /// jointly calibrated to the most-loaded core link
    /// ([`ups_flowgen::deadline_mix_workload`]).
    DeadlineMix,
}

impl WorkloadKind {
    /// Human label for report headers and artifact-adjacent docs.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Web => "web",
            WorkloadKind::Incast => "incast",
            WorkloadKind::DeadlineMix => "deadline-mix",
        }
    }

    /// Generate the workload as transport flow descriptors, ready for
    /// [`crate::replay::record_original`]. Pure in its arguments.
    pub fn build(
        self,
        topo: &Topology,
        utilization: f64,
        horizon: Dur,
        seed: u64,
    ) -> Vec<FlowDesc> {
        match self {
            WorkloadKind::Web => default_udp_workload(topo, utilization, horizon, seed),
            WorkloadKind::Incast => to_flow_descs(&ups_flowgen::incast_workload(
                topo,
                &IncastConfig {
                    // Fan-in capped by the host population on small
                    // fixtures; the generator clamps again defensively.
                    fan_in: 16.min(topo.hosts.len().saturating_sub(1)).max(1),
                    utilization,
                    horizon,
                    seed,
                    ..Default::default()
                },
            )),
            WorkloadKind::DeadlineMix => to_flow_descs(&ups_flowgen::deadline_mix_workload(
                topo,
                &DeadlineMixConfig {
                    utilization,
                    horizon,
                    seed,
                    ..Default::default()
                },
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    #[test]
    fn every_workload_kind_builds_deterministic_flows() {
        let topo = dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        );
        for kind in [
            WorkloadKind::Web,
            WorkloadKind::Incast,
            WorkloadKind::DeadlineMix,
        ] {
            let a = kind.build(&topo, 0.5, Dur::from_millis(5), 3);
            let b = kind.build(&topo, 0.5, Dur::from_millis(5), 3);
            assert!(!a.is_empty(), "{} produced no flows", kind.label());
            assert_eq!(a.len(), b.len(), "{} not deterministic", kind.label());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(
                    (x.start, x.src, x.dst, x.pkts),
                    (y.start, y.src, y.dst, y.pkts)
                );
            }
            assert!(a.iter().all(|f| f.src != f.dst && f.pkts >= 1));
        }
    }

    #[test]
    fn workload_roundtrips_through_descs() {
        let topo = dumbbell(
            2,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        );
        let flows = default_udp_workload(&topo, 0.5, Dur::from_millis(5), 3);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.src != f.dst && f.pkts >= 1));
    }
}
