//! Bridging workload generation (`ups-flowgen`) to transport flow
//! descriptors, plus the standard experiment workloads.

use ups_flowgen::{FlowSpec, PoissonConfig};
use ups_sim::Dur;
use ups_topo::Topology;
use ups_transport::FlowDesc;

/// Convert generated flow specs into transport flow descriptors.
pub fn to_flow_descs(specs: &[FlowSpec]) -> Vec<FlowDesc> {
    specs
        .iter()
        .map(|f| FlowDesc {
            id: f.id,
            src: f.src,
            dst: f.dst,
            pkts: f.pkts,
            start: f.start,
        })
        .collect()
}

/// The paper's default replay workload: Poisson UDP flows with
/// heavy-tailed sizes at `utilization` of the most-loaded core link,
/// arriving over `horizon`.
pub fn default_udp_workload(
    topo: &Topology,
    utilization: f64,
    horizon: Dur,
    seed: u64,
) -> Vec<FlowDesc> {
    let cfg = PoissonConfig {
        utilization,
        horizon,
        seed,
        ..Default::default()
    };
    to_flow_descs(&ups_flowgen::poisson_workload(topo, &cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    #[test]
    fn workload_roundtrips_through_descs() {
        let topo = dumbbell(
            2,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        );
        let flows = default_udp_workload(&topo, 0.5, Dur::from_millis(5), 3);
        assert!(!flows.is_empty());
        assert!(flows.iter().all(|f| f.src != f.dst && f.pkts >= 1));
    }
}
