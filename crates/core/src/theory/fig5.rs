//! Figure 5 / Appendix C — no UPS exists under black-box initialization.
//!
//! Two viable schedules (Case 1, Case 2) over the same network give the
//! critical packets `a` and `x` *identical* inputs `(i(·), o(·), path(·))`,
//! yet Case 1 is only replayable if `a` is served before `x` at their
//! shared first congestion point α0, and Case 2 only if `x` precedes `a`.
//! A deterministic scheduler restricted to black-box information makes
//! the same α0 decision in both cases, so it must fail at least one.
//!
//! The flows (all congestion points have unit transmission time):
//!
//! ```text
//! a: α0 → α1 → α2              x: α0 → α3 → α4
//! b1..b3: α1 (B's last hop)    y1,y2: α3 (Y's last hop)
//! c1,c2:  α2                   z:     α4
//! ```
//!
//! Published tables (arrival, service) at each node:
//!
//! ```text
//!        Case 1                        Case 2
//! α0: a(0,0), x(0,1)            α0: x(0,0), a(0,1)
//! α1: a(1,1), b1(2,2), b2(3,3), α1: a(2,2), b1(2,3), b2(3,4),
//!     b3(4,4)                       b3(4,5)
//! α2: c1(2,2), c2(3,3), a(2,4)  α2: c1(2,2), c2(3,3), a(3,4)
//! α3: x(2,2), y1(2,3), y2(3,4)  α3: x(1,1), y1(2,2), y2(3,3)
//! α4: z(2,2), x(3,3)            α4: z(2,2), x(2,3)
//! ```
//!
//! In both cases `i(a) = i(x) = 0`, `o(a) = 5`, `o(x) = 4`.

use super::{realize, PacketPlan, UnitNet};
#[cfg(test)]
use super::{EPS, UNIT};
use crate::replay::{replay_schedule, ReplayMode, ReplayReport};
use crate::schedule::RecordedSchedule;
use ups_net::FlowId;
use ups_sim::Time;

/// Which published case to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Requires `a` before `x` at α0.
    One,
    /// Requires `x` before `a` at α0.
    Two,
}

/// Index of packet `a` in the schedule; `x` is at [`X`].
pub const A: usize = 0;
/// Index of packet `x`.
pub const X: usize = 1;

/// Build the network and the recorded schedule for `case`.
pub fn build(case: Case) -> (UnitNet, RecordedSchedule) {
    let mut un = UnitNet::new();
    let a0 = un.cp("a0", 100);
    let a1 = un.cp("a1", 100);
    let a2 = un.cp("a2", 100);
    let a3 = un.cp("a3", 100);
    let a4 = un.cp("a4", 100);

    let fp_a = un.flow_path("A", &[a0, a1, a2], &[0, 0, 0]);
    let fp_x = un.flow_path("X", &[a0, a3, a4], &[0, 0, 0]);
    let fp_b = un.flow_path("B", &[a1], &[0]);
    let fp_c = un.flow_path("C", &[a2], &[0]);
    let fp_y = un.flow_path("Y", &[a3], &[0]);
    let fp_z = un.flow_path("Z", &[a4], &[0]);

    let plan = |flow: u64, seq: u64, fp: &super::FlowPath, arr: i64, scheds: Vec<i64>| PacketPlan {
        flow: FlowId(flow),
        seq,
        size: 1500,
        fp: fp.clone(),
        arrival_x100: arr * 100,
        cp_sched_x100: scheds.into_iter().map(|t| t * 100).collect(),
    };

    // Per-case service times straight from the published tables.
    let (a_scheds, x_scheds, b_scheds, y_scheds) = match case {
        Case::One => (vec![0, 1, 4], vec![1, 2, 3], [2, 3, 4], [3, 4]),
        Case::Two => (vec![1, 2, 4], vec![0, 1, 3], [3, 4, 5], [2, 3]),
    };

    let mut plans = vec![
        plan(0, 0, &fp_a, 0, a_scheds),
        plan(1, 0, &fp_x, 0, x_scheds),
    ];
    for (k, &t) in b_scheds.iter().enumerate() {
        plans.push(plan(2, k as u64, &fp_b, 2 + k as i64, vec![t]));
    }
    for (k, arr) in [(0i64, 2i64), (1, 3)] {
        plans.push(plan(3, k as u64, &fp_c, arr, vec![arr]));
    }
    for (k, &t) in y_scheds.iter().enumerate() {
        plans.push(plan(4, k as u64, &fp_y, 2 + k as i64, vec![t]));
    }
    plans.push(plan(5, 0, &fp_z, 2, vec![2]));

    let sched = realize(&un, &plans);
    (un, sched)
}

/// LSTF replay of one case.
pub fn lstf_replay(case: Case) -> (RecordedSchedule, ReplayReport) {
    let (un, sched) = build(case);
    let mut topo = un.into_topology("fig5");
    let report = replay_schedule(&mut topo, &sched, ReplayMode::lstf());
    (sched, report)
}

/// The nonexistence demonstration: `a` and `x` carry identical black-box
/// inputs in both cases, and the deterministic LSTF replay fails at
/// least one case. Returns `(o(a), o(x), case-1 report, case-2 report)`.
pub fn demonstrate() -> (Time, Time, ReplayReport, ReplayReport) {
    let (s1, r1) = lstf_replay(Case::One);
    let (s2, r2) = lstf_replay(Case::Two);
    assert_eq!(s1.packets[A].i, s2.packets[A].i);
    assert_eq!(s1.packets[A].o, s2.packets[A].o);
    assert_eq!(s1.packets[X].i, s2.packets[X].i);
    assert_eq!(s1.packets[X].o, s2.packets[X].o);
    (s1.packets[A].o, s1.packets[X].o, r1, r2)
}

#[cfg(test)]
mod tests {
    use super::super::BASE;
    use super::*;

    #[test]
    fn a_and_x_have_identical_blackbox_inputs_across_cases() {
        let (sa, _) = build(Case::One);
        let (sb, _) = build(Case::Two);
        drop((sa, sb));
        let (s1, _) = lstf_replay(Case::One);
        let (s2, _) = lstf_replay(Case::Two);
        for idx in [A, X] {
            assert_eq!(s1.packets[idx].i, s2.packets[idx].i, "i differs");
            assert_eq!(s1.packets[idx].o, s2.packets[idx].o, "o differs");
            assert_eq!(
                s1.packets[idx].path.links, s2.packets[idx].path.links,
                "path differs"
            );
        }
        // And they match the published values exactly: i = 0, o(a) = 5,
        // o(x) = 4 units.
        assert_eq!(s1.packets[A].i, BASE);
        assert_eq!(s1.packets[A].o, BASE + UNIT * 5);
        assert_eq!(s1.packets[X].o, BASE + UNIT * 4);
    }

    #[test]
    fn deterministic_lstf_fails_at_least_one_case() {
        let (_, _, r1, r2) = demonstrate();
        let failed = [&r1, &r2]
            .iter()
            .filter(|r| r.max_lateness() > UNIT.as_i64() / 3)
            .count();
        assert!(
            failed >= 1,
            "LSTF replayed both Figure 5 cases (lateness: case1 {:?}, case2 {:?})",
            super::super::lateness_units(&r1),
            super::super::lateness_units(&r2)
        );
    }

    #[test]
    fn lstf_slack_order_prefers_x_so_case_one_fails() {
        // slack(a) = 5 − 0 − 3 = 2 units; slack(x) = 4 − 0 − 3 = 1 unit:
        // LSTF serves x first at α0 in *both* cases, which is exactly
        // what Case 1 cannot tolerate.
        let (s1, r1) = lstf_replay(Case::One);
        assert_eq!(s1.packets[A].slack(), 2 * UNIT.as_i64());
        assert_eq!(s1.packets[X].slack(), UNIT.as_i64());
        assert!(
            r1.max_lateness() > UNIT.as_i64() / 3,
            "case 1 should fail: {:?}",
            super::super::lateness_units(&r1)
        );
    }

    #[test]
    fn the_matching_case_replays_cleanly() {
        // Case 2 wants x first — which LSTF does — so it replays within
        // epsilon.
        let (_, r2) = lstf_replay(Case::Two);
        assert!(
            r2.max_lateness() <= EPS,
            "case 2 lateness: {:?}",
            super::super::lateness_units(&r2)
        );
    }

    #[test]
    fn omniscient_initialization_replays_both_cases() {
        // Appendix B: with per-hop vectors (not black-box!), both cases
        // replay — locating the impossibility squarely in the
        // information model.
        for case in [Case::One, Case::Two] {
            let (un, sched) = build(case);
            let mut topo = un.into_topology("fig5");
            let report = replay_schedule(&mut topo, &sched, ReplayMode::Omniscient);
            assert!(
                report.max_lateness() <= EPS,
                "omniscient case {case:?}: {:?}",
                super::super::lateness_units(&report)
            );
        }
    }

    #[test]
    fn schedules_are_viable() {
        for case in [Case::One, Case::Two] {
            let (_, sched) = build(case);
            for p in &sched.packets {
                assert!(p.slack() >= 0, "negative slack in {case:?}");
            }
            assert_eq!(sched.packets.len(), 10);
        }
    }
}
