//! Figure 6 / Appendix F — simple priorities fail with two congestion
//! points per packet, for *any* static priority assignment.
//!
//! Three flows, three congestion points with transmission times 1, 0.5,
//! and 0.2 units; packet `a` additionally crosses a 2-unit propagation
//! link L between α1 and α3:
//!
//! ```text
//! α1 (T=1):   a(0,0),   b(0,1)
//! α2 (T=0.5): b(2,2),   c(2,2.5)
//! α3 (T=0.2): c(3,3),   a(3,3.2)
//! ```
//!
//! Replaying needs `prio(a) < prio(b)` at α1, `prio(b) < prio(c)` at α2
//! and `prio(c) < prio(a)` at α3 — a cycle no static assignment
//! satisfies. LSTF, by contrast, replays this schedule (every packet has
//! at most two congestion points).

use super::{realize, PacketPlan, UnitNet, EPS, UNIT};
use crate::replay::{replay_schedule, ReplayMode, ReplayReport};
use crate::schedule::RecordedSchedule;
use std::sync::Arc;
use ups_net::{FlowId, PacketKind, SchedHeader};
use ups_sched::priority;

/// Build the Figure 6 network and schedule.
pub fn build() -> (UnitNet, RecordedSchedule) {
    let mut un = UnitNet::new();
    let a1 = un.cp("a1", 100); // T = 1
    let a2 = un.cp("a2", 50); // T = 0.5
    let a3 = un.cp("a3", 20); // T = 0.2

    // a: α1 → (L: 2 units propagation) → α3.
    let fp_a = un.flow_path("A", &[a1, a3], &[0, 200]);
    // b: α1 → α2 (no extra delay).
    let fp_b = un.flow_path("B", &[a1, a2], &[0, 0]);
    // c: α2 → α3.
    let fp_c = un.flow_path("C", &[a2, a3], &[0, 0]);

    let plan = |flow: u64, fp: &super::FlowPath, arr: i64, scheds: Vec<i64>| PacketPlan {
        flow: FlowId(flow),
        seq: 0,
        size: 1500,
        fp: fp.clone(),
        arrival_x100: arr,
        cp_sched_x100: scheds,
    };

    let plans = vec![
        plan(0, &fp_a, 0, vec![0, 320]),     // a: α1@0, α3@3.2
        plan(1, &fp_b, 0, vec![100, 200]),   // b: α1@1, α2@2
        plan(2, &fp_c, 200, vec![250, 300]), // c: α2@2.5, α3@3
    ];
    let sched = realize(&un, &plans);
    (un, sched)
}

/// Replay Figure 6 with the given static priorities for (a, b, c);
/// returns the report. Lower value = higher priority.
pub fn priority_replay(prios: [i64; 3]) -> ReplayReport {
    let (un, sched) = build();
    let mut topo = un.into_topology("fig6");
    topo.net.configure_links(|_| {
        ups_net::LinkPolicy::keep()
            .buffer(None)
            .scheduler(Box::new(priority()))
    });
    for (k, rec) in sched.packets.iter().enumerate() {
        topo.net.inject_on_path(
            rec.i,
            rec.flow,
            rec.seq,
            rec.size,
            rec.src,
            rec.dst,
            Arc::clone(&rec.path),
            SchedHeader {
                slack: 0,
                prio: prios[k],
                hop_times: None,
            },
            PacketKind::Data { bytes: 1460 },
        );
    }
    topo.net.run_to_completion();
    let tel = &topo.net.telemetry;
    let mut lateness = Vec::new();
    let mut overdue = 0;
    for (rec, rep) in sched.packets.iter().zip(&tel.packets) {
        let late = rep.delivered.expect("delivered").signed_since(rec.o);
        if late > EPS {
            overdue += 1;
        }
        lateness.push(late);
    }
    ReplayReport {
        mode: ReplayMode::Priority,
        total: sched.packets.len(),
        overdue,
        overdue_gt_t: 0,
        lost: 0,
        t: UNIT,
        lateness,
        qdelay_ratios: Vec::new(),
    }
}

/// LSTF replay of the same schedule.
pub fn lstf_replay() -> ReplayReport {
    let (un, sched) = build();
    let mut topo = un.into_topology("fig6");
    replay_schedule(&mut topo, &sched, ReplayMode::lstf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_realizes_published_exits() {
        let (_, sched) = build();
        let base = super::super::BASE;
        let u = UNIT.as_ps() as i64;
        // o(a) = 3.4 units, o(b) = 2.5, o(c) = 3.2 (±eps of fast hops).
        let close = |t: ups_sim::Time, units_x10: i64| {
            (t.signed_since(base) - units_x10 * u / 10).abs() < 10 * EPS
        };
        assert!(
            close(sched.packets[0].o, 34),
            "o(a) = {}",
            sched.packets[0].o
        );
        assert!(
            close(sched.packets[1].o, 25),
            "o(b) = {}",
            sched.packets[1].o
        );
        assert!(
            close(sched.packets[2].o, 32),
            "o(c) = {}",
            sched.packets[2].o
        );
    }

    #[test]
    fn every_static_priority_assignment_fails() {
        // All six strict orderings of {a, b, c}: the priority cycle
        // guarantees at least one overdue packet each time.
        let orders: [[i64; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for prios in orders {
            let rep = priority_replay(prios);
            assert!(
                rep.overdue >= 1,
                "priorities {prios:?} unexpectedly replayed Figure 6 \
                 (lateness {:?})",
                super::super::lateness_units(&rep)
            );
        }
    }

    #[test]
    fn lstf_replays_two_congestion_points() {
        // Every packet here has ≤ 2 congestion points, so LSTF succeeds
        // (§2.2 key result 2), up to the fast-hop epsilon.
        let rep = lstf_replay();
        assert!(
            rep.max_lateness() <= EPS,
            "LSTF lateness {:?} units",
            super::super::lateness_units(&rep)
        );
    }

    #[test]
    fn omniscient_also_replays_fig6() {
        let (un, sched) = build();
        let mut topo = un.into_topology("fig6");
        let rep = replay_schedule(&mut topo, &sched, ReplayMode::Omniscient);
        assert!(rep.perfect());
    }
}
