//! Executable versions of the paper's appendix constructions.
//!
//! The appendix examples (Figures 5, 6, 7) are stated on idealized
//! networks: congestion points with unit transmission time, all other
//! hops free. This module provides
//!
//! * [`UnitNet`] — a builder for such networks on the real simulator
//!   (congestion points are single-server unit links; everything else is
//!   an idealized zero-serialization wire, so every event lands on the
//!   tables' integer grid exactly);
//! * [`realize`] — hand-construction of *viable* recorded schedules from
//!   per-congestion-point intended times. The formal model allows
//!   non-work-conserving originals (§2.1), so intended times may include
//!   idle waiting; realized times respect arrival causality and link
//!   serialization exactly.
//!
//! Submodules [`fig5`], [`fig6`], [`fig7`] encode the three
//! counterexamples and assert their published outcomes.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

pub mod fig5;
pub mod fig6;
pub mod fig7;

use crate::schedule::{RecordedPacket, RecordedSchedule};
use std::collections::HashMap;
use std::sync::Arc;
use ups_net::{FlowId, LinkId, Network, NodeId, Path, TraceLevel};
use ups_sim::{Bandwidth, Dur, Time};
use ups_topo::Topology;

/// One time unit: the transmission time of a 1500-byte packet at 1 Gbps.
pub const UNIT: Dur = Dur(12_000_000); // 12 us in ps

/// Base offset so hand-built schedules never need negative times.
pub const BASE: Time = Time(1_000_000_000); // 1 ms in ps

/// The "free" bandwidth for uncongested hops: idealized infinite rate,
/// so every packet lands on the appendix tables' integer time grid
/// exactly and contention decisions are made by the schedulers, never by
/// sub-nanosecond serialization residue.
pub fn fast_bw() -> Bandwidth {
    Bandwidth::INFINITE
}

/// A congestion point: a single-server unit link between two routers.
#[derive(Debug, Clone, Copy)]
pub struct Cp {
    /// Router packets converge into.
    pub entry: NodeId,
    /// Router on the far side of the server.
    pub exit: NodeId,
    /// The server link itself.
    pub link: LinkId,
}

/// A flow's fixed route through a sequence of congestion points.
#[derive(Debug, Clone)]
pub struct FlowPath {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// All links in order (fast and unit interleaved).
    pub links: Vec<LinkId>,
    /// Indices into `links` that are congestion-point servers.
    pub cp_hops: Vec<usize>,
}

/// Builder for appendix-style unit networks.
#[derive(Debug)]
pub struct UnitNet {
    /// The underlying network.
    pub net: Network,
    counter: u32,
}

impl UnitNet {
    /// New empty unit network (hop tracing on: replays are scored).
    pub fn new() -> UnitNet {
        UnitNet {
            net: Network::new(TraceLevel::Hops),
            counter: 0,
        }
    }

    /// Add a congestion point whose server transmits a 1500-byte packet
    /// in `t_units_x100 / 100` units (100 = one unit, 50 = half, …).
    pub fn cp(&mut self, name: &str, t_units_x100: u64) -> Cp {
        assert!(t_units_x100 > 0);
        let entry = self.net.add_router(format!("{name}.in"));
        let exit = self.net.add_router(format!("{name}.out"));
        // T = (t/100) * 12us for 1500B ⇒ bw = 1Gbps * 100 / t.
        let bw = Bandwidth::bps(1_000_000_000 * 100 / t_units_x100);
        let link = self.net.add_link(entry, exit, bw, Dur::ZERO);
        Cp { entry, exit, link }
    }

    /// Wire a flow through `cps` in order, optionally inserting an extra
    /// propagation delay (in hundredths of a unit) *before* entering each
    /// congestion point (Figure 6's link L). Returns the flow's path.
    pub fn flow_path(&mut self, name: &str, cps: &[Cp], pre_prop_x100: &[u64]) -> FlowPath {
        assert!(!cps.is_empty());
        assert_eq!(pre_prop_x100.len(), cps.len());
        self.counter += 1;
        let src = self.net.add_host(format!("S{name}"));
        let dst = self.net.add_host(format!("D{name}"));
        let mut links = Vec::new();
        let mut cp_hops = Vec::new();
        let mut at = src;
        for (k, cp) in cps.iter().enumerate() {
            let prop = Dur(UNIT.as_ps() * pre_prop_x100[k] / 100);
            links.push(self.net.add_link(at, cp.entry, fast_bw(), prop));
            cp_hops.push(links.len());
            links.push(cp.link);
            at = cp.exit;
        }
        links.push(self.net.add_link(at, dst, fast_bw(), Dur::ZERO));
        FlowPath {
            src,
            dst,
            links,
            cp_hops,
        }
    }

    /// Materialize an `Arc<Path>` for a flow path.
    pub fn path(&self, fp: &FlowPath) -> Arc<Path> {
        let bw = fp
            .links
            .iter()
            .map(|&l| self.net.links[l.0 as usize].bw)
            .collect();
        let prop = fp
            .links
            .iter()
            .map(|&l| self.net.links[l.0 as usize].prop)
            .collect();
        Arc::new(Path {
            links: fp.links.clone().into(),
            bw,
            prop,
        })
    }

    /// Wrap into a [`Topology`] so the replay engine can run on it.
    /// All links are classified "core" (the tier split is irrelevant
    /// here).
    pub fn into_topology(self, name: &str) -> Topology {
        let links = self.net.link_ids();
        let mut net = self.net;
        // Theory packets travel explicit paths, but the Topology contract
        // includes a frozen routing handle, and replay's reverse lookups
        // expect one.
        let routes = net.compute_routes();
        Topology {
            net,
            routes,
            name: name.to_string(),
            hosts: Vec::new(),
            core_links: links,
            access_links: Vec::new(),
            host_links: Vec::new(),
        }
    }
}

impl Default for UnitNet {
    fn default() -> Self {
        Self::new()
    }
}

/// A packet's intended schedule: arrival at its first congestion point
/// and the intended service start at each congestion point on its path,
/// all in hundredths of a unit relative to [`BASE`].
#[derive(Debug, Clone)]
pub struct PacketPlan {
    /// Flow id.
    pub flow: FlowId,
    /// Sequence within flow.
    pub seq: u64,
    /// Wire size (1500 for unit packets; smaller for shims).
    pub size: u32,
    /// The flow's route.
    pub fp: FlowPath,
    /// Arrival time at the first congestion point (x100 units).
    pub arrival_x100: i64,
    /// Intended service start at each congestion point (x100 units).
    pub cp_sched_x100: Vec<i64>,
}

/// Realize a set of intended packet plans into an exactly viable
/// [`RecordedSchedule`] on `unit_net`.
///
/// Each hop's realized start is `max(arrival, intended, server free)`;
/// intended times may therefore include idle waiting (non-work-
/// conserving originals are allowed by the model) and the realization
/// absorbs the sub-nanosecond fast-hop residue while preserving every
/// whole-unit relationship of the published tables.
pub fn realize(unit_net: &UnitNet, plans: &[PacketPlan]) -> RecordedSchedule {
    // Process congestion-point hops globally in intended order; a
    // packet's hop k can only be processed after its hop k-1, which the
    // intended ordering guarantees for valid tables.
    #[derive(Debug)]
    struct State {
        path: Arc<Path>,
        i: Time,
        hop_tx_start: Vec<Time>,
        /// Time the packet is fully available at the input of `next_hop`.
        ready: Time,
        next_hop: usize,
    }

    let to_time = |x100: i64| -> Time { BASE.offset(x100 * UNIT.as_ps() as i64 / 100) };

    let mut states: Vec<State> = plans
        .iter()
        .map(|p| {
            let path = unit_net.path(&p.fp);
            // Injection so the packet reaches its first congestion point
            // at the intended arrival: subtract the fast prefix.
            let prefix = path.tmin_from(0, p.size) - path.tmin_from(p.fp.cp_hops[0], p.size);
            let i = to_time(p.arrival_x100) - prefix;
            State {
                path,
                i,
                hop_tx_start: Vec::new(),
                ready: i,
                next_hop: 0,
            }
        })
        .collect();

    let mut free: HashMap<LinkId, Time> = HashMap::new();
    // Global order of (intended time, plan index, cp ordinal).
    let mut work: Vec<(i64, usize, usize)> = Vec::new();
    for (pi, p) in plans.iter().enumerate() {
        assert_eq!(p.cp_sched_x100.len(), p.fp.cp_hops.len());
        for (k, &t) in p.cp_sched_x100.iter().enumerate() {
            work.push((t, pi, k));
        }
    }
    work.sort();

    let advance = |st: &mut State,
                   size: u32,
                   upto: usize,
                   intended: Option<Time>,
                   free: &mut HashMap<LinkId, Time>| {
        while st.next_hop < upto {
            let hop = st.next_hop;
            let lid = st.path.links[hop];
            let mut start = st.ready.max(free.get(&lid).copied().unwrap_or(Time::ZERO));
            if st.next_hop == upto - 1 {
                if let Some(t) = intended {
                    start = start.max(t);
                }
            }
            st.hop_tx_start.push(start);
            let tx = st.path.bw[hop].tx_time(size);
            free.insert(lid, start + tx);
            st.ready = start + tx + st.path.prop[hop];
            st.next_hop += 1;
        }
    };

    for (t, pi, k) in work {
        let cp_hop = plans[pi].fp.cp_hops[k];
        // Fast hops up to the server, then the server itself with its
        // intended start.
        advance(
            &mut states[pi],
            plans[pi].size,
            cp_hop + 1,
            Some(to_time(t)),
            &mut free,
        );
    }
    // Drain trailing fast hops.
    for (pi, st) in states.iter_mut().enumerate() {
        let hops = st.path.hops();
        advance(st, plans[pi].size, hops, None, &mut free);
    }

    let packets = plans
        .iter()
        .zip(states)
        .map(|(p, st)| {
            let o = st.ready; // full arrival at destination (last prop 0)
            RecordedPacket {
                flow: p.flow,
                seq: p.seq,
                size: p.size,
                src: p.fp.src,
                dst: p.fp.dst,
                path: st.path,
                i: st.i,
                o,
                hop_tx_start: st.hop_tx_start,
                qdelay: Dur::ZERO, // not meaningful for hand-built tables
                congestion_points: p.fp.cp_hops.len(),
            }
        })
        .collect();
    RecordedSchedule { packets }
}

/// Assert helper: lateness in picoseconds, indexed like the schedule.
pub fn lateness_units(report: &crate::replay::ReplayReport) -> Vec<f64> {
    report
        .lateness
        .iter()
        .map(|&l| l as f64 / UNIT.as_ps() as f64)
        .collect()
}

/// Epsilon budget for "met its target" assertions. With infinite-rate
/// fast hops and class-ordered events the realizations are exact, so
/// this only guards against representational off-by-one-picosecond
/// effects; failures in the counterexamples are whole units (~12 µs).
pub const EPS: i64 = 1_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(UNIT, Dur::from_micros(12));
        // A fast hop is at least four orders of magnitude below a unit.
        let fast_tx = fast_bw().tx_time(1500);
        assert!(fast_tx.as_ps() * 10_000 <= UNIT.as_ps());
    }

    #[test]
    fn realize_single_packet_no_wait() {
        let mut un = UnitNet::new();
        let a0 = un.cp("a0", 100);
        let fp = un.flow_path("A", &[a0], &[0]);
        let plan = PacketPlan {
            flow: FlowId(0),
            seq: 0,
            size: 1500,
            fp,
            arrival_x100: 0,
            cp_sched_x100: vec![0],
        };
        let sched = realize(&un, &[plan]);
        let p = &sched.packets[0];
        // Service at BASE, one unit of transmission, zero-cost tail.
        assert_eq!(p.o, BASE + UNIT);
        assert!(p.slack() >= 0);
        assert!(p.slack() < EPS, "slack {} should be ~0", p.slack());
    }

    #[test]
    fn realize_respects_intended_idle_waiting() {
        // One packet intentionally held until t=3 units even though it
        // arrives at t=0: non-work-conserving originals are legal.
        let mut un = UnitNet::new();
        let a0 = un.cp("a0", 100);
        let fp = un.flow_path("A", &[a0], &[0]);
        let plan = PacketPlan {
            flow: FlowId(0),
            seq: 0,
            size: 1500,
            fp,
            arrival_x100: 0,
            cp_sched_x100: vec![300],
        };
        let sched = realize(&un, &[plan]);
        let p = &sched.packets[0];
        let want = BASE + UNIT * 4; // held 3 units + 1 unit service
        assert_eq!(p.o, want);
        // Slack reflects the 3 idle units exactly.
        assert_eq!(p.slack(), 3 * UNIT.as_i64());
    }

    #[test]
    fn realize_serializes_contending_packets() {
        // Two packets, same server, same intended time: serialization
        // pushes the second one back a full unit.
        let mut un = UnitNet::new();
        let a0 = un.cp("a0", 100);
        let fp1 = un.flow_path("A", &[a0], &[0]);
        let fp2 = un.flow_path("B", &[a0], &[0]);
        let mk = |flow: u64, fp: FlowPath| PacketPlan {
            flow: FlowId(flow),
            seq: 0,
            size: 1500,
            fp,
            arrival_x100: 0,
            cp_sched_x100: vec![0],
        };
        let sched = realize(&un, &[mk(0, fp1), mk(1, fp2)]);
        let gap = sched.packets[1].o.signed_since(sched.packets[0].o);
        assert_eq!(gap, UNIT.as_i64());
    }
}
