//! Figure 7 / Appendix G.3 — LSTF replay failure with three congestion
//! points per packet.
//!
//! Flow A's packet `a` crosses three unit-time congestion points α0, α1,
//! α2; competitor packets `b` (α0 only), `c1, c2` (α1), `d1, d2` (α2)
//! give it exactly the slack interactions of the published table:
//!
//! ```text
//! α0: a(0,0), b(0,1)
//! α1: a(1,1), c1(2,2), c2(3,3)
//! α2: d1(2,2), d2(3,3), a(2,4)
//! ```
//!
//! LSTF assigns `a` slack 2 (it waits two units at α2 in the original)
//! and `b` slack 1, so the replay schedules `b` first at α0; `a` then
//! reaches α1 with too little slack to coexist with the zero-slack `c`
//! packets, and — whichever way the c2/a tie is resolved — some packet
//! misses its target by about one unit.

use super::{realize, PacketPlan, UnitNet};
#[cfg(test)]
use super::{EPS, UNIT};
use crate::replay::{replay_schedule, ReplayMode, ReplayReport};
use crate::schedule::RecordedSchedule;
use ups_net::FlowId;

/// Build the Figure 7 network and its recorded schedule.
pub fn build() -> (UnitNet, RecordedSchedule) {
    let mut un = UnitNet::new();
    let a0 = un.cp("a0", 100);
    let a1 = un.cp("a1", 100);
    let a2 = un.cp("a2", 100);

    let fp_a = un.flow_path("A", &[a0, a1, a2], &[0, 0, 0]);
    let fp_b = un.flow_path("B", &[a0], &[0]);
    let fp_c = un.flow_path("C", &[a1], &[0]);
    let fp_d = un.flow_path("D", &[a2], &[0]);

    let plan = |flow: u64, seq: u64, fp: &super::FlowPath, arr: i64, scheds: Vec<i64>| PacketPlan {
        flow: FlowId(flow),
        seq,
        size: 1500,
        fp: fp.clone(),
        arrival_x100: arr * 100,
        cp_sched_x100: scheds.into_iter().map(|t| t * 100).collect(),
    };

    let plans = vec![
        plan(0, 0, &fp_a, 0, vec![0, 1, 4]), // a
        plan(1, 0, &fp_b, 0, vec![1]),       // b
        plan(2, 0, &fp_c, 2, vec![2]),       // c1
        plan(2, 1, &fp_c, 3, vec![3]),       // c2
        plan(3, 0, &fp_d, 2, vec![2]),       // d1
        plan(3, 1, &fp_d, 3, vec![3]),       // d2
    ];
    let sched = realize(&un, &plans);
    (un, sched)
}

/// Run the LSTF replay of the Figure 7 schedule.
pub fn lstf_replay() -> (RecordedSchedule, ReplayReport) {
    let (un, sched) = build();
    let mut topo = un.into_topology("fig7");
    let report = replay_schedule(&mut topo, &sched, ReplayMode::lstf());
    (sched, report)
}

/// Sanity marker used by the table-of-contents tests.
pub const CP_OF_A: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_schedule;

    #[test]
    fn schedule_matches_published_table() {
        let (_, sched) = build();
        // Slacks (in units): a = o−i−tmin = 5−0−3 = 2; b = 2−0−1 = 1;
        // c/d packets are tight (0).
        let units = |ps: i64| ps as f64 / UNIT.as_ps() as f64;
        let slacks: Vec<f64> = sched.packets.iter().map(|p| units(p.slack())).collect();
        assert!((slacks[0] - 2.0).abs() < 0.01, "slack(a) {}", slacks[0]);
        assert!((slacks[1] - 1.0).abs() < 0.01, "slack(b) {}", slacks[1]);
        for (k, &s) in slacks[2..].iter().enumerate() {
            assert!(s.abs() < 0.01, "slack of tight packet {k} = {s}");
        }
        assert_eq!(sched.packets[0].congestion_points, CP_OF_A);
    }

    #[test]
    fn lstf_fails_with_three_congestion_points() {
        let (_, report) = lstf_replay();
        assert!(
            report.overdue >= 1,
            "LSTF unexpectedly replayed Figure 7 perfectly"
        );
        // The failure is structural: about one full unit late, not an
        // epsilon artifact.
        assert!(
            report.max_lateness() > UNIT.as_i64() / 2,
            "max lateness {}ps is not a real miss",
            report.max_lateness()
        );
    }

    #[test]
    fn b_overtakes_a_in_the_replay() {
        // The paper's narrative: slack(b) < slack(a) at α0, so the replay
        // schedules b first — visible as b finishing a unit earlier than
        // its original target allows for a.
        let (sched, report) = lstf_replay();
        // b (index 1) finishes on time; it was never the victim.
        assert!(report.lateness[1] <= EPS);
        // The victim is one of a, c2 (indices 0, 3).
        assert!(
            report.lateness[0] > UNIT.as_i64() / 2 || report.lateness[3] > UNIT.as_i64() / 2,
            "expected a or c2 overdue, lateness: {:?}",
            super::super::lateness_units(&report)
        );
        drop(sched);
    }

    #[test]
    fn omniscient_replays_fig7_perfectly() {
        // Appendix B: with per-hop times even this schedule replays.
        let (un, sched) = build();
        let mut topo = un.into_topology("fig7");
        let report = replay_schedule(&mut topo, &sched, ReplayMode::Omniscient);
        assert!(
            report.perfect(),
            "omniscient overdue: {:?}",
            super::super::lateness_units(&report)
        );
    }

    #[test]
    fn preemptive_lstf_still_fails_fig7() {
        // Preemption does not rescue the three-congestion-point bound —
        // the impossibility is informational, not mechanical.
        let (un, sched) = build();
        let mut topo = un.into_topology("fig7");
        let report = replay_schedule(&mut topo, &sched, ReplayMode::lstf_preemptive());
        assert!(report.overdue >= 1);
    }
}
