//! The omniscient UPS of Appendix B.
//!
//! With *omniscient* header initialization, the ingress writes the vector
//! of per-hop scheduling times `⟨o(p, α₁), …, o(p, αₙ)⟩` into the packet.
//! Each router pops (indexes) its own entry and uses it as a static
//! priority — earlier original scheduling time = served first. Appendix B
//! proves this replays **any** viable schedule perfectly; the property
//! tests in `tests/` exercise that end-to-end.

use ups_net::scheduler::Queued;
use ups_sched::keyed::{KeyPolicy, Keyed};

/// Key policy: priority = this hop's recorded scheduling time.
#[derive(Debug, Clone, Copy, Default)]
pub struct OmniscientPolicy;

impl KeyPolicy for OmniscientPolicy {
    fn name(&self) -> &'static str {
        "Omniscient"
    }
    fn key(&self, q: &Queued) -> i64 {
        let times = q
            .pkt
            .hdr
            .hop_times
            .as_ref()
            .expect("omniscient scheduler requires hop_times in the header");
        times[q.pkt.hops_done as usize].as_ps() as i64
    }
}

/// The omniscient per-hop-priority scheduler.
pub type Omniscient = Keyed<OmniscientPolicy>;

/// Construct an omniscient scheduler.
pub fn omniscient() -> Omniscient {
    Keyed::new(OmniscientPolicy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use ups_net::testutil::queued_slack;
    use ups_net::Scheduler;
    use ups_sim::Time;

    fn with_hops(mut q: ups_net::Queued, times: &[u64], hops_done: u16) -> ups_net::Queued {
        q.pkt.hdr.hop_times = Some(Arc::from(
            times
                .iter()
                .map(|&us| Time::from_micros(us))
                .collect::<Vec<_>>(),
        ));
        q.pkt.hops_done = hops_done;
        q
    }

    #[test]
    fn orders_by_current_hop_entry() {
        let mut s = omniscient();
        // Packet 0 is at hop 1 with entry 50us; packet 1 at hop 0 with
        // entry 10us: packet 1 wins even though its later entries are big.
        s.enqueue(with_hops(queued_slack(0, 0, 0), &[5, 50], 1));
        s.enqueue(with_hops(queued_slack(0, 0, 1), &[10, 999], 0));
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0);
    }

    #[test]
    #[should_panic(expected = "requires hop_times")]
    fn rejects_unstamped_packets() {
        let mut s = omniscient();
        s.enqueue(queued_slack(0, 0, 0));
    }
}
