//! The deadline replay objective: can LSTF replay EDF?
//!
//! The paper's central claim is that LSTF can replay any viable
//! schedule; the deadline regime is where that claim bites hardest.
//! This module asks it end-to-end: record an **EDF** schedule on a
//! deadline-mix workload (every packet carries a virtual deadline
//! `D(p)`), then replay the identical input under a candidate UPS that
//! only knows `D(p)` — LSTF with *deadline* slack (`D − i − tmin`,
//! Appendix E's equivalence), EDF itself (the control), or a static
//! two-level priority (the strawman). The replay is scored two ways:
//!
//! * **fidelity** against the recorded EDF output times, through the
//!   same [`ReplayReport`] the `o(p)`-target replays use — this is the
//!   replay question proper;
//! * **per-flow lateness** against the real [`FlowDesc::deadline`]
//!   budgets, through [`ups_metrics::DeadlineLedger`]
//!   ([`deadline_flow_stats`]) — this is the miss-rate-vs-utilization
//!   curve the deadline scenarios plot.
//!
//! The EDF ≡ LSTF identity the property tests pin down: EDF here keys
//! on `prio − remaining_tmin + tx`, LSTF's LastBit key is
//! `enq + slack_remaining + tx` with slack charged against queueing
//! waits. Stamping `prio = D` and `slack = D − i − tmin` **unclamped**
//! makes both keys equal `D − remaining_tmin + tx` at every hop, so the
//! two replays are packet-for-packet identical — feasible or not. (The
//! open-loop stamper in `ups-transport` clamps deadline slack at zero,
//! which is right for scheduling real traffic but would break the
//! identity exactly where it matters, on infeasible deadlines; hence
//! this module hand-builds its headers.)

use crate::replay::{score_replay, ReplayMode, ReplayReport};
use crate::schedule::RecordedSchedule;
use std::collections::BTreeMap;
use std::sync::Arc;
use ups_metrics::{DeadlineLedger, DeadlineStats};
use ups_net::{LinkPolicy, PacketKind, SchedHeader, Telemetry, TraceLevel};
use ups_sched::{edf, lstf_with, priority, LstfKeyMode, SchedKind};
use ups_sim::{Dur, Time};
use ups_topo::Topology;
use ups_transport::FlowDesc;

/// Virtual-deadline budget for packets of flows that carry no real
/// deadline: `D = i + tmin + BEST_EFFORT_BUDGET`. Far above any budget
/// the deadline-mix workload hands out, so best-effort traffic ranks
/// strictly behind every urgent packet under all three candidates
/// (after EDF's own key, behind tagged deadlines; under Prio, class 7).
pub const BEST_EFFORT_BUDGET: Dur = Dur::from_millis(100);

/// The candidate UPS of a deadline replay — the scheduler that re-runs
/// the recorded EDF input knowing only each packet's virtual deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineMode {
    /// EDF again (the control: must reproduce the record bit-for-bit).
    Edf,
    /// LSTF with deadline slack `D − i − tmin` (the paper's candidate).
    Lstf,
    /// Static two-level priority: tagged flows class 0, best effort
    /// class 7 — deadline *values* are invisible, only the tag is.
    Prio,
}

impl DeadlineMode {
    /// Map a scenario's `sched` coordinate to the replay candidate. In
    /// deadline-replay scenarios the coordinate names the *replay*
    /// scheduler (the original is always EDF); anything outside the
    /// candidate set is `None`.
    pub fn from_sched(kind: SchedKind) -> Option<DeadlineMode> {
        match kind {
            SchedKind::Edf => Some(DeadlineMode::Edf),
            SchedKind::Lstf => Some(DeadlineMode::Lstf),
            SchedKind::Priority => Some(DeadlineMode::Prio),
            _ => None,
        }
    }

    /// Display label (matches the corresponding [`SchedKind`] label so
    /// artifacts key cells by the familiar scheduler names).
    pub fn label(self) -> &'static str {
        match self {
            DeadlineMode::Edf => "EDF",
            DeadlineMode::Lstf => "LSTF",
            DeadlineMode::Prio => "Priority",
        }
    }

    /// The [`ReplayMode`] recorded in the report (for its `mode` field;
    /// header construction here is deadline-specific).
    fn replay_mode(self) -> ReplayMode {
        match self {
            DeadlineMode::Edf => ReplayMode::Edf,
            DeadlineMode::Lstf => ReplayMode::lstf(),
            DeadlineMode::Prio => ReplayMode::Priority,
        }
    }
}

/// The virtual deadline attached to one recorded packet.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineTag {
    /// Absolute virtual deadline `D(p)`.
    pub d_abs: Time,
    /// Whether the flow carried a real [`FlowDesc::deadline`] (best-
    /// effort packets get the synthetic [`BEST_EFFORT_BUDGET`] instead).
    pub tagged: bool,
}

/// An EDF-recorded schedule plus the per-packet virtual deadlines that
/// produced it, in recorded-packet order — everything a deadline replay
/// needs to rebuild the input headers.
#[derive(Debug, Clone)]
pub struct DeadlineSchedule {
    /// The recorded schedule (`{(path, i(p), o(p))}`).
    pub schedule: RecordedSchedule,
    /// One tag per [`RecordedSchedule::packets`] entry.
    pub tags: Vec<DeadlineTag>,
}

/// Per-packet virtual deadline: a tagged flow's packets all share the
/// flow's completion deadline `start + budget` (the whole flow must be
/// done by then, so its last packet's constraint binds every packet);
/// best-effort packets get `i + tmin +` [`BEST_EFFORT_BUDGET`].
fn virtual_deadline(f: &FlowDesc, at: Time, tmin: Dur) -> DeadlineTag {
    match f.deadline {
        Some(budget) => DeadlineTag {
            d_abs: f.start + budget,
            tagged: true,
        },
        None => DeadlineTag {
            d_abs: at + tmin + BEST_EFFORT_BUDGET,
            tagged: false,
        },
    }
}

/// Record the original schedule under network-wide EDF on per-packet
/// virtual deadlines: install EDF on every port of `topo` (freshly
/// built with [`TraceLevel::Hops`]), inject the workload paced at the
/// host NIC exactly like the open-loop stamper would, with
/// `prio = D(p)` — and the *unclamped* deadline slack alongside, so the
/// recorded headers document both views — then run to completion.
pub fn record_deadline_original(
    topo: &mut Topology,
    flows: &[FlowDesc],
    mtu: u32,
) -> DeadlineSchedule {
    assert_eq!(
        topo.net.telemetry.level,
        TraceLevel::Hops,
        "recording requires hop-level tracing"
    );
    topo.net
        .configure_links(|_| LinkPolicy::keep().buffer(None).scheduler(Box::new(edf())));
    let routes = Arc::clone(&topo.routes);
    let mut tags = Vec::new();
    for f in flows {
        let path = routes.resolve_path(f.src, f.dst, f.id);
        let pace = path.bw[0].tx_time(mtu);
        let tmin = path.tmin(mtu);
        for seq in 0..f.pkts {
            let at = f.start + pace * seq;
            let tag = virtual_deadline(f, at, tmin);
            let hdr = SchedHeader {
                slack: tag.d_abs.signed_since(at) - tmin.as_i64(),
                prio: tag.d_abs.as_ps() as i64,
                hop_times: None,
            };
            topo.net.inject_on_path(
                at,
                f.id,
                seq,
                mtu,
                f.src,
                f.dst,
                Arc::clone(&path),
                hdr,
                PacketKind::Data {
                    bytes: mtu.saturating_sub(40),
                },
            );
            tags.push(tag);
        }
    }
    topo.net.run_to_completion();
    let schedule = RecordedSchedule::from_telemetry(&topo.net.telemetry);
    assert_eq!(
        schedule.packets.len(),
        tags.len(),
        "one tag per recorded packet"
    );
    DeadlineSchedule { schedule, tags }
}

/// Replay a recorded EDF schedule on a *fresh* build of the same
/// topology under `mode`, scoring fidelity against the recorded output
/// times. Loss-free (asserts so); for a chaos-perturbed replay use
/// [`replay_deadline_lossy`].
pub fn replay_deadline(
    topo: &mut Topology,
    ds: &DeadlineSchedule,
    mode: DeadlineMode,
) -> ReplayReport {
    replay_deadline_impl(topo, ds, mode, false)
}

/// Like [`replay_deadline`], but tolerant of packet loss: undelivered
/// packets count in [`ReplayReport::lost`] and against fidelity.
pub fn replay_deadline_lossy(
    topo: &mut Topology,
    ds: &DeadlineSchedule,
    mode: DeadlineMode,
) -> ReplayReport {
    replay_deadline_impl(topo, ds, mode, true)
}

fn replay_deadline_impl(
    topo: &mut Topology,
    ds: &DeadlineSchedule,
    mode: DeadlineMode,
    allow_loss: bool,
) -> ReplayReport {
    assert_eq!(
        topo.net.telemetry.level,
        TraceLevel::Hops,
        "replay scoring requires hop-level tracing"
    );
    assert_eq!(
        topo.net.telemetry.counters.injected, 0,
        "replay needs a fresh topology build"
    );
    topo.net.configure_links(|_| {
        let base = LinkPolicy::keep().buffer(None);
        match mode {
            DeadlineMode::Edf => base.scheduler(Box::new(edf())),
            DeadlineMode::Lstf => base.scheduler(Box::new(lstf_with(LstfKeyMode::LastBit))),
            DeadlineMode::Prio => base.scheduler(Box::new(priority())),
        }
    });

    for (rec, tag) in ds.schedule.packets.iter().zip(&ds.tags) {
        let hdr = match mode {
            DeadlineMode::Edf => SchedHeader {
                slack: 0,
                prio: tag.d_abs.as_ps() as i64,
                hop_times: None,
            },
            DeadlineMode::Lstf => SchedHeader {
                // Deliberately unclamped: an infeasible budget must stay
                // comparable against EDF's absolute key (see module docs).
                slack: tag.d_abs.signed_since(rec.i) - rec.tmin().as_i64(),
                prio: 0,
                hop_times: None,
            },
            DeadlineMode::Prio => SchedHeader {
                slack: 0,
                prio: if tag.tagged { 0 } else { 7 },
                hop_times: None,
            },
        };
        topo.net.inject_on_path(
            rec.i,
            rec.flow,
            rec.seq,
            rec.size,
            rec.src,
            rec.dst,
            Arc::clone(&rec.path),
            hdr,
            PacketKind::Data {
                bytes: rec.size.saturating_sub(40),
            },
        );
    }
    topo.net.run_to_completion();

    let tel = &topo.net.telemetry;
    if !allow_loss {
        assert_eq!(tel.counters.dropped, 0, "replay must be drop-free");
    }
    let max_size = ds
        .schedule
        .packets
        .iter()
        .map(|p| p.size)
        .max()
        .unwrap_or(1500);
    let t = topo.net.bottleneck_bw().tx_time(max_size);
    score_replay(&ds.schedule, tel, mode.replay_mode(), allow_loss, t)
}

/// Reduce a run's delivery telemetry to per-flow deadline outcomes
/// through [`DeadlineLedger`]: a tagged flow completes when *all* its
/// packets were delivered, at the latest delivery time; it misses when
/// that time exceeds `start + deadline` or when any packet never
/// arrived. `None` when no flow is tagged.
pub fn deadline_flow_stats(flows: &[FlowDesc], telemetry: &Telemetry) -> Option<DeadlineStats> {
    if !flows.iter().any(|f| f.deadline.is_some()) {
        return None;
    }
    // Per tagged flow: latest delivery seen and how many packets made it
    // (BTreeMap: iteration-order-safe by construction, though only the
    // ordered `flows` loop below ever reads it).
    let mut done: BTreeMap<u64, (Time, u64)> = flows
        .iter()
        .filter(|f| f.deadline.is_some())
        .map(|f| (f.id.0, (Time::ZERO, 0)))
        .collect();
    for rec in &telemetry.packets {
        if let Some((latest, delivered)) = done.get_mut(&rec.flow.0) {
            if let Some(t) = rec.delivered {
                *latest = (*latest).max(t);
                *delivered += 1;
            }
        }
    }
    let mut ledger = DeadlineLedger::new();
    for f in flows {
        let Some(budget) = f.deadline else { continue };
        let completion = done
            .get(&f.id.0)
            .filter(|&&(_, delivered)| delivered == f.pkts)
            .map(|&(latest, _)| latest);
        ledger.observe(f.start + budget, completion);
    }
    Some(ledger.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;
    use ups_sim::Bandwidth;
    use ups_topo::simple::star;

    fn star_factory() -> Topology {
        star(6, Bandwidth::gbps(1), Dur::from_micros(5), TraceLevel::Hops)
    }

    /// Contended deadline mix on the star: hosts 1–5 send toward host 0,
    /// odd senders tagged with `budget`, even senders best effort.
    fn star_flows(topo: &Topology, pkts: u64, budget: Dur) -> Vec<FlowDesc> {
        topo.hosts[1..]
            .iter()
            .enumerate()
            .map(|(i, &src)| FlowDesc {
                id: FlowId(i as u64),
                src,
                dst: topo.hosts[0],
                pkts,
                start: Time::ZERO,
                deadline: (i % 2 == 1).then_some(budget),
            })
            .collect()
    }

    fn record(flows: &[FlowDesc]) -> (Topology, DeadlineSchedule) {
        let mut topo = star_factory();
        let ds = record_deadline_original(&mut topo, flows, 1500);
        (topo, ds)
    }

    #[test]
    fn edf_control_replay_is_bit_exact() {
        let flows = star_flows(&star_factory(), 6, Dur::from_millis(2));
        let (_, ds) = record(&flows);
        let mut t2 = star_factory();
        let rep = replay_deadline(&mut t2, &ds, DeadlineMode::Edf);
        assert_eq!(rep.max_lateness(), 0, "EDF must reproduce itself exactly");
        assert_eq!(rep.fidelity(), 1.0);
    }

    #[test]
    fn lstf_with_deadline_slack_replays_edf_exactly() {
        // Appendix E, deadline edition: identical keys at every hop ⇒
        // identical schedules, even with an infeasible (1 µs) budget.
        for budget in [Dur::from_millis(2), Dur::from_micros(1)] {
            let flows = star_flows(&star_factory(), 6, budget);
            let (_, ds) = record(&flows);
            let mut t2 = star_factory();
            let lstf = replay_deadline(&mut t2, &ds, DeadlineMode::Lstf);
            let mut t3 = star_factory();
            let edf = replay_deadline(&mut t3, &ds, DeadlineMode::Edf);
            assert_eq!(lstf.lateness, edf.lateness, "budget {budget:?}");
            assert!(lstf.perfect(), "budget {budget:?}");
        }
    }

    #[test]
    fn flow_stats_mark_generous_budgets_met_and_tight_budgets_missed() {
        let generous = star_flows(&star_factory(), 4, Dur::from_millis(5));
        let (topo, _) = record(&generous);
        let stats = deadline_flow_stats(&generous, &topo.net.telemetry).expect("tagged");
        assert_eq!(stats.tagged, 2);
        assert_eq!(stats.missed, 0);

        // 1 µs is below even the uncontended path tmin: every tagged
        // flow must miss.
        let tight = star_flows(&star_factory(), 4, Dur::from_micros(1));
        let (topo, _) = record(&tight);
        let stats = deadline_flow_stats(&tight, &topo.net.telemetry).expect("tagged");
        assert_eq!(stats.missed, stats.tagged);
        assert!(stats.mean_lateness_us > 0.0);
    }

    #[test]
    fn untagged_workloads_produce_no_stats() {
        let mut flows = star_flows(&star_factory(), 2, Dur::from_millis(1));
        for f in &mut flows {
            f.deadline = None;
        }
        let (topo, _) = record(&flows);
        assert!(deadline_flow_stats(&flows, &topo.net.telemetry).is_none());
    }

    #[test]
    fn mode_mapping_covers_exactly_the_candidate_set() {
        assert_eq!(
            DeadlineMode::from_sched(SchedKind::Edf),
            Some(DeadlineMode::Edf)
        );
        assert_eq!(
            DeadlineMode::from_sched(SchedKind::Lstf),
            Some(DeadlineMode::Lstf)
        );
        assert_eq!(
            DeadlineMode::from_sched(SchedKind::Priority),
            Some(DeadlineMode::Prio)
        );
        assert_eq!(DeadlineMode::from_sched(SchedKind::Fifo), None);
        assert_eq!(DeadlineMode::Prio.label(), "Priority");
    }
}
