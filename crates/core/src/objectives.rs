//! The practical side of universality (§3): one LSTF slack-initialization
//! heuristic per network-wide objective, each evaluated against the
//! state-of-the-art scheduler for that objective.
//!
//! * mean FCT — LSTF with `slack = flow_size × D` vs FIFO / SJF / SRPT;
//! * tail packet delay — LSTF with constant slack (≡ FIFO+) vs FIFO;
//! * fairness — LSTF with virtual-clock slack vs FIFO / FQ.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use ups_metrics::{throughput_fairness_series, FairnessPoint};
use ups_net::{FlowId, TraceLevel};
use ups_sched::SchedKind;
use ups_sim::{Bandwidth, Dur, Time};
use ups_topo::Topology;
use ups_transport::{
    install_tcp, is_ack_flow, FlowDesc, FlowResult, HeaderStamper, PrioPolicy, SlackPolicy,
    TcpConfig,
};

/// A (scheduler, ingress-stamping) pairing under evaluation.
#[derive(Debug, Clone)]
pub enum Scheme {
    /// Plain FIFO, zero headers.
    Fifo,
    /// Fair queuing, zero headers.
    Fq,
    /// SJF: priority scheduler, `prio = flow size`.
    Sjf,
    /// SRPT with starvation prevention, `prio = remaining size`.
    Srpt,
    /// LSTF with the §3.1 slack: `flow_size × D`.
    LstfFct {
        /// The multiplier D (1 s in the paper).
        d: Dur,
    },
    /// LSTF with the §3.2 constant slack (≡ FIFO+).
    LstfConst {
        /// The constant (1 s in the paper).
        slack: Dur,
    },
    /// LSTF with the §3.3 virtual-clock slack.
    LstfVc {
        /// Estimated fair rate `rest` (any value ≤ r* converges).
        rest: Bandwidth,
    },
    /// LSTF with the §3.3 *weighted* virtual-clock extension: per-flow
    /// `rest` in proportion to desired weights.
    LstfVcWeighted {
        /// Unweighted rate estimate.
        base: Bandwidth,
        /// Per-flow weights.
        weights: std::collections::HashMap<FlowId, f64>,
    },
}

impl Scheme {
    /// Scheduler kind to install on every port.
    pub fn sched_kind(&self) -> SchedKind {
        match self {
            Scheme::Fifo => SchedKind::Fifo,
            Scheme::Fq => SchedKind::Fq,
            Scheme::Sjf => SchedKind::Sjf,
            Scheme::Srpt => SchedKind::Srpt,
            Scheme::LstfFct { .. }
            | Scheme::LstfConst { .. }
            | Scheme::LstfVc { .. }
            | Scheme::LstfVcWeighted { .. } => SchedKind::Lstf,
        }
    }

    /// Header stamper for the ingress.
    pub fn stamper(&self) -> HeaderStamper {
        match self {
            Scheme::Fifo | Scheme::Fq => HeaderStamper::zero(),
            Scheme::Sjf => HeaderStamper::new(SlackPolicy::None, PrioPolicy::FlowSize),
            Scheme::Srpt => HeaderStamper::new(SlackPolicy::None, PrioPolicy::Remaining),
            Scheme::LstfFct { d } => {
                HeaderStamper::new(SlackPolicy::FlowSizeTimesD { d: *d }, PrioPolicy::None)
            }
            Scheme::LstfConst { slack } => {
                HeaderStamper::new(SlackPolicy::Constant { slack: *slack }, PrioPolicy::None)
            }
            Scheme::LstfVc { rest } => {
                HeaderStamper::new(SlackPolicy::VirtualClock { rest: *rest }, PrioPolicy::None)
            }
            Scheme::LstfVcWeighted { base, weights } => HeaderStamper::new(
                SlackPolicy::WeightedVirtualClock {
                    base: *base,
                    weights: weights.clone(),
                },
                PrioPolicy::None,
            ),
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Scheme::Fifo => "FIFO".into(),
            Scheme::Fq => "FQ".into(),
            Scheme::Sjf => "SJF".into(),
            Scheme::Srpt => "SRPT".into(),
            Scheme::LstfFct { .. } => "LSTF(fs*D)".into(),
            Scheme::LstfConst { .. } => "LSTF(const)".into(),
            Scheme::LstfVc { rest } => format!("LSTF@{rest}"),
            Scheme::LstfVcWeighted { base, .. } => format!("wLSTF@{base}"),
        }
    }
}

/// §3.1 — run TCP flows under `scheme` and return per-flow results.
///
/// `buffer` is the per-port buffer in bytes (the paper uses 5 MB — the
/// average delay-bandwidth product of its Internet2 setup).
pub fn run_fct(
    mut topo: Topology,
    flows: &[FlowDesc],
    scheme: &Scheme,
    buffer: u64,
    horizon: Time,
) -> Vec<FlowResult> {
    assert!(!flows.is_empty());
    let kind = scheme.sched_kind();
    topo.net.configure_links(|l| {
        ups_net::LinkPolicy::keep()
            .buffer(Some(buffer))
            .scheduler(kind.build(l.id, 0))
    });
    let results = install_tcp(&mut topo.net, flows, &TcpConfig::default(), || {
        scheme.stamper()
    });
    topo.net.run_until(horizon);
    let out = results.lock().expect("results poisoned").clone();
    out
}

/// §3.2 — run an open-loop UDP workload under `scheme` and return every
/// delivered packet's end-to-end delay in seconds.
pub fn run_tail_delays(
    mut topo: Topology,
    flows: &[FlowDesc],
    scheme: &Scheme,
    mtu: u32,
    buffer: Option<u64>,
) -> Vec<f64> {
    let kind = scheme.sched_kind();
    topo.net.configure_links(|l| {
        ups_net::LinkPolicy::keep()
            .buffer(buffer)
            .scheduler(kind.build(l.id, 0))
    });
    let mut stamper = scheme.stamper();
    let routes = std::sync::Arc::clone(&topo.routes);
    ups_transport::inject_udp_flows(&mut topo.net, &routes, flows, mtu, &mut stamper);
    topo.net.run_to_completion();
    assert!(
        topo.net.telemetry.level != TraceLevel::Off,
        "delay measurement requires delivery tracing"
    );
    topo.net
        .telemetry
        .delivered()
        .map(|r| r.delay().expect("delivered").as_secs_f64())
        .collect()
}

/// §3.3 — run long-lived TCP flows under `scheme` and return the Jain
/// fairness index per `window` up to `horizon`.
pub fn run_fairness(
    mut topo: Topology,
    flows: &[FlowDesc],
    scheme: &Scheme,
    window: Dur,
    horizon: Time,
    buffer: Option<u64>,
) -> Vec<FairnessPoint> {
    let kind = scheme.sched_kind();
    topo.net.configure_links(|l| {
        ups_net::LinkPolicy::keep()
            .buffer(buffer)
            .scheduler(kind.build(l.id, 0))
    });
    let _results = install_tcp(&mut topo.net, flows, &TcpConfig::default(), || {
        scheme.stamper()
    });
    topo.net.run_until(horizon);

    // Per-flow delivered data bytes from telemetry (ACK streams excluded).
    let index: HashMap<FlowId, usize> = flows.iter().enumerate().map(|(i, f)| (f.id, i)).collect();
    let deliveries = topo.net.telemetry.packets.iter().filter_map(|r| {
        let t = r.delivered?;
        if is_ack_flow(r.flow) {
            return None;
        }
        Some((t, *index.get(&r.flow)?, r.size))
    });
    throughput_fairness_series(deliveries, flows.len(), window, horizon)
}

/// §3.3 extension — run long-lived TCP flows under `scheme` and return
/// each flow's delivered data bytes over `[0, horizon)` (weighted-
/// fairness measurements divide these by the weights).
pub fn run_goodput(
    mut topo: Topology,
    flows: &[FlowDesc],
    scheme: &Scheme,
    horizon: Time,
    buffer: Option<u64>,
) -> Vec<u64> {
    let kind = scheme.sched_kind();
    topo.net.configure_links(|l| {
        ups_net::LinkPolicy::keep()
            .buffer(buffer)
            .scheduler(kind.build(l.id, 0))
    });
    let _results = install_tcp(&mut topo.net, flows, &TcpConfig::default(), || {
        scheme.stamper()
    });
    topo.net.run_until(horizon);
    let index: HashMap<FlowId, usize> = flows.iter().enumerate().map(|(i, f)| (f.id, i)).collect();
    let mut bytes = vec![0u64; flows.len()];
    for r in topo.net.telemetry.packets.iter() {
        if r.delivered.is_none() || is_ack_flow(r.flow) {
            continue;
        }
        if let Some(&i) = index.get(&r.flow) {
            bytes[i] += r.size as u64;
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    fn topo() -> Topology {
        dumbbell(
            6,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(20),
            TraceLevel::Delivery,
        )
    }

    /// 6 senders to 6 receivers across the bottleneck: two 15-packet mice
    /// and four 600-packet elephants, all at t=0.
    fn mice_and_elephants(t: &Topology) -> Vec<FlowDesc> {
        (0..6)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: t.hosts[i as usize],
                dst: t.hosts[6 + i as usize],
                pkts: if i < 2 { 15 } else { 600 },
                start: Time::ZERO,
                deadline: None,
            })
            .collect()
    }

    fn mean_mouse_fct(res: &[FlowResult]) -> f64 {
        let mice: Vec<f64> = res
            .iter()
            .filter(|r| r.desc.pkts < 100)
            .map(|r| r.fct().expect("mouse incomplete").as_secs_f64())
            .collect();
        mice.iter().sum::<f64>() / mice.len() as f64
    }

    #[test]
    fn sjf_and_lstf_beat_fifo_for_mice() {
        let flows = mice_and_elephants(&topo());
        let horizon = Time::from_secs(4);
        let buffer = 200_000; // small enough to force queueing pressure
        let fifo = run_fct(topo(), &flows, &Scheme::Fifo, buffer, horizon);
        let sjf = run_fct(topo(), &flows, &Scheme::Sjf, buffer, horizon);
        let lstf = run_fct(
            topo(),
            &flows,
            &Scheme::LstfFct {
                d: Dur::from_secs(1),
            },
            buffer,
            horizon,
        );
        let (f, s, l) = (
            mean_mouse_fct(&fifo),
            mean_mouse_fct(&sjf),
            mean_mouse_fct(&lstf),
        );
        assert!(s < f, "SJF mice {s} !< FIFO mice {f}");
        assert!(l < f, "LSTF mice {l} !< FIFO mice {f}");
        // LSTF should land near SJF (same ordering intent).
        assert!(l < s * 3.0, "LSTF {l} far from SJF {s}");
    }

    #[test]
    fn constant_slack_reduces_tail_over_fifo_on_multihop_mix() {
        // Tail-delay comparison needs heterogeneous hop counts; the line
        // inside a dumbbell is enough to see FIFO+ reordering effects,
        // and at minimum the experiment must run and produce delays.
        let t = topo();
        let flows: Vec<FlowDesc> = (0..6)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: t.hosts[i as usize],
                dst: t.hosts[6 + (i as usize + 1) % 6],
                pkts: 40,
                start: Time::from_micros(i * 7),
                deadline: None,
            })
            .collect();
        let fifo = run_tail_delays(topo(), &flows, &Scheme::Fifo, 1500, None);
        let fplus = run_tail_delays(
            topo(),
            &flows,
            &Scheme::LstfConst {
                slack: Dur::from_secs(1),
            },
            1500,
            None,
        );
        assert_eq!(fifo.len(), fplus.len());
        assert!(fifo.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn fairness_converges_for_fq_and_lstf_vc() {
        let t = topo();
        let flows: Vec<FlowDesc> = (0..6)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: t.hosts[i as usize],
                dst: t.hosts[6 + i as usize],
                pkts: u64::MAX / 2,
                start: Time::from_micros(10 * i),
                deadline: None,
            })
            .collect();
        let window = Dur::from_millis(1);
        let horizon = Time::from_millis(12);
        for scheme in [
            Scheme::Fq,
            Scheme::LstfVc {
                rest: Bandwidth::mbps(100),
            },
        ] {
            let pts = run_fairness(topo(), &flows, &scheme, window, horizon, Some(5_000_000));
            let last = pts.last().expect("no fairness points");
            assert!(
                last.jain > 0.9,
                "{}: final Jain {} (series {:?})",
                scheme.label(),
                last.jain,
                pts.iter().map(|p| p.jain).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn scheme_plumbing_labels_and_kinds() {
        assert_eq!(Scheme::Fifo.sched_kind(), SchedKind::Fifo);
        assert_eq!(Scheme::Srpt.sched_kind(), SchedKind::Srpt);
        assert_eq!(
            Scheme::LstfVc {
                rest: Bandwidth::gbps(1)
            }
            .sched_kind(),
            SchedKind::Lstf
        );
        assert_eq!(
            Scheme::LstfVc {
                rest: Bandwidth::gbps(1)
            }
            .label(),
            "LSTF@1Gbps"
        );
    }
}
