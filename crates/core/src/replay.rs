//! The replay engine (§2).
//!
//! Records an *original* schedule by running any mix of schedulers over
//! an open-loop UDP workload, then re-runs the identical input — same
//! packets, same ingress times `i(p)`, same paths — under a candidate
//! UPS, and scores the replay: the fraction of packets overdue
//! (`o'(p) > o(p)`), the fraction overdue by more than the bottleneck
//! transmission time `T`, and the per-packet queueing-delay ratios of
//! Figure 1.
//!
//! Candidate UPSes: LSTF (non-preemptive by default, preemptive for the
//! §2.3(5) ablation), simple Priority with `prio = o(p)` (§2.3(7)), EDF
//! (the Appendix E equivalent), and the omniscient per-hop-vector UPS
//! (Appendix B).

use crate::omniscient::omniscient;
use crate::schedule::RecordedSchedule;
use std::sync::Arc;
use ups_net::{LinkPolicy, PacketKind, SchedHeader, Telemetry, TraceLevel};
use ups_sched::{edf, lstf_with, priority, LstfKeyMode, SchedKind};
use ups_sim::Dur;
use ups_topo::Topology;
use ups_transport::{FlowDesc, HeaderStamper, PrioPolicy, SlackPolicy};

/// The candidate UPS used for a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Least Slack Time First with slack = `o − i − tmin`.
    Lstf {
        /// Allow arrivals to preempt the in-flight packet (fluid model).
        preemptive: bool,
        /// Deadline formula (see [`LstfKeyMode`]).
        key: LstfKeyMode,
    },
    /// Simple priorities with `prio = o(p)` — "the most intuitive
    /// priority assignment" of §2.3(7).
    Priority,
    /// Network-wide EDF on a static `o(p)` header (Appendix E).
    Edf,
    /// Omniscient per-hop output-time vector (Appendix B).
    Omniscient,
}

impl ReplayMode {
    /// Non-preemptive paper-default LSTF.
    pub fn lstf() -> ReplayMode {
        ReplayMode::Lstf {
            preemptive: false,
            key: LstfKeyMode::LastBit,
        }
    }

    /// Preemptive LSTF (ablation).
    pub fn lstf_preemptive() -> ReplayMode {
        ReplayMode::Lstf {
            preemptive: true,
            key: LstfKeyMode::LastBit,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            ReplayMode::Lstf {
                preemptive: false, ..
            } => "LSTF",
            ReplayMode::Lstf {
                preemptive: true, ..
            } => "LSTF(preempt)",
            ReplayMode::Priority => "Priority(o)",
            ReplayMode::Edf => "EDF",
            ReplayMode::Omniscient => "Omniscient",
        }
    }
}

/// Scoring tolerance: a packet counts as overdue only if it exits more
/// than this after its target. Non-preemptive replays are exact (integer
/// picosecond arithmetic), but the preemptive fluid model quantizes
/// partial transmissions to whole bytes, leaving picosecond-scale
/// residue on resumed packets; 1 ns absorbs that while being three
/// orders of magnitude below any real miss (the bottleneck transmission
/// time is 12 µs).
pub const OVERDUE_TOLERANCE_PS: i64 = 1_000;

/// Outcome of one replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Which UPS was used.
    pub mode: ReplayMode,
    /// Packets replayed.
    pub total: usize,
    /// Packets with `o'(p) > o(p)`.
    pub overdue: usize,
    /// Packets with `o'(p) > o(p) + T`.
    pub overdue_gt_t: usize,
    /// Packets never delivered by the replay. Always 0 on the strict
    /// path ([`replay_schedule`]); nonzero only under a loss-inducing
    /// chaos policy scored via [`replay_schedule_lossy`].
    pub lost: usize,
    /// The threshold `T`: one MTU transmission on the slowest link.
    pub t: Dur,
    /// Per-packet lateness `o'(p) − o(p)` in picoseconds (≤ 0 = on time),
    /// in recorded-packet order.
    pub lateness: Vec<i64>,
    /// Queueing-delay ratios replay/original for packets with non-zero
    /// original queueing delay (Figure 1).
    pub qdelay_ratios: Vec<f64>,
}

impl ReplayReport {
    /// Fraction of packets overdue.
    pub fn frac_overdue(&self) -> f64 {
        self.overdue as f64 / self.total.max(1) as f64
    }

    /// Fraction of packets overdue by more than `T`.
    pub fn frac_overdue_gt_t(&self) -> f64 {
        self.overdue_gt_t as f64 / self.total.max(1) as f64
    }

    /// Fraction of packets lost (never delivered) in the replay.
    pub fn frac_lost(&self) -> f64 {
        self.lost as f64 / self.total.max(1) as f64
    }

    /// Replay fidelity: the fraction of packets both delivered and on
    /// time (`o' ≤ o`). Equals `1 − frac_overdue` on the strict path;
    /// under chaos it additionally charges every lost packet.
    pub fn fidelity(&self) -> f64 {
        (self.total - self.overdue - self.lost) as f64 / self.total.max(1) as f64
    }

    /// Worst lateness observed (≤ 0 means a perfect replay).
    pub fn max_lateness(&self) -> i64 {
        self.lateness.iter().copied().max().unwrap_or(0)
    }

    /// True iff every packet met its target (`o' ≤ o`).
    pub fn perfect(&self) -> bool {
        self.overdue == 0
    }
}

/// Run the original schedule: install `original` schedulers on every
/// port of `topo` (which must be freshly built with
/// [`TraceLevel::Hops`] and unbounded buffers), inject the UDP workload,
/// run to completion, and extract the recorded schedule.
///
/// `seed` feeds the Random scheduler. SJF-style originals get their
/// priority stamp (`prio = flow size`) from the ingress, as the paper's
/// model requires.
pub fn record_original(
    topo: &mut Topology,
    flows: &[FlowDesc],
    original: SchedKind,
    seed: u64,
    mtu: u32,
) -> RecordedSchedule {
    assert_eq!(
        topo.net.telemetry.level,
        TraceLevel::Hops,
        "recording requires hop-level tracing"
    );
    topo.net.configure_links(|l| {
        LinkPolicy::keep()
            .buffer(None)
            .scheduler(original.build(l.id, seed))
    });
    let prio = if original.needs_priority_stamp() {
        PrioPolicy::FlowSize
    } else {
        PrioPolicy::None
    };
    let mut stamper = HeaderStamper::new(SlackPolicy::None, prio);
    let routes = Arc::clone(&topo.routes);
    ups_transport::inject_udp_flows(&mut topo.net, &routes, flows, mtu, &mut stamper);
    topo.net.run_to_completion();
    RecordedSchedule::from_telemetry(&topo.net.telemetry)
}

/// Replay `schedule` on a *fresh* build of the same topology under
/// `mode`, and score it. The replay must be loss-free (it asserts so);
/// to score a replay on a chaos-perturbed network, use
/// [`replay_schedule_lossy`].
pub fn replay_schedule(
    topo: &mut Topology,
    schedule: &RecordedSchedule,
    mode: ReplayMode,
) -> ReplayReport {
    replay_schedule_impl(topo, schedule, mode, false)
}

/// Like [`replay_schedule`], but tolerant of packet loss: a packet the
/// replay never delivers (dropped by an installed
/// [`ChaosPolicy`](ups_net::ChaosPolicy), e.g.) counts in
/// [`ReplayReport::lost`] and against [`ReplayReport::fidelity`], and is
/// excluded from the lateness and queueing-delay-ratio distributions.
/// On a loss-free run the report is identical to the strict path's.
pub fn replay_schedule_lossy(
    topo: &mut Topology,
    schedule: &RecordedSchedule,
    mode: ReplayMode,
) -> ReplayReport {
    replay_schedule_impl(topo, schedule, mode, true)
}

fn replay_schedule_impl(
    topo: &mut Topology,
    schedule: &RecordedSchedule,
    mode: ReplayMode,
    allow_loss: bool,
) -> ReplayReport {
    assert_eq!(
        topo.net.telemetry.level,
        TraceLevel::Hops,
        "replay scoring requires hop-level tracing"
    );
    assert_eq!(
        topo.net.telemetry.counters.injected, 0,
        "replay needs a fresh topology build"
    );
    topo.net.configure_links(|_| {
        let base = LinkPolicy::keep().buffer(None);
        match mode {
            ReplayMode::Lstf { preemptive, key } => base
                .scheduler(Box::new(lstf_with(key)))
                .preemptive(preemptive),
            ReplayMode::Priority => base.scheduler(Box::new(priority())),
            ReplayMode::Edf => base.scheduler(Box::new(edf())),
            ReplayMode::Omniscient => base.scheduler(Box::new(omniscient())),
        }
    });

    // Inject the identical input with mode-specific headers.
    for rec in &schedule.packets {
        let hdr = match mode {
            ReplayMode::Lstf { .. } => SchedHeader {
                slack: rec.slack(),
                prio: 0,
                hop_times: None,
            },
            ReplayMode::Priority | ReplayMode::Edf => SchedHeader {
                slack: 0,
                prio: rec.o.as_ps() as i64,
                hop_times: None,
            },
            ReplayMode::Omniscient => SchedHeader {
                slack: 0,
                prio: 0,
                hop_times: Some(Arc::from(rec.hop_tx_start.clone())),
            },
        };
        topo.net.inject_on_path(
            rec.i,
            rec.flow,
            rec.seq,
            rec.size,
            rec.src,
            rec.dst,
            Arc::clone(&rec.path),
            hdr,
            PacketKind::Data {
                bytes: rec.size.saturating_sub(40),
            },
        );
    }
    topo.net.run_to_completion();

    let tel = &topo.net.telemetry;
    if !allow_loss {
        assert_eq!(tel.counters.dropped, 0, "replay must be drop-free");
    }
    let max_size = schedule
        .packets
        .iter()
        .map(|p| p.size)
        .max()
        .unwrap_or(1500);
    let t = topo.net.bottleneck_bw().tx_time(max_size);
    score_replay(schedule, tel, mode, allow_loss, t)
}

/// Score a completed replay run against the recorded schedule: replay
/// packet ids are assigned in injection order, which is exactly the
/// recorded order (telemetry keeps one dense record per injection even
/// for packets that are later dropped). Shared by the `o(p)`-target
/// replays above and the deadline-objective replays
/// ([`crate::deadline`]), which build their own headers but score the
/// same way.
pub(crate) fn score_replay(
    schedule: &RecordedSchedule,
    tel: &Telemetry,
    mode: ReplayMode,
    allow_loss: bool,
    t: Dur,
) -> ReplayReport {
    assert_eq!(tel.packets.len(), schedule.packets.len());
    let mut lateness = Vec::with_capacity(schedule.packets.len());
    let mut ratios = Vec::new();
    let (mut overdue, mut overdue_gt_t, mut lost) = (0usize, 0usize, 0usize);
    for (rec, rep) in schedule.packets.iter().zip(&tel.packets) {
        let o_replay = match rep.delivered {
            Some(t) => t,
            None if allow_loss => {
                lost += 1;
                continue;
            }
            None => panic!("replay packet undelivered"),
        };
        let late = o_replay.signed_since(rec.o);
        if late > OVERDUE_TOLERANCE_PS {
            overdue += 1;
            if late > t.as_i64() {
                overdue_gt_t += 1;
            }
        }
        lateness.push(late);
        if rec.qdelay > Dur::ZERO {
            ratios.push(rep.total_qdelay().as_ps() as f64 / rec.qdelay.as_ps() as f64);
        }
    }

    ReplayReport {
        mode,
        total: schedule.packets.len(),
        overdue,
        overdue_gt_t,
        lost,
        t,
        lateness,
        qdelay_ratios: ratios,
    }
}

/// Convenience wrapper: record under `original` and replay under `mode`,
/// building the topology twice with `factory`.
pub fn replay_experiment(
    factory: impl Fn() -> Topology,
    flows: &[FlowDesc],
    original: SchedKind,
    mode: ReplayMode,
    seed: u64,
    mtu: u32,
) -> (RecordedSchedule, ReplayReport) {
    let mut orig_topo = factory();
    let schedule = record_original(&mut orig_topo, flows, original, seed, mtu);
    drop(orig_topo);
    let mut replay_topo = factory();
    let report = replay_schedule(&mut replay_topo, &schedule, mode);
    (schedule, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;
    use ups_sim::{Bandwidth, Time};
    use ups_topo::simple::{dumbbell, star};

    fn star_factory() -> Topology {
        star(6, Bandwidth::gbps(1), Dur::from_micros(5), TraceLevel::Hops)
    }

    /// A small contended workload on the star: every other host sends a
    /// paced burst toward host 0, so the hub's egress port to host 0 is
    /// a genuine congestion point.
    fn star_flows(topo: &Topology, pkts: u64) -> Vec<FlowDesc> {
        topo.hosts[1..]
            .iter()
            .enumerate()
            .map(|(i, &src)| FlowDesc {
                id: FlowId(i as u64),
                src,
                dst: topo.hosts[0],
                pkts,
                start: Time::ZERO,
                deadline: None,
            })
            .collect()
    }

    #[test]
    fn fifo_schedule_replays_perfectly_under_lstf_on_a_star() {
        // Star ⇒ at most two congestion points per packet (source NIC and
        // hub egress), so LSTF must replay FIFO perfectly (§2.2 theorem;
        // non-preemptive suffices here because packet sizes are uniform
        // and the workload is synchronized).
        let flows = star_flows(&star_factory(), 5);
        let (schedule, report) = replay_experiment(
            star_factory,
            &flows,
            SchedKind::Fifo,
            ReplayMode::lstf(),
            1,
            1500,
        );
        assert!(schedule.max_congestion_points() <= 2);
        assert!(
            report.perfect(),
            "overdue {}/{} (max lateness {}ps)",
            report.overdue,
            report.total,
            report.max_lateness()
        );
    }

    #[test]
    fn random_schedule_replays_perfectly_with_omniscient() {
        let flows = star_flows(&star_factory(), 8);
        let (_, report) = replay_experiment(
            star_factory,
            &flows,
            SchedKind::Random,
            ReplayMode::Omniscient,
            7,
            1500,
        );
        assert!(report.perfect(), "omniscient must be exact (Appendix B)");
    }

    #[test]
    fn edf_and_lstf_produce_identical_replays() {
        // Appendix E: EDF ≡ LSTF.
        let flows = star_flows(&star_factory(), 6);
        let mut t1 = star_factory();
        let schedule = record_original(&mut t1, &flows, SchedKind::Random, 3, 1500);
        let mut t2 = star_factory();
        let lstf_rep = replay_schedule(&mut t2, &schedule, ReplayMode::lstf());
        let mut t3 = star_factory();
        let edf_rep = replay_schedule(&mut t3, &schedule, ReplayMode::Edf);
        assert_eq!(lstf_rep.lateness, edf_rep.lateness);
    }

    #[test]
    fn replay_of_lifo_on_dumbbell_mostly_meets_targets() {
        let factory = || {
            dumbbell(
                4,
                Bandwidth::gbps(10),
                Bandwidth::gbps(1),
                Dur::from_micros(5),
                TraceLevel::Hops,
            )
        };
        let topo = factory();
        let flows: Vec<FlowDesc> = (0..4)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: topo.hosts[i as usize],
                dst: topo.hosts[4 + i as usize],
                pkts: 20,
                start: Time::from_micros(i * 3),
                deadline: None,
            })
            .collect();
        let (schedule, report) = replay_experiment(
            factory,
            &flows,
            SchedKind::Lifo,
            ReplayMode::lstf(),
            1,
            1500,
        );
        assert_eq!(report.total, 80);
        assert!(schedule.mean_slack() > 0.0);
        // LSTF replay of LIFO is approximate, but the overwhelming
        // majority of packets must meet their targets at this tiny scale.
        assert!(
            report.frac_overdue() < 0.2,
            "frac overdue {}",
            report.frac_overdue()
        );
    }

    #[test]
    fn priority_replay_is_worse_than_lstf_on_shared_paths() {
        // §2.3(7): simple priorities cannot compensate for early delays.
        let factory = || {
            dumbbell(
                6,
                Bandwidth::gbps(10),
                Bandwidth::gbps(1),
                Dur::from_micros(5),
                TraceLevel::Hops,
            )
        };
        let topo = factory();
        let flows: Vec<FlowDesc> = (0..6)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: topo.hosts[i as usize],
                dst: topo.hosts[6 + (i as usize + 1) % 6],
                pkts: 30,
                start: Time::from_micros(i),
                deadline: None,
            })
            .collect();
        let mut t1 = factory();
        let schedule = record_original(&mut t1, &flows, SchedKind::Random, 11, 1500);
        let mut t2 = factory();
        let lstf_rep = replay_schedule(&mut t2, &schedule, ReplayMode::lstf());
        let mut t3 = factory();
        let prio_rep = replay_schedule(&mut t3, &schedule, ReplayMode::Priority);
        assert!(
            prio_rep.overdue >= lstf_rep.overdue,
            "priority {} vs lstf {}",
            prio_rep.overdue,
            lstf_rep.overdue
        );
    }

    #[test]
    fn qdelay_ratios_are_collected() {
        let flows = star_flows(&star_factory(), 6);
        let (_, report) = replay_experiment(
            star_factory,
            &flows,
            SchedKind::Random,
            ReplayMode::lstf(),
            5,
            1500,
        );
        assert!(!report.qdelay_ratios.is_empty());
        assert!(report.qdelay_ratios.iter().all(|&r| r >= 0.0));
    }
}
