//! Open-loop UDP injection.
//!
//! The replay experiments (§2.3) use UDP flows so the offered load is
//! identical between the original run and the replay. A host transmits a
//! flow's packets back-to-back at its NIC line rate, so packet `k`
//! reaches the wire one serialization time after packet `k−1` — this is
//! the endhost pacing the paper leans on ("packets are paced by the
//! endhost link"), and it makes `i(p)` reflect the paced send time
//! rather than a single burst instant, so replay slacks measure genuine
//! cross-traffic queueing.

use crate::flow::FlowDesc;
use crate::header::HeaderStamper;
use std::sync::Arc;
use ups_net::{Network, PacketKind, RoutingTable, SchedHeader};

/// Inject every packet of every flow, paced at the flow's first-hop
/// (host NIC) line rate, stamping headers with `stamper`. Paths resolve
/// through the `routes` handle from `compute_routes()`. `wire_bytes` is
/// the on-the-wire packet size (MTU).
///
/// Flows carrying a [`FlowDesc::deadline`] override the stamper's slack
/// policy: packet `k` (paced `k` serialization times after the flow
/// start) gets `slack = max(0, deadline − k·pace − tmin(path))` — the
/// true time budget EDF/LSTF can spend queueing it.
pub fn inject_udp_flows(
    net: &mut Network,
    routes: &RoutingTable,
    flows: &[FlowDesc],
    wire_bytes: u32,
    stamper: &mut HeaderStamper,
) {
    for f in flows {
        let path = routes.resolve_path(f.src, f.dst, f.id);
        let pace = path.bw[0].tx_time(wire_bytes);
        let tmin = path.tmin(wire_bytes);
        for seq in 0..f.pkts {
            let at = f.start + pace * seq;
            let mut hdr = stamper.stamp_data(f.id, f.pkts, f.pkts - seq, wire_bytes, at);
            if let Some(deadline) = f.deadline {
                hdr.slack = (deadline.as_i64() - (pace * seq).as_i64() - tmin.as_i64()).max(0);
            }
            net.inject_on_path(
                at,
                f.id,
                seq,
                wire_bytes,
                f.src,
                f.dst,
                Arc::clone(&path),
                hdr,
                PacketKind::Data {
                    bytes: wire_bytes - 40,
                },
            );
        }
    }
}

/// Inject with an externally supplied header per packet (the replay
/// engine computes slacks from the recorded schedule and chooses paths
/// recorded in the original run).
pub fn inject_udp_packets(net: &mut Network, packets: impl Iterator<Item = UdpPacket>) {
    for p in packets {
        net.inject_on_path(
            p.at,
            p.flow,
            p.seq,
            p.size,
            p.src,
            p.dst,
            p.path,
            p.hdr,
            PacketKind::Data {
                bytes: p.size.saturating_sub(40),
            },
        );
    }
}

/// A fully specified packet injection (replay use).
#[derive(Debug)]
pub struct UdpPacket {
    /// Injection time.
    pub at: ups_sim::Time,
    /// Flow id.
    pub flow: ups_net::FlowId,
    /// Sequence within flow.
    pub seq: u64,
    /// Wire size.
    pub size: u32,
    /// Source host.
    pub src: ups_net::NodeId,
    /// Destination host.
    pub dst: ups_net::NodeId,
    /// Fixed path.
    pub path: std::sync::Arc<ups_net::Path>,
    /// Pre-computed header.
    pub hdr: SchedHeader,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{PrioPolicy, SlackPolicy};
    use ups_net::{FlowId, TraceLevel};
    use ups_sim::{Bandwidth, Dur, Time};
    use ups_topo::simple::dumbbell;

    #[test]
    fn udp_flow_is_paced_by_the_host_nic() {
        let mut topo = dumbbell(
            1,
            Bandwidth::gbps(1),
            Bandwidth::gbps(1),
            Dur::from_micros(1),
            TraceLevel::Hops,
        );
        let flows = [FlowDesc {
            id: FlowId(0),
            src: topo.hosts[0],
            dst: topo.hosts[1],
            pkts: 5,
            start: Time::ZERO,
            deadline: None,
        }];
        let mut st = HeaderStamper::new(SlackPolicy::None, PrioPolicy::None);
        let routes = topo.routes.clone();
        inject_udp_flows(&mut topo.net, &routes, &flows, 1500, &mut st);
        topo.net.run_to_completion();
        assert_eq!(topo.net.telemetry.counters.delivered, 5);
        // Deliveries spaced exactly one transmission time apart.
        let times: Vec<u64> = topo
            .net
            .telemetry
            .packets
            .iter()
            .map(|r| r.delivered.unwrap().as_ps())
            .collect();
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], Dur::from_micros(12).as_ps());
        }
    }
}
