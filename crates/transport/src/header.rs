//! Ingress header stamping — the paper's §3 slack-initialization
//! heuristics plus the priority stamps SJF/SRPT need.
//!
//! | Policy | Paper use | Formula |
//! |---|---|---|
//! | [`SlackPolicy::None`] | FIFO & friends | slack = 0 |
//! | [`SlackPolicy::FlowSizeTimesD`] | mean FCT (§3.1) | `slack = fs(p) · D`, `fs` in packets, `D` ≫ any network delay |
//! | [`SlackPolicy::Constant`] | tail delay (§3.2) | same slack for every packet → LSTF ≡ FIFO+ |
//! | [`SlackPolicy::VirtualClock`] | fairness (§3.3) | `slack(pᵢ) = max(0, slack(pᵢ₋₁) + τ − (i(pᵢ) − i(pᵢ₋₁)))` with `τ` = packet time at the estimated fair rate |
//!
//! A [`HeaderStamper`] holds the per-flow state the virtual-clock rule
//! needs and is owned by whichever component injects packets (a host's
//! transport endpoint, or the UDP open-loop injector).

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use ups_net::{FlowId, SchedHeader};
use ups_sim::{Bandwidth, Dur, Time, PS_PER_SEC};

/// Slack-initialization heuristic.
#[derive(Debug, Clone)]
pub enum SlackPolicy {
    /// Zero slack header (for schedulers that ignore it).
    None,
    /// `slack = flow_pkts × D` (§3.1). `D = 1 s` in the paper.
    FlowSizeTimesD {
        /// The multiplier D.
        d: Dur,
    },
    /// Constant slack for all packets (§3.2; 1 s in the paper).
    Constant {
        /// The constant.
        slack: Dur,
    },
    /// Virtual-clock pacing against an estimated fair rate (§3.3).
    VirtualClock {
        /// The fair-share estimate `rest` (any value ≤ r* converges).
        rest: Bandwidth,
    },
    /// Weighted fairness (§3.3's extension): per-flow `rest` values "in
    /// proportion to the desired weights". Flow `f` paces against
    /// `base × weight(f)`; flows without an entry use weight 1.
    WeightedVirtualClock {
        /// The unweighted rate estimate.
        base: Bandwidth,
        /// Per-flow weights (must be > 0).
        weights: std::collections::HashMap<FlowId, f64>,
    },
}

/// Static-priority stamp for priority-based schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrioPolicy {
    /// prio = 0 for everything.
    None,
    /// prio = flow size in packets (SJF).
    FlowSize,
    /// prio = remaining packets of the flow including this one (SRPT).
    Remaining,
}

/// Stamps headers at the ingress, holding virtual-clock state per flow.
#[derive(Debug)]
pub struct HeaderStamper {
    /// Slack heuristic.
    pub slack: SlackPolicy,
    /// Priority stamp.
    pub prio: PrioPolicy,
    /// Virtual-clock state: (slack of previous packet, its arrival time).
    vc: HashMap<FlowId, (i64, Time)>,
}

impl HeaderStamper {
    /// Create a stamper.
    pub fn new(slack: SlackPolicy, prio: PrioPolicy) -> HeaderStamper {
        HeaderStamper {
            slack,
            prio,
            vc: HashMap::new(),
        }
    }

    /// Stamper that writes all-zero headers.
    pub fn zero() -> HeaderStamper {
        HeaderStamper::new(SlackPolicy::None, PrioPolicy::None)
    }

    /// Stamp a data packet of `wire_bytes` belonging to `flow` (total
    /// size `flow_pkts`, `remaining_pkts` unsent including this one),
    /// injected at `now`.
    pub fn stamp_data(
        &mut self,
        flow: FlowId,
        flow_pkts: u64,
        remaining_pkts: u64,
        wire_bytes: u32,
        now: Time,
    ) -> SchedHeader {
        let slack = match &self.slack {
            SlackPolicy::None => 0,
            SlackPolicy::FlowSizeTimesD { d } => (flow_pkts as i64).saturating_mul(d.as_i64()),
            SlackPolicy::Constant { slack } => slack.as_i64(),
            SlackPolicy::VirtualClock { rest } => {
                self.vc_advance(flow, rest.tx_time(wire_bytes).as_i64(), now)
            }
            SlackPolicy::WeightedVirtualClock { base, weights } => {
                let w = weights.get(&flow).copied().unwrap_or(1.0);
                assert!(w > 0.0, "non-positive weight for {flow:?}");
                // rest_f = base × w ⇒ the per-packet pacing interval
                // shrinks by the weight.
                let tau = (base.tx_time(wire_bytes).as_i64() as f64 / w).round() as i64;
                self.vc_advance(flow, tau.max(1), now)
            }
        };
        let prio = match self.prio {
            PrioPolicy::None => 0,
            PrioPolicy::FlowSize => flow_pkts.min(i64::MAX as u64) as i64,
            PrioPolicy::Remaining => remaining_pkts.min(i64::MAX as u64) as i64,
        };
        SchedHeader {
            slack,
            prio,
            hop_times: None,
        }
    }

    /// Advance the virtual-clock recursion for `flow` with per-packet
    /// interval `tau`: `slack(pᵢ) = max(0, slack(pᵢ₋₁) + τ − gap)`.
    fn vc_advance(&mut self, flow: FlowId, tau: i64, now: Time) -> i64 {
        match self.vc.get(&flow) {
            None => {
                // First packet of the flow: slack = 0.
                self.vc.insert(flow, (0, now));
                0
            }
            Some(&(prev_slack, prev_time)) => {
                let gap = now.signed_since(prev_time);
                let s = (prev_slack + tau - gap).max(0);
                self.vc.insert(flow, (s, now));
                s
            }
        }
    }

    /// Stamp an acknowledgement. ACKs are tiny and ride lightly loaded
    /// reverse paths; they get a modest constant slack (1 ms) and top
    /// priority, mirroring pFabric's "ACKs are never the bottleneck"
    /// treatment.
    pub fn stamp_ack(&self) -> SchedHeader {
        SchedHeader {
            slack: PS_PER_SEC as i64 / 1_000,
            prio: 0,
            hop_times: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_size_times_d_orders_by_size() {
        let mut st = HeaderStamper::new(
            SlackPolicy::FlowSizeTimesD {
                d: Dur::from_secs(1),
            },
            PrioPolicy::None,
        );
        let small = st.stamp_data(FlowId(0), 2, 2, 1500, Time::ZERO);
        let big = st.stamp_data(FlowId(1), 1000, 1000, 1500, Time::ZERO);
        assert!(small.slack < big.slack);
        assert_eq!(small.slack, 2 * PS_PER_SEC as i64);
    }

    #[test]
    fn constant_slack_is_flat() {
        let mut st = HeaderStamper::new(
            SlackPolicy::Constant {
                slack: Dur::from_secs(1),
            },
            PrioPolicy::None,
        );
        for i in 0..5 {
            let h = st.stamp_data(FlowId(i), 10 + i, 1, 1500, Time::from_micros(i));
            assert_eq!(h.slack, PS_PER_SEC as i64);
        }
    }

    #[test]
    fn virtual_clock_first_packet_gets_zero() {
        let mut st = HeaderStamper::new(
            SlackPolicy::VirtualClock {
                rest: Bandwidth::gbps(1),
            },
            PrioPolicy::None,
        );
        assert_eq!(
            st.stamp_data(FlowId(9), 100, 100, 1500, Time::ZERO).slack,
            0
        );
    }

    #[test]
    fn virtual_clock_credits_slow_senders_and_charges_fast_ones() {
        let rest = Bandwidth::gbps(1); // tau = 12us per 1500B
        let mut st = HeaderStamper::new(SlackPolicy::VirtualClock { rest }, PrioPolicy::None);
        let f = FlowId(0);
        st.stamp_data(f, 100, 100, 1500, Time::ZERO);
        // Next packet arrives immediately (faster than rest): slack grows
        // by tau - 0 = 12us: the flow is ahead of its fair rate.
        let h = st.stamp_data(f, 100, 99, 1500, Time::ZERO);
        assert_eq!(h.slack, Dur::from_micros(12).as_i64());
        // Third packet arrives after a long idle gap: slack floors at 0.
        let h = st.stamp_data(f, 100, 98, 1500, Time::from_millis(1));
        assert_eq!(h.slack, 0);
    }

    #[test]
    fn virtual_clock_tracks_flows_independently() {
        let mut st = HeaderStamper::new(
            SlackPolicy::VirtualClock {
                rest: Bandwidth::gbps(1),
            },
            PrioPolicy::None,
        );
        st.stamp_data(FlowId(0), 10, 10, 1500, Time::ZERO);
        st.stamp_data(FlowId(0), 10, 9, 1500, Time::ZERO);
        // A different flow's first packet is still zero-slack.
        assert_eq!(st.stamp_data(FlowId(1), 10, 10, 1500, Time::ZERO).slack, 0);
    }

    #[test]
    fn weighted_virtual_clock_scales_tau_by_weight() {
        let mut weights = std::collections::HashMap::new();
        weights.insert(FlowId(0), 2.0); // double share
        weights.insert(FlowId(1), 1.0);
        let mut st = HeaderStamper::new(
            SlackPolicy::WeightedVirtualClock {
                base: Bandwidth::gbps(1),
                weights,
            },
            PrioPolicy::None,
        );
        // Both flows send two back-to-back packets; the heavier flow
        // accrues half the slack credit (it is *entitled* to send twice
        // as fast, so back-to-back sending is less ahead of its share).
        st.stamp_data(FlowId(0), 10, 10, 1500, Time::ZERO);
        let h0 = st.stamp_data(FlowId(0), 10, 9, 1500, Time::ZERO);
        st.stamp_data(FlowId(1), 10, 10, 1500, Time::ZERO);
        let h1 = st.stamp_data(FlowId(1), 10, 9, 1500, Time::ZERO);
        assert_eq!(h0.slack * 2, h1.slack);
        // Unlisted flows default to weight 1.
        st.stamp_data(FlowId(9), 10, 10, 1500, Time::ZERO);
        let h9 = st.stamp_data(FlowId(9), 10, 9, 1500, Time::ZERO);
        assert_eq!(h9.slack, h1.slack);
    }

    #[test]
    fn priority_stamps() {
        let mut st = HeaderStamper::new(SlackPolicy::None, PrioPolicy::FlowSize);
        assert_eq!(st.stamp_data(FlowId(0), 77, 5, 1500, Time::ZERO).prio, 77);
        let mut st = HeaderStamper::new(SlackPolicy::None, PrioPolicy::Remaining);
        assert_eq!(st.stamp_data(FlowId(0), 77, 5, 1500, Time::ZERO).prio, 5);
    }

    #[test]
    fn ack_stamp_is_urgent() {
        let st = HeaderStamper::zero();
        let h = st.stamp_ack();
        assert_eq!(h.prio, 0);
        assert!(h.slack > 0);
    }
}
