//! `ups-transport` — endpoint transports over the simulated network.
//!
//! * [`udp`] — open-loop UDP injection (replay and tail-delay
//!   experiments; the offered load is then independent of scheduling);
//! * [`tcp`] — a compact TCP Reno (FCT and fairness experiments);
//! * [`header`] — the §3 ingress slack-initialization heuristics and the
//!   SJF/SRPT priority stamps;
//! * [`flow`] — flow descriptors and completion results.

#![forbid(unsafe_code)]

pub mod flow;
pub mod header;
pub mod tcp;
pub mod udp;

pub use flow::{ack_flow, data_flow, is_ack_flow, FlowDesc, FlowResult, ACK_FLOW_BIT};
pub use header::{HeaderStamper, PrioPolicy, SlackPolicy};
pub use tcp::{install_tcp, SharedResults, TcpConfig, TcpHost};
pub use udp::{inject_udp_flows, inject_udp_packets, UdpPacket};
