//! Transport-level flow descriptors and completion results.

use ups_net::{FlowId, NodeId};
use ups_sim::{Dur, Time};

/// Flag bit distinguishing ACK "flows" from data flows in telemetry:
/// acknowledgements share the flow's identity but travel the reverse
/// path, and metrics must not count their bytes as goodput.
pub const ACK_FLOW_BIT: u64 = 1 << 63;

/// True if a flow id denotes an ACK stream.
pub fn is_ack_flow(f: FlowId) -> bool {
    f.0 & ACK_FLOW_BIT != 0
}

/// The ACK stream id for a data flow.
pub fn ack_flow(f: FlowId) -> FlowId {
    FlowId(f.0 | ACK_FLOW_BIT)
}

/// The data flow behind an ACK stream id.
pub fn data_flow(f: FlowId) -> FlowId {
    FlowId(f.0 & !ACK_FLOW_BIT)
}

/// A flow to run over a transport.
#[derive(Debug, Clone)]
pub struct FlowDesc {
    /// Flow id (dense, without the ACK bit).
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Flow length in MSS-sized packets.
    pub pkts: u64,
    /// Time the application opens the flow.
    pub start: Time,
    /// Completion deadline relative to `start`, for deadline-tagged
    /// traffic classes. When present, open-loop injection initializes
    /// each packet's header slack from the time budget actually left
    /// (deadline minus pacing offset minus minimum remaining transit),
    /// so EDF/LSTF see the real deadline instead of a heuristic stamp.
    pub deadline: Option<Dur>,
}

/// Completion record for one flow.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The flow.
    pub desc: FlowDesc,
    /// When the sender saw the final cumulative ACK (sender-side FCT
    /// endpoint; constant half-RTT offset versus receiver-side, identical
    /// across compared schedulers).
    pub completed: Option<Time>,
    /// Packets retransmitted (loss diagnostics).
    pub retransmits: u64,
}

impl FlowResult {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<ups_sim::Dur> {
        self.completed.map(|t| t - self.desc.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_bit_roundtrip() {
        let f = FlowId(12345);
        let a = ack_flow(f);
        assert!(is_ack_flow(a));
        assert!(!is_ack_flow(f));
        assert_eq!(data_flow(a), f);
        assert_eq!(data_flow(f), f);
    }
}
