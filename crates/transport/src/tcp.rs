//! A compact TCP Reno for the closed-loop experiments (§3.1 FCT, §3.3
//! fairness).
//!
//! The paper runs ns-2 TCP; the FCT and fairness results only need a
//! loss-reactive AIMD loop, so this implements the Reno core and nothing
//! more: slow start, congestion avoidance, triple-duplicate-ACK fast
//! retransmit, go-back-N retransmission timeout with exponential backoff,
//! Jacobson/Karn RTT estimation, per-packet cumulative ACKs. Sequence
//! numbers are in whole MSS packets (every data packet is one MSS).
//!
//! One [`TcpHost`] app per host multiplexes all its sender and receiver
//! connections. Flow starts are armed as timers at install time.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use crate::flow::{ack_flow, data_flow, is_ack_flow, FlowDesc, FlowResult};
use crate::header::HeaderStamper;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};
use ups_net::{App, FlowId, Network, NodeId, Packet, PacketKind, Path};
use ups_sim::{Dur, Time};

/// TCP parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Payload bytes per packet.
    pub mss: u32,
    /// Header bytes added to payload on the wire (TCP/IP).
    pub header_bytes: u32,
    /// ACK wire size.
    pub ack_bytes: u32,
    /// Initial congestion window (packets).
    pub init_cwnd: f64,
    /// Initial slow-start threshold (packets).
    pub init_ssthresh: f64,
    /// Retransmission timeout floor.
    pub min_rto: Dur,
    /// RTO before the first RTT sample.
    pub init_rto: Dur,
    /// Maximum congestion window (packets); stands in for the receiver
    /// window.
    pub max_cwnd: f64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            header_bytes: 40,
            ack_bytes: 40,
            init_cwnd: 10.0,
            init_ssthresh: 1e9,
            min_rto: Dur::from_millis(1),
            init_rto: Dur::from_millis(10),
            max_cwnd: 10_000.0,
        }
    }
}

impl TcpConfig {
    /// Wire size of a full data packet.
    pub fn wire_bytes(&self) -> u32 {
        self.mss + self.header_bytes
    }
}

/// Shared per-flow completion results, indexed by flow id.
pub type SharedResults = Arc<Mutex<Vec<FlowResult>>>;

#[derive(Debug)]
struct Sender {
    desc: FlowDesc,
    path: Arc<Path>,
    snd_una: u64,
    next_seq: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    in_recovery: bool,
    recover_point: u64,
    srtt: Option<Dur>,
    rttvar: Dur,
    rto: Dur,
    rto_deadline: Option<Time>,
    timed: Option<(u64, Time)>,
    retransmits: u64,
    completed: bool,
}

#[derive(Debug)]
struct Receiver {
    src: NodeId,
    reverse_path: Arc<Path>,
    next_expected: u64,
    out_of_order: BTreeSet<u64>,
    acks_sent: u64,
}

/// Per-host TCP endpoint multiplexing all connections of that host.
#[derive(Debug)]
pub struct TcpHost {
    cfg: TcpConfig,
    stamper: HeaderStamper,
    /// Flows sourced here, indexed by their start-timer id.
    outgoing: HashMap<u64, FlowDesc>,
    senders: HashMap<FlowId, Sender>,
    receivers: HashMap<FlowId, Receiver>,
    results: SharedResults,
}

/// Timer id layout: `flow*2` = flow start, `flow*2+1` = RTO.
fn start_timer_id(f: FlowId) -> u64 {
    f.0 * 2
}
fn rto_timer_id(f: FlowId) -> u64 {
    f.0 * 2 + 1
}

impl TcpHost {
    fn open(&mut self, net: &mut Network, desc: FlowDesc) {
        let path = net.routing().resolve_path(desc.src, desc.dst, desc.id);
        let s = Sender {
            path,
            snd_una: 0,
            next_seq: 0,
            cwnd: self.cfg.init_cwnd,
            ssthresh: self.cfg.init_ssthresh,
            dupacks: 0,
            in_recovery: false,
            recover_point: 0,
            srtt: None,
            rttvar: Dur::ZERO,
            rto: self.cfg.init_rto,
            rto_deadline: None,
            timed: None,
            retransmits: 0,
            completed: false,
            desc,
        };
        let id = s.desc.id;
        self.senders.insert(id, s);
        self.pump(net, id);
    }

    /// Transmit one data packet of `flow` with sequence `seq`.
    fn send_data(&mut self, net: &mut Network, flow: FlowId, seq: u64, retransmit: bool) {
        let now = net.now();
        let cfg_wire = self.cfg.wire_bytes();
        let mss = self.cfg.mss;
        let s = self.senders.get_mut(&flow).expect("send on closed flow");
        let remaining = s.desc.pkts - seq;
        let hdr = self
            .stamper
            .stamp_data(flow, s.desc.pkts, remaining, cfg_wire, now);
        let s = self.senders.get_mut(&flow).expect("send on closed flow");
        if retransmit {
            s.retransmits += 1;
        } else if s.timed.is_none() {
            // Karn: only time fresh transmissions, one at a time.
            s.timed = Some((seq, now));
        }
        let (src, dst, path) = (s.desc.src, s.desc.dst, Arc::clone(&s.path));
        net.inject_on_path(
            now,
            flow,
            seq,
            cfg_wire,
            src,
            dst,
            path,
            hdr,
            PacketKind::Data { bytes: mss },
        );
    }

    /// Send as much new data as the window allows; keep the RTO armed.
    fn pump(&mut self, net: &mut Network, flow: FlowId) {
        let now = net.now();
        loop {
            let s = self.senders.get_mut(&flow).expect("pump on closed flow");
            if s.completed {
                return;
            }
            let window = s.cwnd.min(self.cfg.max_cwnd) as u64;
            let inflight = s.next_seq.saturating_sub(s.snd_una);
            if s.next_seq >= s.desc.pkts || inflight >= window.max(1) {
                break;
            }
            let seq = s.next_seq;
            s.next_seq += 1;
            self.send_data(net, flow, seq, false);
        }
        // (Re)arm the RTO for the oldest outstanding data.
        let rto = {
            let s = self.senders.get_mut(&flow).expect("pump on closed flow");
            if s.snd_una >= s.next_seq {
                s.rto_deadline = None;
                return;
            }
            s.rto
        };
        let deadline = now + rto;
        let s = self.senders.get_mut(&flow).expect("pump on closed flow");
        s.rto_deadline = Some(deadline);
        let node = s.desc.src;
        net.set_timer(node, deadline, rto_timer_id(flow));
    }

    fn on_ack(&mut self, net: &mut Network, flow: FlowId, cum: u64) {
        let now = net.now();
        let min_rto = self.cfg.min_rto;
        let Some(s) = self.senders.get_mut(&flow) else {
            return;
        };
        if s.completed {
            return;
        }
        if cum > s.snd_una {
            // New data acknowledged.
            if let Some((seq, sent)) = s.timed {
                if cum > seq {
                    let sample = now - sent;
                    // Jacobson/Karels.
                    match s.srtt {
                        None => {
                            s.srtt = Some(sample);
                            s.rttvar = sample / 2;
                        }
                        Some(srtt) => {
                            let err = srtt.as_i64() - sample.as_i64();
                            let abs = Dur(err.unsigned_abs());
                            s.rttvar = Dur((3 * s.rttvar.as_ps() + abs.as_ps()) / 4);
                            s.srtt = Some(Dur((7 * srtt.as_ps() + sample.as_ps()) / 8));
                        }
                    }
                    s.rto = (s.srtt.unwrap() + s.rttvar * 4).max(min_rto);
                    s.timed = None;
                }
            }
            let newly = cum - s.snd_una;
            s.snd_una = cum;
            // A late ACK may outrun a go-back-N rollback of next_seq.
            s.next_seq = s.next_seq.max(cum);
            s.dupacks = 0;
            if s.in_recovery && cum >= s.recover_point {
                s.in_recovery = false;
            }
            if !s.in_recovery {
                if s.cwnd < s.ssthresh {
                    s.cwnd += newly as f64; // slow start
                } else {
                    s.cwnd += newly as f64 / s.cwnd; // congestion avoidance
                }
            }
            if s.snd_una >= s.desc.pkts {
                s.completed = true;
                s.rto_deadline = None;
                let mut res = self.results.lock().expect("results poisoned");
                let slot = &mut res[flow.0 as usize];
                slot.completed = Some(now);
                slot.retransmits = s.retransmits;
                return;
            }
            self.pump(net, flow);
        } else {
            // Duplicate ACK.
            s.dupacks += 1;
            if s.dupacks == 3 && !s.in_recovery {
                s.ssthresh = (s.cwnd / 2.0).max(2.0);
                s.cwnd = s.ssthresh;
                s.in_recovery = true;
                s.recover_point = s.next_seq;
                let seq = s.snd_una;
                self.send_data(net, flow, seq, true);
                self.pump(net, flow);
            }
        }
    }

    fn on_rto(&mut self, net: &mut Network, flow: FlowId, now: Time) {
        let Some(s) = self.senders.get_mut(&flow) else {
            return;
        };
        if s.completed {
            return;
        }
        // Ignore stale timers: only the currently armed deadline counts.
        if s.rto_deadline != Some(now) {
            return;
        }
        // Timeout: multiplicative backoff, go-back-N from snd_una.
        s.ssthresh = (s.cwnd / 2.0).max(2.0);
        s.cwnd = 1.0;
        s.dupacks = 0;
        s.in_recovery = false;
        s.next_seq = s.snd_una;
        s.rto = (s.rto * 2).min(Dur::from_secs(2));
        s.timed = None; // Karn: no samples across retransmission
        s.retransmits += 1;
        self.pump(net, flow);
    }

    fn on_data(&mut self, net: &mut Network, node: NodeId, pkt: &Packet) {
        let flow = pkt.flow;
        let now = net.now();
        let ack_hdr = self.stamper.stamp_ack();
        let ack_bytes = self.cfg.ack_bytes;
        let r = self.receivers.entry(flow).or_insert_with(|| Receiver {
            src: pkt.src,
            reverse_path: net.routing().resolve_path(node, pkt.src, flow),
            next_expected: 0,
            out_of_order: BTreeSet::new(),
            acks_sent: 0,
        });
        if pkt.seq >= r.next_expected {
            r.out_of_order.insert(pkt.seq);
            while r.out_of_order.remove(&r.next_expected) {
                r.next_expected += 1;
            }
        }
        let cum = r.next_expected;
        let seq = r.acks_sent;
        r.acks_sent += 1;
        let (src, path) = (r.src, Arc::clone(&r.reverse_path));
        net.inject_on_path(
            now,
            ack_flow(flow),
            seq,
            ack_bytes,
            node,
            src,
            path,
            ack_hdr,
            PacketKind::Ack { cum_ack: cum },
        );
    }
}

impl App for TcpHost {
    fn on_deliver(&mut self, net: &mut Network, node: NodeId, pkt: &Packet) {
        match pkt.kind {
            PacketKind::Data { .. } => self.on_data(net, node, pkt),
            PacketKind::Ack { cum_ack } => {
                debug_assert!(is_ack_flow(pkt.flow));
                self.on_ack(net, data_flow(pkt.flow), cum_ack);
            }
        }
    }

    fn on_timer(&mut self, net: &mut Network, _node: NodeId, id: u64) {
        if id % 2 == 0 {
            if let Some(desc) = self.outgoing.remove(&id) {
                self.open(net, desc);
            }
        } else {
            let flow = FlowId(id / 2);
            self.on_rto(net, flow, net.now());
        }
    }
}

/// Install a [`TcpHost`] on every host, arm flow-start timers, and return
/// the shared results vector (indexed by flow id).
///
/// `make_stamper` builds one header stamper per host (virtual-clock state
/// is per-flow and each flow sends from one host, so per-host stampers
/// are equivalent to a global one).
pub fn install_tcp(
    net: &mut Network,
    flows: &[FlowDesc],
    cfg: &TcpConfig,
    mut make_stamper: impl FnMut() -> HeaderStamper,
) -> SharedResults {
    let results: SharedResults = Arc::new(Mutex::new(
        flows
            .iter()
            .map(|f| FlowResult {
                desc: f.clone(),
                completed: None,
                retransmits: 0,
            })
            .collect(),
    ));
    // Flow ids must be dense for the results vector.
    for (i, f) in flows.iter().enumerate() {
        assert_eq!(f.id.0, i as u64, "flow ids must be dense from 0");
    }
    let hosts = net.hosts();
    for host in hosts {
        let mut outgoing = HashMap::new();
        for f in flows.iter().filter(|f| f.src == host) {
            outgoing.insert(start_timer_id(f.id), f.clone());
            net.set_timer(host, f.start, start_timer_id(f.id));
        }
        let app = TcpHost {
            cfg: cfg.clone(),
            stamper: make_stamper(),
            outgoing,
            senders: HashMap::new(),
            receivers: HashMap::new(),
            results: Arc::clone(&results),
        };
        net.attach_app(host, Box::new(app));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::{PrioPolicy, SlackPolicy};
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    /// Build a 4-pair dumbbell (hosts 0..4 on the left, 4..8 on the
    /// right), run `make_flows(&topo)` over it, and return results.
    fn run_flows(
        make_flows: impl FnOnce(&ups_topo::Topology) -> Vec<FlowDesc>,
        buffer: Option<u64>,
        horizon: Time,
    ) -> (Vec<FlowResult>, u64 /* drops */) {
        let mut topo = dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(50),
            TraceLevel::Delivery,
        );
        let flows = make_flows(&topo);
        topo.net
            .configure_links(|_| ups_net::LinkPolicy::keep().buffer(buffer));
        let results = install_tcp(&mut topo.net, &flows, &TcpConfig::default(), || {
            HeaderStamper::new(SlackPolicy::None, PrioPolicy::None)
        });
        topo.net.run_until(horizon);
        let drops = topo.net.telemetry.counters.dropped;
        let out = results.lock().unwrap().clone();
        (out, drops)
    }

    fn desc(id: u64, src: NodeId, dst: NodeId, pkts: u64, start: Time) -> FlowDesc {
        FlowDesc {
            id: FlowId(id),
            src,
            dst,
            pkts,
            start,
            deadline: None,
        }
    }

    #[test]
    fn single_flow_completes_without_loss() {
        let (res, drops) = run_flows(
            |t| vec![desc(0, t.hosts[0], t.hosts[4], 100, Time::ZERO)],
            None,
            Time::from_secs(5),
        );
        assert_eq!(drops, 0);
        let fct = res[0].fct().expect("flow did not complete");
        assert_eq!(res[0].retransmits, 0);
        // 100 packets over a 1Gbps bottleneck take >= 1.2ms + RTT.
        assert!(fct >= Dur::from_micros(1200), "fct {fct}");
        assert!(fct < Dur::from_millis(50), "fct {fct}");
    }

    #[test]
    fn many_flows_all_complete_despite_finite_buffers() {
        // Small buffer (30KB) forces losses; Reno must still finish.
        let (res, drops) = run_flows(
            |t| {
                (0..4)
                    .map(|i| {
                        desc(
                            i,
                            t.hosts[i as usize],
                            t.hosts[4 + i as usize],
                            400,
                            Time::from_micros(i * 10),
                        )
                    })
                    .collect()
            },
            Some(30_000),
            Time::from_secs(10),
        );
        assert!(drops > 0, "expected drops with a 30KB buffer");
        for r in &res {
            assert!(
                r.completed.is_some(),
                "flow {:?} incomplete ({} retransmits)",
                r.desc.id,
                r.retransmits
            );
        }
        assert!(res.iter().any(|r| r.retransmits > 0));
    }

    #[test]
    fn fct_grows_with_flow_size() {
        let (res, _) = run_flows(
            |t| {
                vec![
                    desc(0, t.hosts[0], t.hosts[4], 10, Time::ZERO),
                    desc(1, t.hosts[1], t.hosts[5], 1000, Time::ZERO),
                ]
            },
            None,
            Time::from_secs(10),
        );
        let f0 = res[0].fct().unwrap();
        let f1 = res[1].fct().unwrap();
        assert!(f1 > f0 * 5, "fcts: {f0} vs {f1}");
    }

    #[test]
    fn sharing_flows_split_bottleneck_bandwidth() {
        // Two equal flows, same start: each should get ~500Mbps, so a
        // 2000-packet flow takes ~2 * 2000 * 12us = 48ms plus overheads.
        let (res, _) = run_flows(
            |t| {
                vec![
                    desc(0, t.hosts[0], t.hosts[4], 2000, Time::ZERO),
                    desc(1, t.hosts[1], t.hosts[5], 2000, Time::ZERO),
                ]
            },
            Some(5_000_000),
            Time::from_secs(10),
        );
        let f0 = res[0].fct().unwrap().as_secs_f64();
        let f1 = res[1].fct().unwrap().as_secs_f64();
        let solo = 2000.0 * 12e-6;
        assert!(f0 > solo * 1.5 && f1 > solo * 1.5, "{f0} {f1}");
        // And they finish within 40% of each other (rough fairness).
        assert!((f0 - f1).abs() / f0.max(f1) < 0.4, "{f0} vs {f1}");
    }
}
