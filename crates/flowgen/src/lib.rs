//! `ups-flowgen` — workload generation.
//!
//! Poisson flow arrivals with heavy-tailed sizes ([`SizeDist`]),
//! calibrated so the most-loaded core link of a topology runs at a target
//! utilization ([`calibrate_host_rate`]), plus the fixed long-lived-flow
//! workload of the fairness experiment (§3.3).

pub mod dist;
pub mod workload;

pub use dist::SizeDist;
pub use workload::{
    calibrate_host_rate, long_lived_flows, poisson_workload, FlowSpec, PoissonConfig,
};
