//! `ups-flowgen` — workload generation.
//!
//! Every generator is a pure function of `(topology, config)` — seeded,
//! portable, deterministic — producing [`FlowSpec`]s tagged with a
//! service class ([`FlowClass`]: priority tier + optional deadline).
//! Four workload families:
//!
//! * [`poisson_workload`] — the paper's default: Poisson flow arrivals
//!   with heavy-tailed sizes ([`SizeDist`]), calibrated so the
//!   most-loaded core link runs at a target utilization
//!   ([`calibrate_host_rate`]);
//! * [`incast_workload`] — datacenter partition/aggregate fan-in:
//!   synchronized sender bursts colliding on one receiver's downlink,
//!   epoch rate calibrated to the receiver-NIC utilization;
//! * [`deadline_mix_workload`] — short deadline-tagged urgent flows
//!   (priority 0) over heavy-tailed best-effort background, jointly
//!   calibrated to the core-link utilization;
//! * [`long_lived_flows`] — the fixed long-lived-flow workload of the
//!   fairness experiment (§3.3).

#![forbid(unsafe_code)]

pub mod dist;
pub mod incast;
pub mod mix;
pub mod workload;

pub use dist::SizeDist;
pub use incast::{incast_workload, IncastConfig};
pub use mix::{deadline_mix_workload, DeadlineMixConfig};
pub use workload::{
    calibrate_host_rate, long_lived_flows, poisson_workload, FlowClass, FlowSpec, PoissonConfig,
};
