//! Deadline-tagged / priority traffic mix.
//!
//! The evaluation mix of the deadline-scheduling literature (see "Joint
//! Scheduling and Resource Allocation for Packets with Deadlines and
//! Priorities"): a slice of the offered load is short, urgent,
//! deadline-tagged flows (priority 0) riding on heavy-tailed best-effort
//! background traffic (priority 7). Both classes are open-loop Poisson,
//! calibrated together so the most-loaded core link still runs at the
//! grid's target utilization — the `utilization` axis means the same
//! thing it does for the plain web workload.
//!
//! Deadlines are affine in flow size (`budget + per_pkt · pkts`), the
//! standard "SLO = fixed latency allowance + service time" shape.

use crate::workload::{poisson_workload, FlowClass, FlowSpec, PoissonConfig};
use crate::SizeDist;
use ups_net::FlowId;
use ups_sim::Dur;
use ups_topo::Topology;

/// Parameters for the deadline/priority mix.
#[derive(Debug, Clone)]
pub struct DeadlineMixConfig {
    /// Target utilization of the most-loaded core link (both classes
    /// combined), in `(0, 1)`.
    pub utilization: f64,
    /// Fraction of the offered load that is deadline-tagged, in `[0, 1]`.
    pub deadline_fraction: f64,
    /// Size distribution of the best-effort background.
    pub background_sizes: SizeDist,
    /// Deadline flows are uniform over `[1, short_max_pkts]` packets.
    pub short_max_pkts: u64,
    /// Fixed part of every deadline (network latency allowance).
    pub deadline_budget: Dur,
    /// Per-packet part of every deadline (service-time allowance).
    pub deadline_per_pkt: Dur,
    /// Wire bytes per packet (MTU).
    pub pkt_bytes: u32,
    /// Workload horizon: flows arrive in `[0, horizon)`.
    pub horizon: Dur,
    /// RNG seed (the two classes draw from independent streams derived
    /// from it).
    pub seed: u64,
}

impl Default for DeadlineMixConfig {
    fn default() -> Self {
        DeadlineMixConfig {
            utilization: 0.7,
            deadline_fraction: 0.25,
            background_sizes: SizeDist::default_heavy_tail(),
            short_max_pkts: 8,
            deadline_budget: Dur::from_millis(1),
            deadline_per_pkt: Dur::from_micros(50),
            pkt_bytes: 1500,
            horizon: Dur::from_millis(10),
            seed: 1,
        }
    }
}

/// Seed offset separating the deadline class's RNG stream from the
/// background's (an arbitrary odd constant, as in SplitMix-style
/// stream splitting).
const DEADLINE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Generate the mix over `topo`. Flow ids are dense from 0 in arrival
/// order across both classes.
pub fn deadline_mix_workload(topo: &Topology, cfg: &DeadlineMixConfig) -> Vec<FlowSpec> {
    assert!((0.0..1.0).contains(&cfg.utilization) && cfg.utilization > 0.0);
    assert!((0.0..=1.0).contains(&cfg.deadline_fraction));
    assert!(cfg.short_max_pkts >= 1);

    let mut flows: Vec<FlowSpec> = Vec::new();

    // Best-effort background at its share of the load.
    let bg_util = cfg.utilization * (1.0 - cfg.deadline_fraction);
    if bg_util > 0.0 {
        flows.extend(poisson_workload(
            topo,
            &PoissonConfig {
                utilization: bg_util,
                sizes: cfg.background_sizes.clone(),
                pkt_bytes: cfg.pkt_bytes,
                horizon: cfg.horizon,
                seed: cfg.seed,
            },
        ));
    }

    // Deadline-tagged short flows at the remaining share, from an
    // independent RNG stream, then tagged with their affine deadline.
    let dl_util = cfg.utilization * cfg.deadline_fraction;
    if dl_util > 0.0 {
        let short = poisson_workload(
            topo,
            &PoissonConfig {
                utilization: dl_util,
                sizes: SizeDist::Uniform(1, cfg.short_max_pkts),
                pkt_bytes: cfg.pkt_bytes,
                horizon: cfg.horizon,
                seed: cfg.seed.wrapping_add(DEADLINE_STREAM),
            },
        );
        flows.extend(short.into_iter().map(|mut f| {
            f.class = FlowClass::deadline_tagged(
                0,
                cfg.deadline_budget + cfg.deadline_per_pkt.times(f.pkts),
            );
            f
        }));
    }

    // Re-densify ids in global arrival order across the merged classes
    // (class in the key so equal-(start,src,dst,pkts) collisions across
    // streams still order deterministically).
    flows.sort_by_key(|f| (f.start, f.src, f.dst, f.pkts, f.class.prio));
    for (i, f) in flows.iter_mut().enumerate() {
        f.id = FlowId(i as u64);
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    fn topo() -> Topology {
        dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        )
    }

    fn mk(cfg: DeadlineMixConfig) -> Vec<FlowSpec> {
        deadline_mix_workload(&topo(), &cfg)
    }

    #[test]
    fn both_classes_present_with_affine_deadlines() {
        let flows = mk(DeadlineMixConfig {
            horizon: Dur::from_millis(20),
            ..Default::default()
        });
        let (dl, bg): (Vec<_>, Vec<_>) = flows.iter().partition(|f| f.class.is_deadline_tagged());
        assert!(!dl.is_empty() && !bg.is_empty());
        for f in &dl {
            assert_eq!(f.class.prio, 0);
            assert!(f.pkts <= 8, "deadline flows are short, got {}", f.pkts);
            assert_eq!(
                f.class.deadline.unwrap(),
                Dur::from_millis(1) + Dur::from_micros(50).times(f.pkts)
            );
        }
        for f in &bg {
            assert_eq!(f.class, FlowClass::BEST_EFFORT);
        }
    }

    #[test]
    fn deadline_fraction_bounds_are_honored() {
        let all_bg = mk(DeadlineMixConfig {
            deadline_fraction: 0.0,
            ..Default::default()
        });
        assert!(all_bg.iter().all(|f| !f.class.is_deadline_tagged()));
        let all_dl = mk(DeadlineMixConfig {
            deadline_fraction: 1.0,
            ..Default::default()
        });
        assert!(!all_dl.is_empty());
        assert!(all_dl.iter().all(|f| f.class.is_deadline_tagged()));
    }

    #[test]
    fn merged_ids_are_dense_and_sorted() {
        let cfg = DeadlineMixConfig {
            horizon: Dur::from_millis(20),
            ..Default::default()
        };
        let a = mk(cfg.clone());
        let b = mk(cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(a.iter().enumerate().all(|(i, f)| f.id.0 == i as u64));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.start, x.src, x.dst, x.pkts, x.class),
                (y.start, y.src, y.dst, y.pkts, y.class)
            );
        }
    }

    #[test]
    fn utilization_scales_total_offered_load() {
        let count = |u| {
            mk(DeadlineMixConfig {
                utilization: u,
                horizon: Dur::from_millis(20),
                ..Default::default()
            })
            .iter()
            .map(|f| f.pkts)
            .sum::<u64>()
        };
        assert!(count(0.9) > count(0.3) * 2);
    }
}
