//! Workload synthesis: Poisson flow arrivals with heavy-tailed sizes,
//! calibrated to a target core utilization, plus the fixed workloads used
//! by the fairness experiment.

use crate::dist::SizeDist;
use ups_net::{FlowId, NodeId};
use ups_sim::{DetRng, Dur, Time};
use ups_topo::Topology;

/// Service-class tag carried by a generated flow, after the traffic
/// model of "Joint Scheduling and Resource Allocation for Packets with
/// Deadlines and Priorities": a flow has a static priority tier and may
/// additionally be deadline-tagged.
///
/// The replay pipeline measures traffic *patterns*, so today the class
/// shapes the workload (which flows are short, bursty, urgent) and rides
/// along as metadata; deadline/priority-aware slack initialization
/// consumes it when EDF-style experiments are wired end-to-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowClass {
    /// Static priority tier; lower is more urgent (0 = interactive).
    pub prio: u8,
    /// Completion deadline relative to `start`, for deadline-tagged
    /// flows.
    pub deadline: Option<Dur>,
}

impl FlowClass {
    /// Background best-effort traffic — the tag every generator that
    /// predates service classes emits.
    pub const BEST_EFFORT: FlowClass = FlowClass {
        prio: 7,
        deadline: None,
    };

    /// An urgent flow that must complete within `deadline` of its start.
    pub fn deadline_tagged(prio: u8, deadline: Dur) -> FlowClass {
        FlowClass {
            prio,
            deadline: Some(deadline),
        }
    }

    /// True when the flow carries a completion deadline.
    pub fn is_deadline_tagged(&self) -> bool {
        self.deadline.is_some()
    }
}

impl Default for FlowClass {
    fn default() -> Self {
        FlowClass::BEST_EFFORT
    }
}

/// One flow to be injected.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Unique flow id.
    pub id: FlowId,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Size in whole packets.
    pub pkts: u64,
    /// Arrival time at the source.
    pub start: Time,
    /// Service class (priority tier + optional deadline).
    pub class: FlowClass,
}

/// Parameters for Poisson workload generation.
#[derive(Debug, Clone)]
pub struct PoissonConfig {
    /// Target utilization of the most-loaded core link, in `[0, 1)`.
    pub utilization: f64,
    /// Flow-size distribution.
    pub sizes: SizeDist,
    /// Wire bytes per packet (MTU).
    pub pkt_bytes: u32,
    /// Workload horizon: flows arrive in `[0, horizon)`.
    pub horizon: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoissonConfig {
    fn default() -> Self {
        PoissonConfig {
            utilization: 0.7,
            sizes: SizeDist::default_heavy_tail(),
            pkt_bytes: 1500,
            horizon: Dur::from_millis(50),
            seed: 1,
        }
    }
}

/// Estimate, for a uniform all-to-all traffic matrix, how many host pairs
/// route across each link; returns the per-link expected *relative* load
/// (pair-paths per link). One representative path is resolved per pair
/// (per-flow ECMP averages out at the calibration fidelity we need).
fn pair_paths_per_link(topo: &Topology) -> Vec<f64> {
    let mut count = vec![0f64; topo.net.links.len()];
    let hosts = &topo.hosts;
    for (i, &s) in hosts.iter().enumerate() {
        for (j, &d) in hosts.iter().enumerate() {
            if i == j {
                continue;
            }
            let path = topo
                .routes
                .resolve_path(s, d, FlowId((i * hosts.len() + j) as u64));
            for &l in path.links.iter() {
                count[l.0 as usize] += 1.0;
            }
        }
    }
    count
}

/// Compute the per-host Poisson flow arrival rate (flows/sec) that drives
/// the most-loaded **core** link to `utilization`.
///
/// With `H` hosts each opening flows at rate `λ` to uniform destinations,
/// a pair carries `λ/(H−1)` flows/sec of mean size `E[S]` bytes, so link
/// `l` carries `load_l = paths_l · λ/(H−1) · E[S] · 8` bps.
pub fn calibrate_host_rate(topo: &Topology, cfg: &PoissonConfig) -> f64 {
    assert!((0.0..1.0).contains(&cfg.utilization));
    let paths = pair_paths_per_link(topo);
    let h = topo.hosts.len() as f64;
    let mean_bytes = cfg.sizes.mean_pkts() * cfg.pkt_bytes as f64;
    // bits/sec carried per unit λ, per link; find the binding constraint.
    let mut worst = 0f64;
    for &l in &topo.core_links {
        let per_lambda = paths[l.0 as usize] / (h - 1.0) * mean_bytes * 8.0;
        let cap = topo.net.links[l.0 as usize].bw.as_bps() as f64;
        worst = worst.max(per_lambda / cap);
    }
    assert!(worst > 0.0, "no traffic crosses the core");
    cfg.utilization / worst
}

/// Generate a Poisson workload over `topo` at the configured utilization.
/// Flow ids are dense from 0 in arrival order.
pub fn poisson_workload(topo: &Topology, cfg: &PoissonConfig) -> Vec<FlowSpec> {
    let lambda = calibrate_host_rate(topo, cfg);
    let mut master = DetRng::new(cfg.seed);
    let hosts = &topo.hosts;
    let mut flows: Vec<(Time, NodeId, NodeId, u64)> = Vec::new();
    for (hi, &src) in hosts.iter().enumerate() {
        let mut rng = master.fork(hi as u64);
        let mut t = 0.0f64;
        loop {
            t += rng.gen_exp_secs(lambda);
            let start = Time::from_secs_f64(t);
            if start.as_ps() >= cfg.horizon.as_ps() {
                break;
            }
            // Uniform destination other than self.
            let mut d = rng.gen_index(hosts.len() - 1);
            if d >= hi {
                d += 1;
            }
            let pkts = cfg.sizes.sample(&mut rng);
            flows.push((start, src, hosts[d], pkts));
        }
    }
    // Dense ids in global arrival order (deterministic sort).
    flows.sort_by_key(|&(t, s, d, _)| (t, s, d));
    flows
        .into_iter()
        .enumerate()
        .map(|(i, (start, src, dst, pkts))| FlowSpec {
            id: FlowId(i as u64),
            src,
            dst,
            pkts,
            start,
            class: FlowClass::BEST_EFFORT,
        })
        .collect()
}

/// The fairness workload of §3.3: `n` long-lived flows from distinct
/// source hosts, starting with a uniform jitter in `[0, jitter)`.
/// Destinations are chosen round-robin among the remaining hosts so the
/// core is shared. Sizes are effectively infinite (`u64::MAX / 2`).
pub fn long_lived_flows(topo: &Topology, n: usize, jitter: Dur, seed: u64) -> Vec<FlowSpec> {
    assert!(topo.hosts.len() >= 2, "need at least two hosts");
    let mut rng = DetRng::new(seed);
    let hosts = &topo.hosts;
    (0..n)
        .map(|i| {
            let src = hosts[i % hosts.len()];
            // Destination: a different host, rotated to spread load.
            let mut j = (i + 1 + i / hosts.len()) % hosts.len();
            if hosts[j] == src {
                j = (j + 1) % hosts.len();
            }
            FlowSpec {
                id: FlowId(i as u64),
                src,
                dst: hosts[j],
                pkts: u64::MAX / 2,
                start: Time(rng.gen_range(jitter.as_ps().max(1))),
                class: FlowClass::BEST_EFFORT,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    fn topo() -> Topology {
        dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        )
    }

    #[test]
    fn calibration_targets_bottleneck() {
        let t = topo();
        let cfg = PoissonConfig {
            utilization: 0.5,
            sizes: SizeDist::Fixed(10),
            ..Default::default()
        };
        let lambda = calibrate_host_rate(&t, &cfg);
        // Sanity: offered core load ≈ 50% of 1Gbps (only src->dst flows
        // cross the bottleneck; all 8 hosts generate but only the 4 whose
        // destinations are across it load it — calibration accounts for
        // exactly that via path counting).
        assert!(lambda > 0.0);
        // Rough cross-check: bits offered to the bottleneck per second.
        let paths = super::pair_paths_per_link(&t);
        let crossing: f64 = t
            .core_links
            .iter()
            .map(|&l| paths[l.0 as usize])
            .fold(0.0, f64::max);
        let mean_bytes = cfg.sizes.mean_pkts() * 1500.0;
        let load = crossing * lambda / 7.0 * mean_bytes * 8.0;
        assert!(
            (load / 1e9 - 0.5).abs() < 0.01,
            "calibrated load {:.3} Gbps",
            load / 1e9
        );
    }

    #[test]
    fn workload_is_deterministic_and_sorted() {
        let t = topo();
        let cfg = PoissonConfig {
            horizon: Dur::from_millis(5),
            ..Default::default()
        };
        let a = poisson_workload(&t, &cfg);
        let b = poisson_workload(&t, &cfg);
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.start, x.src, x.dst, x.pkts),
                (y.start, y.src, y.dst, y.pkts)
            );
        }
        // Ids dense.
        assert!(a.iter().enumerate().all(|(i, f)| f.id.0 == i as u64));
    }

    #[test]
    fn flows_never_self_loop() {
        let t = topo();
        let flows = poisson_workload(
            &t,
            &PoissonConfig {
                horizon: Dur::from_millis(10),
                ..Default::default()
            },
        );
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn higher_utilization_means_more_flows() {
        let t = topo();
        let mk = |u| {
            poisson_workload(
                &t,
                &PoissonConfig {
                    utilization: u,
                    horizon: Dur::from_millis(20),
                    ..Default::default()
                },
            )
            .len()
        };
        assert!(mk(0.9) > mk(0.3) * 2);
    }

    #[test]
    fn long_lived_flows_have_jittered_starts() {
        let t = topo();
        let flows = long_lived_flows(&t, 16, Dur::from_millis(5), 3);
        assert_eq!(flows.len(), 16);
        assert!(flows
            .iter()
            .all(|f| f.start.as_ps() < Dur::from_millis(5).as_ps()));
        assert!(flows.iter().all(|f| f.src != f.dst));
        // Starts are not all identical.
        let first = flows[0].start;
        assert!(flows.iter().any(|f| f.start != first));
    }
}
