//! Incast fan-in workload: the partition/aggregate traffic pattern of
//! datacenter request–response services.
//!
//! An *epoch* picks one receiver and `fan_in` distinct senders; every
//! sender ships a fixed burst to the receiver at (almost) the same
//! instant, so the bursts collide on the receiver's downlink — the
//! classic incast stressor that a per-flow web workload never produces.
//! Epoch frequency is calibrated so the receiver's NIC sees the target
//! mean utilization, which keeps the `utilization` axis of a sweep grid
//! meaningful across workload kinds.
//!
//! Receivers rotate deterministically across the host list and sender
//! sets are drawn from the seeded RNG, so the workload is a pure
//! function of `(topology, config)` like every other generator here.

use crate::workload::{FlowClass, FlowSpec};
use ups_net::FlowId;
use ups_sim::{DetRng, Dur, Time};
use ups_topo::Topology;

/// Parameters for incast workload generation.
#[derive(Debug, Clone)]
pub struct IncastConfig {
    /// Senders per epoch (clamped to `hosts - 1`).
    pub fan_in: usize,
    /// Burst size each sender ships, in whole packets.
    pub pkts_per_sender: u64,
    /// Target mean utilization of the receiver's NIC link, in `(0, 1)`.
    /// Controls the epoch frequency, not the burst shape — instantaneous
    /// fan-in pressure is `fan_in : 1` regardless.
    pub utilization: f64,
    /// Wire bytes per packet (MTU).
    pub pkt_bytes: u32,
    /// Workload horizon: epochs start in `[0, horizon)`.
    pub horizon: Dur,
    /// Per-sender start jitter within an epoch (uniform in `[0,
    /// jitter)`) — real aggregators fan requests out over a few µs.
    pub jitter: Dur,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IncastConfig {
    fn default() -> Self {
        IncastConfig {
            fan_in: 16,
            pkts_per_sender: 32,
            utilization: 0.7,
            pkt_bytes: 1500,
            horizon: Dur::from_millis(10),
            jitter: Dur::from_micros(10),
            seed: 1,
        }
    }
}

/// Generate an incast workload over `topo`. Flow ids are dense from 0
/// in arrival order; every flow is tagged interactive (priority 0).
pub fn incast_workload(topo: &Topology, cfg: &IncastConfig) -> Vec<FlowSpec> {
    assert!((0.0..1.0).contains(&cfg.utilization) && cfg.utilization > 0.0);
    assert!(cfg.pkts_per_sender >= 1, "empty bursts");
    let hosts = &topo.hosts;
    assert!(hosts.len() >= 2, "incast needs at least two hosts");
    let fan_in = cfg.fan_in.clamp(1, hosts.len() - 1);

    // Epoch period from the receiver-NIC budget: one epoch lands
    // `fan_in * pkts * bytes` on a downlink of the slowest host-link
    // bandwidth, so running epochs every `bits / (util * bw)` seconds
    // averages to the target utilization.
    let bw_bps = topo
        .host_links
        .iter()
        .map(|&l| topo.net.links[l.0 as usize].bw)
        .min()
        .expect("topology has no host links")
        .as_bps() as f64;
    let bits_per_epoch = fan_in as f64 * cfg.pkts_per_sender as f64 * cfg.pkt_bytes as f64 * 8.0;
    let period_secs = bits_per_epoch / (cfg.utilization * bw_bps);

    let mut master = DetRng::new(cfg.seed);
    let mut flows: Vec<FlowSpec> = Vec::new();
    let mut epoch = 0u64;
    loop {
        let at = Time::from_secs_f64(epoch as f64 * period_secs);
        if at.as_ps() >= cfg.horizon.as_ps() {
            break;
        }
        let receiver = hosts[epoch as usize % hosts.len()];
        let mut rng = master.fork(epoch);
        // Draw `fan_in` distinct senders from the hosts other than the
        // receiver: a seeded partial Fisher–Yates over index space.
        let mut others: Vec<usize> = (0..hosts.len()).filter(|&i| hosts[i] != receiver).collect();
        for k in 0..fan_in {
            let j = k + rng.gen_index(others.len() - k);
            others.swap(k, j);
            let src = hosts[others[k]];
            let start = at + Dur(rng.gen_range(cfg.jitter.as_ps().max(1)));
            flows.push(FlowSpec {
                id: FlowId(0), // densified below
                src,
                dst: receiver,
                pkts: cfg.pkts_per_sender,
                start,
                class: FlowClass {
                    prio: 0,
                    deadline: None,
                },
            });
        }
        epoch += 1;
    }
    // Dense ids in global arrival order (deterministic sort).
    flows.sort_by_key(|f| (f.start, f.src, f.dst));
    for (i, f) in flows.iter_mut().enumerate() {
        f.id = FlowId(i as u64);
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::TraceLevel;
    use ups_sim::Bandwidth;
    use ups_topo::simple::dumbbell;

    fn topo() -> Topology {
        dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        )
    }

    #[test]
    fn epochs_are_fan_in_groups_to_one_receiver() {
        let t = topo();
        let cfg = IncastConfig {
            fan_in: 3,
            horizon: Dur::from_millis(20),
            ..Default::default()
        };
        let flows = incast_workload(&t, &cfg);
        assert!(!flows.is_empty());
        assert_eq!(flows.len() % 3, 0, "every epoch contributes fan_in flows");
        // Group by destination within a jitter window: each epoch's
        // senders are distinct and never the receiver.
        for group in flows.chunks(3) {
            let dst = group[0].dst;
            assert!(group.iter().all(|f| f.dst == dst));
            let mut srcs: Vec<_> = group.iter().map(|f| f.src).collect();
            srcs.sort();
            srcs.dedup();
            assert_eq!(srcs.len(), 3, "senders must be distinct");
            assert!(group.iter().all(|f| f.src != f.dst));
        }
    }

    #[test]
    fn utilization_controls_epoch_frequency() {
        let t = topo();
        let mk = |u| {
            incast_workload(
                &t,
                &IncastConfig {
                    utilization: u,
                    horizon: Dur::from_millis(50),
                    ..Default::default()
                },
            )
            .len()
        };
        assert!(mk(0.9) > mk(0.3) * 2, "higher util must mean more epochs");
    }

    #[test]
    fn fan_in_clamps_to_available_hosts() {
        let t = topo(); // 8 hosts
        let flows = incast_workload(
            &t,
            &IncastConfig {
                fan_in: 100,
                horizon: Dur::from_millis(5),
                ..Default::default()
            },
        );
        assert!(!flows.is_empty());
        // 7 = hosts - 1 senders per epoch.
        assert_eq!(flows.len() % 7, 0);
    }

    #[test]
    fn deterministic_dense_and_sorted() {
        let t = topo();
        let cfg = IncastConfig {
            horizon: Dur::from_millis(20),
            ..Default::default()
        };
        let a = incast_workload(&t, &cfg);
        let b = incast_workload(&t, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                (x.start, x.src, x.dst, x.pkts),
                (y.start, y.src, y.dst, y.pkts)
            );
        }
        assert!(a.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(a.iter().enumerate().all(|(i, f)| f.id.0 == i as u64));
        assert!(a
            .iter()
            .all(|f| f.class.prio == 0 && f.class.deadline.is_none()));
    }
}
