//! Flow-size distributions.
//!
//! The paper draws flow sizes "from a heavy-tailed distribution \[4, 5\]".
//! The referenced traces aren't public, so we provide the two standard
//! synthetic stand-ins used throughout the datacenter-scheduling
//! literature plus fixed/uniform fixtures for tests. All sizes are in
//! whole MSS-sized packets (the paper's Figure 2 buckets are multiples of
//! 1460 B), converted to bytes by the caller's MSS.

use ups_sim::DetRng;

/// A flow-size distribution (sizes in packets).
#[derive(Debug, Clone)]
pub enum SizeDist {
    /// Every flow is exactly `n` packets.
    Fixed(u64),
    /// Uniform over `[lo, hi]` packets.
    Uniform(u64, u64),
    /// Bounded Pareto with shape `alpha` over `[min_pkts, max_pkts]`.
    /// `alpha ≈ 1.2` gives the classic "most flows are mice, most bytes
    /// are elephants" shape.
    BoundedPareto {
        /// Tail index (smaller = heavier tail).
        alpha: f64,
        /// Minimum size in packets.
        min_pkts: u64,
        /// Maximum size in packets.
        max_pkts: u64,
    },
    /// The web-search workload of DCTCP/pFabric, as an empirical CDF in
    /// packets. Heavier mid-range than Pareto; ~60 pkt mean.
    WebSearch,
}

/// (cumulative probability, size in packets) knots of the web-search CDF,
/// interpolated geometrically between knots.
const WEB_SEARCH_CDF: [(f64, u64); 9] = [
    (0.0, 1),
    (0.15, 2),
    (0.30, 3),
    (0.50, 7),
    (0.60, 13),
    (0.70, 35),
    (0.80, 100),
    (0.95, 700),
    (1.0, 20_000),
];

impl SizeDist {
    /// The default heavy-tailed distribution used by the experiments:
    /// bounded Pareto over \[1, 1000\] packets (≈1.5 kB – 1.5 MB). The cap
    /// keeps single elephants from saturating a WAN path for tens of
    /// simulated milliseconds, which matches the moderate queueing
    /// depths implied by the paper's Table 1 (see DESIGN.md); the
    /// distributions in \[4, 5\] are dominated by sub-MB flows too.
    pub fn default_heavy_tail() -> SizeDist {
        SizeDist::BoundedPareto {
            alpha: 1.2,
            min_pkts: 1,
            max_pkts: 1_000,
        }
    }

    /// Draw one flow size in packets.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match *self {
            SizeDist::Fixed(n) => n.max(1),
            SizeDist::Uniform(lo, hi) => lo + rng.gen_range(hi - lo + 1),
            SizeDist::BoundedPareto {
                alpha,
                min_pkts,
                max_pkts,
            } => {
                // Inverse-CDF sampling of the bounded Pareto.
                let (l, h) = (min_pkts as f64, max_pkts as f64);
                let u = rng.gen_f64();
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let x = (-(u * (1.0 - la / ha) - 1.0) / la).powf(-1.0 / alpha);
                (x.round() as u64).clamp(min_pkts, max_pkts)
            }
            SizeDist::WebSearch => {
                let u = rng.gen_f64();
                let mut prev = WEB_SEARCH_CDF[0];
                for &knot in &WEB_SEARCH_CDF[1..] {
                    if u <= knot.0 {
                        // Geometric interpolation between knots.
                        let f = (u - prev.0) / (knot.0 - prev.0);
                        let lo = (prev.1 as f64).ln();
                        let hi = (knot.1 as f64).ln();
                        return ((lo + f * (hi - lo)).exp().round() as u64).max(1);
                    }
                    prev = knot;
                }
                WEB_SEARCH_CDF.last().unwrap().1
            }
        }
    }

    /// Mean flow size in packets (analytic where possible, otherwise via
    /// a deterministic Monte-Carlo estimate). Used by load calibration.
    pub fn mean_pkts(&self) -> f64 {
        match *self {
            SizeDist::Fixed(n) => n.max(1) as f64,
            SizeDist::Uniform(lo, hi) => (lo + hi) as f64 / 2.0,
            SizeDist::BoundedPareto {
                alpha,
                min_pkts,
                max_pkts,
            } => {
                let (l, h) = (min_pkts as f64, max_pkts as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    (h / l).ln() * l * h / (h - l)
                } else {
                    let la = l.powf(alpha);
                    let ha = h.powf(alpha);
                    (alpha / (alpha - 1.0))
                        * (la / (1.0 - la / ha))
                        * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0))
                }
            }
            SizeDist::WebSearch => {
                let mut rng = DetRng::new(0xD157);
                let n = 200_000;
                (0..n).map(|_| self.sample(&mut rng) as f64).sum::<f64>() / n as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_uniform_bounds() {
        let mut rng = DetRng::new(1);
        assert_eq!(SizeDist::Fixed(5).sample(&mut rng), 5);
        for _ in 0..1000 {
            let s = SizeDist::Uniform(2, 9).sample(&mut rng);
            assert!((2..=9).contains(&s));
        }
    }

    #[test]
    fn pareto_respects_bounds_and_is_heavy_tailed() {
        let d = SizeDist::default_heavy_tail();
        let mut rng = DetRng::new(7);
        let samples: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (1..=1_000).contains(&s)));
        // Most flows are small...
        let small = samples.iter().filter(|&&s| s <= 10).count();
        assert!(small as f64 / samples.len() as f64 > 0.7, "not mouse-heavy");
        // ...but big flows carry a disproportionate share of the bytes.
        let total: u64 = samples.iter().sum();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let top1pct: u64 = sorted[sorted.len() - sorted.len() / 100..].iter().sum();
        assert!(
            top1pct as f64 / total as f64 > 0.2,
            "top 1% flows carry only {:.1}% of bytes",
            100.0 * top1pct as f64 / total as f64
        );
    }

    #[test]
    fn pareto_empirical_mean_matches_analytic() {
        let d = SizeDist::default_heavy_tail();
        let mut rng = DetRng::new(3);
        let n = 400_000;
        let emp: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        let ana = d.mean_pkts();
        assert!(
            (emp - ana).abs() / ana < 0.15,
            "empirical {emp:.2} vs analytic {ana:.2}"
        );
    }

    #[test]
    fn web_search_mean_is_tens_of_packets() {
        let m = SizeDist::WebSearch.mean_pkts();
        assert!((20.0..400.0).contains(&m), "mean {m}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = SizeDist::default_heavy_tail();
        let draw = |seed| {
            let mut rng = DetRng::new(seed);
            (0..100).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(11), draw(11));
    }
}
