//! Static priority scheduling.
//!
//! "Simple priority scheduling is where the ingress assigns priority
//! values to the packets and the routers simply schedule packets based on
//! these static priority values" (§2.2, footnote 4). The header's `prio`
//! field is set once at the ingress and never modified.
//!
//! Two users in this reproduction:
//! * the Priority-replay comparison of §2.3(7), with `prio = o(p)`;
//! * SJF (shortest job first, §3.1 / Table 1), with `prio = flow size`.

use crate::keyed::{KeyPolicy, Keyed};
use ups_net::scheduler::Queued;

/// Key policy: serve the numerically smallest static priority first.
#[derive(Debug, Clone, Copy)]
pub struct StaticPrioPolicy {
    name: &'static str,
}

impl KeyPolicy for StaticPrioPolicy {
    fn name(&self) -> &'static str {
        self.name
    }
    fn key(&self, q: &Queued) -> i64 {
        q.pkt.hdr.prio
    }
    fn preemptible(&self) -> bool {
        true
    }
}

/// Static priority scheduler.
pub type StaticPriority = Keyed<StaticPrioPolicy>;

/// Priority scheduler labelled "Priority" (replay comparison).
pub fn priority() -> StaticPriority {
    Keyed::new(StaticPrioPolicy { name: "Priority" })
}

/// Priority scheduler labelled "SJF" (ingress stamps `prio = flow size`).
pub fn sjf() -> StaticPriority {
    Keyed::new(StaticPrioPolicy { name: "SJF" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::scheduler::Scheduler;
    use ups_net::testutil::queued_prio;

    #[test]
    fn smallest_priority_value_first() {
        let mut s = priority();
        s.enqueue(queued_prio(500, 0, 0));
        s.enqueue(queued_prio(100, 1, 1));
        s.enqueue(queued_prio(300, 2, 2));
        let order: Vec<i64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.hdr.prio)
            .collect();
        assert_eq!(order, vec![100, 300, 500]);
    }

    #[test]
    fn same_priority_is_fcfs() {
        let mut s = sjf();
        for seq in 0..5 {
            s.enqueue(queued_prio(42, seq, seq));
        }
        for seq in 0..5 {
            assert_eq!(s.dequeue().unwrap().arrival_seq, seq);
        }
    }

    #[test]
    fn names_distinguish_users() {
        assert_eq!(priority().name(), "Priority");
        assert_eq!(sjf().name(), "SJF");
    }
}
