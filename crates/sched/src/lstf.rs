//! Least Slack Time First — the paper's near-universal scheduler (§2.1).
//!
//! Each packet carries its remaining slack in the header (dynamic packet
//! state); the port charges queueing waits against it on forward. This
//! scheduler serves the packet whose remaining slack — measured for its
//! last bit, per Appendix D — is smallest, i.e. the packet with the
//! earliest *slack deadline* `enq_time + slack + tx_dur`. Because every
//! queued packet's slack drains at the same unit rate, the deadline order
//! is time-invariant, so "least remaining slack now" and "least remaining
//! slack when its last bit is transmitted" both reduce to EDF on this
//! deadline (Appendix E); ties break FCFS (footnote 14).
//!
//! On buffer overflow the packet with the *most* slack is dropped (§3).

use crate::keyed::{KeyPolicy, Keyed};
use ups_net::scheduler::Queued;

/// Which deadline formula orders the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LstfKeyMode {
    /// `enq + slack + tx_dur`: the last-bit slack of Appendix D (default;
    /// equals the paper's formal LSTF and its EDF equivalent).
    #[default]
    LastBit,
    /// `enq + slack`: ignores local transmission time. With uniform packet
    /// sizes this is the same order; with mixed sizes it slightly favours
    /// large packets. Kept as an ablation knob.
    PureDeadline,
}

/// Key policy for LSTF.
#[derive(Debug, Clone, Copy, Default)]
pub struct LstfPolicy {
    /// Deadline formula.
    pub mode: LstfKeyMode,
}

impl KeyPolicy for LstfPolicy {
    fn name(&self) -> &'static str {
        "LSTF"
    }
    fn key(&self, q: &Queued) -> i64 {
        match self.mode {
            LstfKeyMode::LastBit => q.slack_deadline(),
            LstfKeyMode::PureDeadline => q.enq_time.as_ps() as i64 + q.pkt.hdr.slack,
        }
    }
    fn preemptible(&self) -> bool {
        true
    }
}

/// Least Slack Time First scheduler.
pub type Lstf = Keyed<LstfPolicy>;

/// Non-preemptive LSTF with the paper's last-bit deadline.
pub fn lstf() -> Lstf {
    Keyed::new(LstfPolicy::default())
}

/// LSTF with an explicit key mode.
pub fn lstf_with(mode: LstfKeyMode) -> Lstf {
    Keyed::new(LstfPolicy { mode })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::scheduler::{EvictOutcome, Scheduler};
    use ups_net::testutil::queued_slack;

    #[test]
    fn least_slack_served_first() {
        let mut s = lstf();
        s.enqueue(queued_slack(5_000_000, 0, 0)); // 5us slack
        s.enqueue(queued_slack(1_000_000, 0, 1)); // 1us slack
        s.enqueue(queued_slack(9_000_000, 0, 2));
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 2);
    }

    #[test]
    fn later_arrival_with_less_slack_wins() {
        // A packet that arrives later but with much less slack overtakes.
        let mut s = lstf();
        s.enqueue(queued_slack(50_000_000, 0, 0)); // t=0, 50us
        s.enqueue(queued_slack(1_000_000, 40_000, 1)); // t=40us, 1us
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
    }

    #[test]
    fn equal_deadlines_break_fcfs() {
        let mut s = lstf();
        // Same deadline: slack compensates the later arrival.
        s.enqueue(queued_slack(10_000_000, 0, 0));
        s.enqueue(queued_slack(9_000_000, 1_000, 1)); // 1us later, 1us less
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0, "FCFS on ties");
    }

    #[test]
    fn negative_slack_is_most_urgent() {
        let mut s = lstf();
        s.enqueue(queued_slack(0, 0, 0));
        s.enqueue(queued_slack(-3_000_000, 0, 1)); // overdue packet
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
    }

    #[test]
    fn overflow_drops_highest_slack() {
        let mut s = lstf();
        s.enqueue(queued_slack(1_000, 0, 0));
        s.enqueue(queued_slack(800_000_000, 0, 1)); // huge slack
        let incoming = queued_slack(500, 1, 2);
        match s.evict_for(&incoming) {
            EvictOutcome::Evicted(v) => assert_eq!(v.pkt.seq, 1),
            other => panic!("expected eviction, got {other:?}"),
        }
    }

    #[test]
    fn urgency_enables_preemption() {
        let s = lstf();
        let q = queued_slack(1_000, 0, 0);
        assert_eq!(s.urgency(&q), Some(q.slack_deadline()));
    }

    #[test]
    fn pure_deadline_mode_drops_tx_term() {
        let s = lstf_with(LstfKeyMode::PureDeadline);
        let q = queued_slack(1_000, 2, 0);
        assert_eq!(s.urgency(&q), Some(2_000 + 1_000));
    }
}
