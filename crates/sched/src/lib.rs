//! `ups-sched` — the scheduling algorithms of the paper.
//!
//! One module per algorithm, all implementing `ups_net`'s
//! [`Scheduler`](ups_net::Scheduler) trait:
//!
//! | Module | Algorithm | Role in the paper |
//! |---|---|---|
//! | [`lstf`](mod@lstf) | Least Slack Time First | the near-universal scheduler |
//! | [`edf`](mod@edf) | network-wide EDF | static-header equivalent (App. E) |
//! | [`prio`] | static Priority / SJF | replay comparison, FCT baseline |
//! | [`srpt`] | SRPT + starvation prevention | FCT state of the art \[3\] |
//! | [`fq`] | Fair Queuing (SCFQ) | fairness state of the art \[12\] |
//! | [`drr`] | Deficit Round Robin | extra fairness baseline \[27\] |
//! | [`fifoplus`] | FIFO+ | tail-delay state of the art \[11\] |
//! | [`lifo`] | LIFO | replay stress test |
//! | [`random`] | seeded Random | default "arbitrary" original schedule |
//! | [`keyed`] | generic comparator core | shared machinery |
//! | [`soa`] | struct-of-arrays ordered queue | shared machinery |
//! | [`factory`] | [`SchedKind`] | build-by-name for experiment configs |
//!
//! FIFO itself lives in `ups-net` (it is the port default) and is
//! re-exported here for completeness.

#![forbid(unsafe_code)]

pub mod drr;
pub mod edf;
pub mod factory;
pub mod fifoplus;
pub mod fq;
pub mod keyed;
pub mod lifo;
pub mod lstf;
pub mod prio;
pub mod random;
pub mod soa;
pub mod srpt;

pub use drr::Drr;
pub use edf::{edf, Edf};
pub use factory::SchedKind;
pub use fifoplus::{fifo_plus, FifoPlus};
pub use fq::Fq;
pub use keyed::{KeyPolicy, Keyed};
pub use lifo::Lifo;
pub use lstf::{lstf, lstf_with, Lstf, LstfKeyMode};
pub use prio::{priority, sjf, StaticPriority};
pub use random::Random;
pub use srpt::Srpt;
pub use ups_net::Fifo;
