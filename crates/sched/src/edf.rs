//! Network-wide Earliest Deadline First (Appendix E).
//!
//! The static-header twin of LSTF: the packet header carries the *target
//! output time* `o(p)` unchanged end-to-end (in `hdr.prio`, as picoseconds),
//! and each router computes a local deadline
//! `priority(p) = o(p) − tmin(p, α, dest) + T(p, α)`
//! from static topology information. Appendix E proves this produces
//! exactly the same replay schedule as LSTF; the property test in
//! `ups-core` exercises that equivalence end-to-end.

use crate::keyed::{KeyPolicy, Keyed};
use ups_net::scheduler::Queued;

/// Key policy for network-wide EDF.
#[derive(Debug, Clone, Copy, Default)]
pub struct EdfPolicy;

impl KeyPolicy for EdfPolicy {
    fn name(&self) -> &'static str {
        "EDF"
    }
    fn key(&self, q: &Queued) -> i64 {
        // o(p) − tmin(p, α, dest) + T(p, α). `remaining_tmin` includes the
        // local transmission time (tmin from this hop inclusive), so
        // adding tx_dur back yields the Appendix E priority exactly.
        q.pkt.hdr.prio - q.remaining_tmin.as_i64() + q.tx_dur.as_i64()
    }
    fn preemptible(&self) -> bool {
        true
    }
}

/// Earliest Deadline First scheduler.
pub type Edf = Keyed<EdfPolicy>;

/// Construct an EDF scheduler.
pub fn edf() -> Edf {
    Keyed::new(EdfPolicy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::scheduler::Scheduler;
    use ups_net::testutil::queued_full;

    #[test]
    fn earlier_output_time_wins() {
        let mut s = edf();
        // Same path ⇒ same remaining tmin; order by o(p).
        s.enqueue(queued_full(0, 0, 0, 90_000_000, 0)); // o = 90us
        s.enqueue(queued_full(0, 1, 0, 30_000_000, 0)); // o = 30us
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0);
    }

    #[test]
    fn deadline_matches_lstf_slack_deadline() {
        // For a packet whose slack was initialized from o(p) and that has
        // not yet waited anywhere, the EDF key equals the LSTF deadline:
        // slack = o − i − tmin(src,dest); at the first hop enq = i, and
        // remaining_tmin = tmin(src,dest) so
        //   EDF key  = o − tmin + tx
        //   LSTF key = enq + slack + tx = i + (o − i − tmin) + tx.
        let o: i64 = 500_000_000;
        let enq_ns: u64 = 2;
        let q_edf = queued_full(0, 0, 0, o, enq_ns);
        let tmin = q_edf.remaining_tmin.as_i64();
        let slack = o - (enq_ns as i64 * 1_000) - tmin;
        let q_lstf = queued_full(0, 0, slack, 0, enq_ns);
        assert_eq!(EdfPolicy.key(&q_edf), q_lstf.slack_deadline());
    }
}
