//! Deficit Round Robin (Shreedhar & Varghese \[27\]).
//!
//! An O(1) approximation of fair queuing, included as an extra baseline
//! (the paper cites DRR among the fairness mechanisms a UPS would
//! subsume). Flows take turns; each visit adds one `quantum` of bytes to
//! the flow's deficit counter, and the flow sends head packets while its
//! deficit covers them.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

// lint: keyed-lookup-only(file) — both HashMaps are read/written by
// FlowId key only; service order comes exclusively from the `active`
// VecDeque, so hash iteration order never reaches an artifact.
use std::collections::{HashMap, VecDeque};
use ups_net::scheduler::{Queued, Scheduler};
use ups_net::FlowId;

/// Deficit Round Robin scheduler.
#[derive(Debug)]
pub struct Drr {
    quantum: u32,
    flows: HashMap<FlowId, VecDeque<Queued>>,
    /// Round-robin order of active flows.
    active: VecDeque<FlowId>,
    deficit: HashMap<FlowId, u64>,
    len: usize,
}

impl Drr {
    /// Create a DRR scheduler; `quantum` is the per-round byte allowance
    /// (use at least the MTU so every visit can send something).
    pub fn new(quantum: u32) -> Drr {
        assert!(quantum > 0);
        Drr {
            quantum,
            flows: HashMap::new(),
            active: VecDeque::new(),
            deficit: HashMap::new(),
            len: 0,
        }
    }
}

impl Scheduler for Drr {
    fn name(&self) -> &'static str {
        "DRR"
    }

    fn enqueue(&mut self, q: Queued) {
        let flow = q.pkt.flow;
        let fq = self.flows.entry(flow).or_default();
        if fq.is_empty() {
            self.active.push_back(flow);
            self.deficit.entry(flow).or_insert(0);
        }
        fq.push_back(q);
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<Queued> {
        if self.len == 0 {
            return None;
        }
        loop {
            let flow = *self.active.front().expect("active list empty with len>0");
            let fq = self.flows.get_mut(&flow).expect("active flow missing");
            let head_size = fq.front().expect("active flow empty").pkt.size as u64;
            let d = self.deficit.get_mut(&flow).expect("no deficit");
            if *d >= head_size {
                *d -= head_size;
                let q = fq.pop_front().expect("checked non-empty");
                self.len -= 1;
                if fq.is_empty() {
                    // A flow leaving the active list forfeits its deficit.
                    self.flows.remove(&flow);
                    self.deficit.remove(&flow);
                    self.active.pop_front();
                }
                return Some(q);
            }
            // Head doesn't fit: add a quantum and move to the back.
            *d += self.quantum as u64;
            self.active.rotate_left(1);
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_flow;

    #[test]
    fn round_robins_equal_sized_packets() {
        let mut s = Drr::new(1500);
        let mut seq = 0;
        for _ in 0..3 {
            s.enqueue(queued_flow(0, 0, 0, seq));
            seq += 1;
        }
        for _ in 0..3 {
            s.enqueue(queued_flow(1, 0, 0, seq));
            seq += 1;
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.flow.0)
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn empty_returns_none() {
        let mut s = Drr::new(1500);
        assert!(s.dequeue().is_none());
        s.enqueue(queued_flow(0, 0, 0, 0));
        assert!(s.dequeue().is_some());
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn flow_departure_forfeits_deficit() {
        let mut s = Drr::new(1500);
        s.enqueue(queued_flow(0, 0, 0, 0));
        s.dequeue();
        // Re-activate the flow: deficit restarts at zero (needs a fresh
        // quantum before sending), same as a brand-new flow.
        s.enqueue(queued_flow(0, 0, 1, 1));
        s.enqueue(queued_flow(1, 0, 1, 2));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.flow.0)
            .collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn conserves_packets_across_flows() {
        let mut s = Drr::new(1500);
        for i in 0..60u64 {
            s.enqueue(queued_flow(i % 5, 0, i, i));
        }
        let mut seqs: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..60).collect::<Vec<_>>());
    }
}
