//! A generic comparator-ordered scheduler.
//!
//! Most algorithms in the paper — LSTF, EDF, static Priority, SJF, FIFO+,
//! LIFO — are "serve the queued packet with the smallest key, break ties
//! FCFS". [`Keyed`] implements that once over an [`OrderedQueue`] keyed by
//! `(key, arrival_seq)`, which stores compare keys struct-of-arrays style
//! in one dense sorted vector (see [`crate::soa`]) and gives an O(1) max
//! lookup for the drop-worst buffer policy and an O(1) min peek for
//! preemption urgency.

use crate::soa::OrderedQueue;
use ups_net::scheduler::{EvictOutcome, Queued, Scheduler};
use ups_net::Packet;

/// How a [`Keyed`] scheduler orders packets.
pub trait KeyPolicy: std::fmt::Debug + Send {
    /// Scheduler name for traces and reports.
    fn name(&self) -> &'static str;
    /// Comparable key; the smallest key is served first.
    fn key(&self, q: &Queued) -> i64;
    /// Whether buffer overflow should evict the worst-key packet rather
    /// than the arrival (drop-tail).
    fn evict_worst(&self) -> bool {
        true
    }
    /// Whether to expose keys as preemption urgency.
    fn preemptible(&self) -> bool {
        false
    }
}

/// Comparator-ordered scheduler; see [`KeyPolicy`].
#[derive(Debug)]
pub struct Keyed<P: KeyPolicy> {
    policy: P,
    q: OrderedQueue<i64>,
}

impl<P: KeyPolicy> Keyed<P> {
    /// Create an empty queue under `policy`.
    pub fn new(policy: P) -> Keyed<P> {
        Keyed {
            policy,
            q: OrderedQueue::new(),
        }
    }

    /// Peek at the next packet to be served.
    pub fn peek(&self) -> Option<&Packet> {
        self.q.peek_min().map(|e| &*e.pkt)
    }
}

impl<P: KeyPolicy> Scheduler for Keyed<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn enqueue(&mut self, q: Queued) {
        let key = self.policy.key(&q);
        self.q.insert(key, q);
    }

    fn dequeue(&mut self) -> Option<Queued> {
        self.q.pop_min().map(|(_, v)| v)
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn evict_for(&mut self, incoming: &Queued) -> EvictOutcome {
        if !self.policy.evict_worst() {
            return EvictOutcome::DropIncoming;
        }
        let incoming_key = self.policy.key(incoming);
        match self.q.max_key() {
            Some(worst_key) if worst_key > incoming_key => {
                let (_, victim) = self.q.pop_max().expect("non-empty");
                EvictOutcome::Evicted(victim)
            }
            _ => EvictOutcome::DropIncoming,
        }
    }

    fn urgency(&self, q: &Queued) -> Option<i64> {
        self.policy.preemptible().then(|| self.policy.key(q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_prio;

    #[derive(Debug)]
    struct ByPrio;
    impl KeyPolicy for ByPrio {
        fn name(&self) -> &'static str {
            "test-prio"
        }
        fn key(&self, q: &Queued) -> i64 {
            q.pkt.hdr.prio
        }
        fn preemptible(&self) -> bool {
            true
        }
    }

    #[test]
    fn serves_smallest_key_first() {
        let mut s = Keyed::new(ByPrio);
        s.enqueue(queued_prio(30, 0, 0));
        s.enqueue(queued_prio(10, 1, 1));
        s.enqueue(queued_prio(20, 2, 2));
        assert_eq!(s.dequeue().unwrap().pkt.hdr.prio, 10);
        assert_eq!(s.dequeue().unwrap().pkt.hdr.prio, 20);
        assert_eq!(s.dequeue().unwrap().pkt.hdr.prio, 30);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn equal_keys_break_fcfs() {
        let mut s = Keyed::new(ByPrio);
        for seq in 0..10 {
            s.enqueue(queued_prio(7, seq, seq));
        }
        for seq in 0..10 {
            assert_eq!(s.dequeue().unwrap().arrival_seq, seq);
        }
    }

    #[test]
    fn evicts_worst_when_strictly_worse() {
        let mut s = Keyed::new(ByPrio);
        s.enqueue(queued_prio(10, 0, 0));
        s.enqueue(queued_prio(99, 1, 1));
        let incoming = queued_prio(50, 2, 2);
        match s.evict_for(&incoming) {
            EvictOutcome::Evicted(v) => assert_eq!(v.pkt.hdr.prio, 99),
            other => panic!("expected eviction, got {other:?}"),
        }
        // Now the worst queued (10) is better than incoming (50).
        assert!(matches!(s.evict_for(&incoming), EvictOutcome::DropIncoming));
    }

    #[test]
    fn urgency_exposed_when_preemptible() {
        let s = Keyed::new(ByPrio);
        assert_eq!(s.urgency(&queued_prio(42, 0, 0)), Some(42));
    }
}
