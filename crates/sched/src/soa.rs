//! Struct-of-arrays storage for key-ordered schedulers.
//!
//! [`Keyed`](crate::Keyed) and [`Fq`](crate::Fq) used to keep their
//! packets in a `BTreeMap<(key, arrival_seq), Queued>`: every node a
//! separate allocation, compare keys interleaved with ~50-byte payloads,
//! so a pop or an ordered insert chased pointers through cold lines. Port
//! queues are shallow (tens of packets, not thousands), which makes a
//! sorted dense vector the better structure. [`OrderedQueue`] splits the
//! state struct-of-arrays style:
//!
//! * `order` — one flat `Vec` of `(key, arrival_seq, slot)` triples kept
//!   sorted *descending*, so the packet to serve next sits at the back:
//!   a pop is `Vec::pop`, a peek is `last()`, and the binary search of an
//!   insert scans only this dense key array.
//! * `slots` — the fat [`Queued`] payloads in a slot-reusing arena,
//!   untouched until a packet is actually served or evicted.
//!
//! The comparison key is exactly the old map key, `(key, arrival_seq)`,
//! so service order — smallest key first, FCFS among equals — and the
//! drop-worst victim are identical to the `BTreeMap` implementation.

use ups_net::scheduler::Queued;

/// A min-queue of [`Queued`] packets ordered by `(key, arrival_seq)`,
/// stored struct-of-arrays; see the module docs.
#[derive(Debug)]
pub struct OrderedQueue<K> {
    /// `(key, arrival_seq, slot)`, sorted descending: minimum at the back.
    order: Vec<(K, u64, u32)>,
    /// Packet payloads, indexed by the `slot` field of `order` entries.
    slots: Vec<Option<Queued>>,
    /// Reusable empty slots.
    free: Vec<u32>,
}

impl<K: Copy + Ord> OrderedQueue<K> {
    /// An empty queue.
    pub fn new() -> OrderedQueue<K> {
        OrderedQueue {
            order: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Insert `q` under `key`, keeping FCFS order among equal keys.
    pub fn insert(&mut self, key: K, q: Queued) {
        let seq = q.arrival_seq;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none(), "free-listed live slot");
                self.slots[slot as usize] = Some(q);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("OrderedQueue overflow");
                self.slots.push(Some(q));
                slot
            }
        };
        // Descending sort: the insertion point is after every strictly
        // greater (key, seq). arrival_seq is unique, so ties are impossible.
        let at = self.order.partition_point(|&(k, s, _)| (k, s) > (key, seq));
        debug_assert!(
            !self
                .order
                .get(at)
                .is_some_and(|&(k, s, _)| (k, s) == (key, seq)),
            "duplicate (key, arrival_seq)"
        );
        self.order.insert(at, (key, seq, slot));
    }

    /// Remove and return the smallest-`(key, arrival_seq)` packet.
    pub fn pop_min(&mut self) -> Option<(K, Queued)> {
        let (key, _, slot) = self.order.pop()?;
        Some((key, self.take(slot)))
    }

    /// Remove and return the largest-`(key, arrival_seq)` packet (the
    /// drop-worst eviction victim).
    pub fn pop_max(&mut self) -> Option<(K, Queued)> {
        if self.order.is_empty() {
            return None;
        }
        let (key, _, slot) = self.order.remove(0);
        Some((key, self.take(slot)))
    }

    /// The smallest queued packet, if any.
    pub fn peek_min(&self) -> Option<&Queued> {
        let &(_, _, slot) = self.order.last()?;
        self.slots[slot as usize].as_ref()
    }

    /// The largest key currently queued.
    pub fn max_key(&self) -> Option<K> {
        self.order.first().map(|&(key, _, _)| key)
    }

    fn take(&mut self, slot: u32) -> Queued {
        self.free.push(slot);
        self.slots[slot as usize]
            .take()
            .expect("order entry names an empty slot")
    }
}

impl<K: Copy + Ord> Default for OrderedQueue<K> {
    fn default() -> Self {
        OrderedQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_prio;

    #[test]
    fn pops_in_key_then_fcfs_order() {
        let mut q = OrderedQueue::new();
        q.insert(3i64, queued_prio(3, 0, 0));
        q.insert(1, queued_prio(1, 1, 1));
        q.insert(2, queued_prio(2, 2, 2));
        q.insert(1, queued_prio(1, 3, 3));
        let order: Vec<(i64, u64)> = std::iter::from_fn(|| q.pop_min())
            .map(|(k, e)| (k, e.arrival_seq))
            .collect();
        assert_eq!(order, vec![(1, 1), (1, 3), (2, 2), (3, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_max_is_drop_worst_victim() {
        let mut q = OrderedQueue::new();
        for (key, seq) in [(5i64, 0u64), (9, 1), (9, 2), (1, 3)] {
            q.insert(key, queued_prio(key, seq, seq));
        }
        assert_eq!(q.max_key(), Some(9));
        // Worst = largest (key, seq): the *later* of the two key-9 packets.
        let (key, victim) = q.pop_max().unwrap();
        assert_eq!((key, victim.arrival_seq), (9, 2));
        assert_eq!(q.pop_max().unwrap().1.arrival_seq, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn slots_are_reused() {
        let mut q = OrderedQueue::new();
        for round in 0..100u64 {
            q.insert(0i64, queued_prio(0, round, round));
            q.pop_min().unwrap();
        }
        assert!(q.slots.len() <= 1, "arena grew on a steady-state queue");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = OrderedQueue::new();
        q.insert(7i64, queued_prio(7, 0, 0));
        q.insert(4, queued_prio(4, 1, 1));
        assert_eq!(q.peek_min().unwrap().arrival_seq, 1);
        assert_eq!(q.pop_min().unwrap().1.arrival_seq, 1);
    }
}
