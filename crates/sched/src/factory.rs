//! Scheduler construction by name — the experiment harness configures
//! per-router scheduling from these descriptors (Table 1's "Scheduling
//! Algorithm" column).

use crate::{drr, edf, fifoplus, fq, lifo, lstf, prio, random, srpt};
use ups_net::{LinkId, Scheduler};

/// A constructible scheduling algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// First-in-first-out (drop tail).
    Fifo,
    /// Last-in-first-out.
    Lifo,
    /// Uniform random among queued packets; seeded per link.
    Random,
    /// Static priority, `hdr.prio` stamped at ingress.
    Priority,
    /// Shortest job first (static priority = flow size).
    Sjf,
    /// Shortest remaining processing time + starvation prevention.
    Srpt,
    /// Fair queuing (SCFQ emulation of DKS bit-by-bit round robin).
    Fq,
    /// Deficit round robin.
    Drr,
    /// FIFO+ (Clark et al.): credit for upstream queueing delay.
    FifoPlus,
    /// Least Slack Time First.
    Lstf,
    /// Network-wide EDF (static-header LSTF equivalent).
    Edf,
    /// Half the routers run FQ, half run FIFO+ (Table 1's "FQ/FIFO+"
    /// mixed deployment; split by link id parity).
    FqFifoPlusMix,
}

impl SchedKind {
    /// Every constructible kind, in Table 1 order (iteration for tests
    /// and exhaustive sweeps).
    pub const ALL: [SchedKind; 12] = [
        SchedKind::Fifo,
        SchedKind::Lifo,
        SchedKind::Random,
        SchedKind::Priority,
        SchedKind::Sjf,
        SchedKind::Srpt,
        SchedKind::Fq,
        SchedKind::Drr,
        SchedKind::FifoPlus,
        SchedKind::Lstf,
        SchedKind::Edf,
        SchedKind::FqFifoPlusMix,
    ];

    /// Build a scheduler instance for `link`. `seed` feeds the Random
    /// scheduler (mixed with the link id so each port draws its own
    /// stream) and is ignored by deterministic algorithms.
    pub fn build(self, link: LinkId, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedKind::Fifo => Box::new(ups_net::Fifo::new()),
            SchedKind::Lifo => Box::new(lifo::Lifo::new()),
            SchedKind::Random => Box::new(random::Random::new(
                seed ^ (link.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )),
            SchedKind::Priority => Box::new(prio::priority()),
            SchedKind::Sjf => Box::new(prio::sjf()),
            SchedKind::Srpt => Box::new(srpt::Srpt::new()),
            SchedKind::Fq => Box::new(fq::Fq::new()),
            SchedKind::Drr => Box::new(drr::Drr::new(1500)),
            SchedKind::FifoPlus => Box::new(fifoplus::fifo_plus()),
            SchedKind::Lstf => Box::new(lstf::lstf()),
            SchedKind::Edf => Box::new(edf::edf()),
            SchedKind::FqFifoPlusMix => {
                if link.0 % 2 == 0 {
                    Box::new(fq::Fq::new())
                } else {
                    Box::new(fifoplus::fifo_plus())
                }
            }
        }
    }

    /// Display label (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            SchedKind::Fifo => "FIFO",
            SchedKind::Lifo => "LIFO",
            SchedKind::Random => "Random",
            SchedKind::Priority => "Priority",
            SchedKind::Sjf => "SJF",
            SchedKind::Srpt => "SRPT",
            SchedKind::Fq => "FQ",
            SchedKind::Drr => "DRR",
            SchedKind::FifoPlus => "FIFO+",
            SchedKind::Lstf => "LSTF",
            SchedKind::Edf => "EDF",
            SchedKind::FqFifoPlusMix => "FQ/FIFO+",
        }
    }

    /// Whether this algorithm reads `hdr.prio` (the ingress must stamp it).
    pub fn needs_priority_stamp(self) -> bool {
        matches!(
            self,
            SchedKind::Priority | SchedKind::Sjf | SchedKind::Srpt | SchedKind::Edf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_kind() {
        for k in SchedKind::ALL {
            let s = k.build(LinkId(3), 42);
            assert_eq!(s.len(), 0, "{} not empty at birth", s.name());
        }
    }

    #[test]
    fn mix_alternates_by_link_parity() {
        assert_eq!(SchedKind::FqFifoPlusMix.build(LinkId(0), 0).name(), "FQ");
        assert_eq!(SchedKind::FqFifoPlusMix.build(LinkId(1), 0).name(), "FIFO+");
    }

    #[test]
    fn random_ports_get_distinct_streams() {
        let mut a = SchedKind::Random.build(LinkId(0), 7);
        let mut b = SchedKind::Random.build(LinkId(1), 7);
        for seq in 0..20 {
            a.enqueue(ups_net::testutil::queued_slack(0, seq, seq));
            b.enqueue(ups_net::testutil::queued_slack(0, seq, seq));
        }
        let da: Vec<u64> = std::iter::from_fn(|| a.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        let db: Vec<u64> = std::iter::from_fn(|| b.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        assert_ne!(da, db);
    }
}
