//! Shortest Remaining Processing Time with starvation prevention, as in
//! pFabric \[3\] and used by the paper's mean-FCT comparison (§3.1).
//!
//! The sender stamps every packet's `prio` with the flow's *remaining*
//! size in bytes at send time (SRPT) — or the total flow size (SJF). The
//! starvation-prevention rule (paper footnote 8): "the router always
//! schedules the earliest arriving packet of the flow which contains the
//! highest priority packet". So priority selects the flow, but service
//! within the flow is FCFS, which avoids starving a flow's earlier
//! packets that were stamped with larger remaining sizes.
//!
//! On overflow, the victim is the newest packet of the flow holding the
//! *worst* best-priority (pFabric drops from the lowest-priority flow).

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

// lint: keyed-lookup-only(file) — `flows` is only indexed by FlowId;
// flow selection always goes through the ordered `index` BTreeSet, so
// hash iteration order never influences service order.
use std::collections::{BTreeSet, HashMap, VecDeque};
use ups_net::scheduler::{EvictOutcome, Queued, Scheduler};
use ups_net::FlowId;

/// SRPT scheduler with pFabric-style starvation prevention.
#[derive(Debug, Default)]
pub struct Srpt {
    /// Per-flow FCFS queues.
    flows: HashMap<FlowId, VecDeque<Queued>>,
    /// Every queued packet as (prio, arrival_seq, flow) for global
    /// min/max priority lookups.
    index: BTreeSet<(i64, u64, FlowId)>,
    len: usize,
}

impl Srpt {
    /// Create an empty SRPT scheduler.
    pub fn new() -> Srpt {
        Srpt::default()
    }

    fn remove_from_index(&mut self, q: &Queued) {
        let removed = self
            .index
            .remove(&(q.pkt.hdr.prio, q.arrival_seq, q.pkt.flow));
        debug_assert!(removed, "index out of sync");
    }
}

impl Scheduler for Srpt {
    fn name(&self) -> &'static str {
        "SRPT"
    }

    fn enqueue(&mut self, q: Queued) {
        self.index
            .insert((q.pkt.hdr.prio, q.arrival_seq, q.pkt.flow));
        self.flows.entry(q.pkt.flow).or_default().push_back(q);
        self.len += 1;
    }

    fn dequeue(&mut self) -> Option<Queued> {
        // Flow containing the globally highest-priority packet...
        let &(_, _, flow) = self.index.first()?;
        // ...serves its earliest-arrived packet.
        let fq = self.flows.get_mut(&flow).expect("indexed flow missing");
        let q = fq.pop_front().expect("indexed flow empty");
        if fq.is_empty() {
            self.flows.remove(&flow);
        }
        self.len -= 1;
        self.remove_from_index(&q);
        Some(q)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn evict_for(&mut self, incoming: &Queued) -> EvictOutcome {
        let Some(&(worst_prio, _, flow)) = self.index.last() else {
            return EvictOutcome::DropIncoming;
        };
        if worst_prio <= incoming.pkt.hdr.prio {
            return EvictOutcome::DropIncoming;
        }
        let fq = self.flows.get_mut(&flow).expect("indexed flow missing");
        let victim = fq.pop_back().expect("indexed flow empty");
        if fq.is_empty() {
            self.flows.remove(&flow);
        }
        self.len -= 1;
        self.remove_from_index(&victim);
        EvictOutcome::Evicted(victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_flow;

    #[test]
    fn serves_flow_with_best_priority() {
        let mut s = Srpt::new();
        s.enqueue(queued_flow(0, 9_000, 0, 0));
        s.enqueue(queued_flow(1, 1_000, 1, 1)); // short flow
        assert_eq!(s.dequeue().unwrap().pkt.flow.0, 1);
        assert_eq!(s.dequeue().unwrap().pkt.flow.0, 0);
    }

    #[test]
    fn starvation_prevention_serves_flow_head_first() {
        let mut s = Srpt::new();
        // Flow 5's first packet was stamped with remaining=3000, its last
        // with remaining=1500 (closer to completion => higher priority).
        s.enqueue(queued_flow(5, 3_000, 0, 0));
        s.enqueue(queued_flow(5, 1_500, 1, 1));
        // A competitor with priority between the two.
        s.enqueue(queued_flow(6, 2_000, 2, 2));
        // Flow 5 holds the global best (1500) so its EARLIEST packet
        // (seq 0, prio 3000) is served first — not the 1500 one, and not
        // flow 6's 2000.
        let first = s.dequeue().unwrap();
        assert_eq!((first.pkt.flow.0, first.pkt.seq), (5, 0));
        let second = s.dequeue().unwrap();
        assert_eq!((second.pkt.flow.0, second.pkt.seq), (5, 1));
        assert_eq!(s.dequeue().unwrap().pkt.flow.0, 6);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn eviction_hits_lowest_priority_flow_tail() {
        let mut s = Srpt::new();
        s.enqueue(queued_flow(0, 100, 0, 0));
        s.enqueue(queued_flow(1, 9_000, 1, 1));
        s.enqueue(queued_flow(1, 8_000, 2, 2));
        let incoming = queued_flow(2, 500, 3, 3);
        match s.evict_for(&incoming) {
            // Flow 1 holds the worst priority (9000 best... its best is
            // 8000, still worst flow); victim is its newest packet.
            EvictOutcome::Evicted(v) => {
                assert_eq!(v.pkt.flow.0, 1);
                assert_eq!(v.pkt.seq, 2);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn conserves_packets() {
        let mut s = Srpt::new();
        for i in 0..50u64 {
            s.enqueue(queued_flow(i % 7, (50 - i) as i64, i, i));
        }
        let mut seqs: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }
}
