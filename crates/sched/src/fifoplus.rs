//! FIFO+ (Clark, Shenker, Zhang 1992) — minimizes tail delay in multi-hop
//! networks by prioritizing packets "based on the amount of queueing delay
//! they have seen at their previous hops" (§3.2).
//!
//! Implementation note: the paper observes that LSTF with a constant
//! initial slack *is* FIFO+. With constant slack `S`, the LSTF deadline at
//! a router is `enq + (S − Σ upstream waits) + tx`, so for uniform packet
//! sizes the order reduces to `enq_time − accumulated queueing delay`: a
//! virtual arrival time credited for upstream waiting. That is the key
//! used here, reading the wait accumulator the port maintains in
//! `pkt.qdelay` — no slack header required, making FIFO+ usable as an
//! *original* schedule in replay experiments (Table 1's FQ/FIFO+ row).

use crate::keyed::{KeyPolicy, Keyed};
use ups_net::scheduler::Queued;

/// Key policy for FIFO+.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoPlusPolicy;

impl KeyPolicy for FifoPlusPolicy {
    fn name(&self) -> &'static str {
        "FIFO+"
    }
    fn key(&self, q: &Queued) -> i64 {
        q.enq_time.as_ps() as i64 - q.pkt.qdelay.as_i64()
    }
}

/// FIFO+ scheduler.
pub type FifoPlus = Keyed<FifoPlusPolicy>;

/// Construct a FIFO+ scheduler.
pub fn fifo_plus() -> FifoPlus {
    Keyed::new(FifoPlusPolicy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::scheduler::Scheduler;
    use ups_net::testutil::queued_full;
    use ups_sim::Dur;

    #[test]
    fn upstream_waiters_jump_ahead() {
        let mut s = fifo_plus();
        // Packet 0 arrives first but has seen no queueing; packet 1
        // arrives 10us later having waited 50us upstream.
        let fresh = queued_full(0, 0, 0, 0, 0);
        let mut waited = queued_full(1, 1, 0, 0, 10_000);
        waited.pkt.qdelay = Dur::from_micros(50);
        s.enqueue(fresh);
        s.enqueue(waited);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0);
    }

    #[test]
    fn without_upstream_delay_it_is_fifo() {
        let mut s = fifo_plus();
        for seq in 0..5 {
            s.enqueue(queued_full(0, seq, 0, 0, seq * 100));
        }
        for seq in 0..5 {
            assert_eq!(s.dequeue().unwrap().pkt.seq, seq);
        }
    }
}
