//! Fair Queuing (Demers–Keshav–Shenker \[12\]).
//!
//! Packet-level emulation of bit-by-bit round robin via finish tags, using
//! the self-clocked virtual time of SCFQ (Golestani): the virtual time is
//! the finish tag of the packet most recently chosen for service. On
//! arrival, a packet of flow `f` with `L` bits gets
//! `F = max(V, F_last[f]) + L / w_f`, and the smallest finish tag is
//! served first (FCFS among equal tags). This approximates DKS fair
//! queuing to within one packet per flow — the same fidelity ns-2's FQ
//! module provides — and supports per-flow weights.
//!
//! Tags are in "virtual bit-times" scaled by 256 to give integer
//! precision for fractional weights.

use crate::soa::OrderedQueue;
use std::collections::BTreeMap;
use ups_net::scheduler::{EvictOutcome, Queued, Scheduler};
use ups_net::FlowId;

const WEIGHT_SCALE: u64 = 256;

/// Self-clocked fair-queuing scheduler.
#[derive(Debug)]
pub struct Fq {
    /// Queued packets ordered by (finish tag, arrival seq), stored
    /// struct-of-arrays (see [`crate::soa`]).
    q: OrderedQueue<u64>,
    /// Last finish tag assigned per flow. BTreeMap rather than HashMap:
    /// FlowId is Ord, lookups are O(log n) on a handful of active flows,
    /// and the ordered representation means no future iteration over
    /// this state can ever depend on SipHash seeding.
    last_finish: BTreeMap<FlowId, u64>,
    /// Current virtual time = tag of the packet last selected for service.
    vtime: u64,
    /// Per-flow weight numerators (default 1.0); missing = 1.0.
    weights: BTreeMap<FlowId, f64>,
}

impl Default for Fq {
    fn default() -> Self {
        Self::new()
    }
}

impl Fq {
    /// Create an FQ scheduler with unit weights.
    pub fn new() -> Fq {
        Fq {
            q: OrderedQueue::new(),
            last_finish: BTreeMap::new(),
            vtime: 0,
            weights: BTreeMap::new(),
        }
    }

    /// Assign a weight to a flow (weighted fair queuing). Must be > 0.
    pub fn set_weight(&mut self, flow: FlowId, w: f64) {
        assert!(w > 0.0, "non-positive FQ weight");
        self.weights.insert(flow, w);
    }

    fn finish_tag(&self, q: &Queued) -> u64 {
        let w = self.weights.get(&q.pkt.flow).copied().unwrap_or(1.0);
        let bits = q.pkt.size as u64 * 8;
        let cost = ((bits * WEIGHT_SCALE) as f64 / w).round() as u64;
        let start = self
            .last_finish
            .get(&q.pkt.flow)
            .copied()
            .unwrap_or(0)
            .max(self.vtime);
        start + cost.max(1)
    }
}

impl Scheduler for Fq {
    fn name(&self) -> &'static str {
        "FQ"
    }

    fn enqueue(&mut self, q: Queued) {
        let tag = self.finish_tag(&q);
        self.last_finish.insert(q.pkt.flow, tag);
        self.q.insert(tag, q);
    }

    fn dequeue(&mut self) -> Option<Queued> {
        let (tag, q) = self.q.pop_min()?;
        self.vtime = tag;
        Some(q)
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn evict_for(&mut self, incoming: &Queued) -> EvictOutcome {
        // Drop the packet with the largest finish tag — the one furthest
        // past its fair share — if it is worse than the arrival would be.
        let incoming_tag = self.finish_tag(incoming);
        match self.q.max_key() {
            Some(worst) if worst > incoming_tag => {
                let (_, victim) = self.q.pop_max().expect("non-empty");
                EvictOutcome::Evicted(victim)
            }
            _ => EvictOutcome::DropIncoming,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_flow;

    /// Drain the scheduler, returning flow ids in service order.
    fn drain(s: &mut Fq) -> Vec<u64> {
        std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.flow.0)
            .collect()
    }

    #[test]
    fn interleaves_two_backlogged_flows() {
        let mut s = Fq::new();
        // Flow 0 dumps 4 packets, then flow 1 dumps 4 packets, all while
        // the port is busy. FQ must interleave them, not serve 0000 1111.
        let mut seq = 0;
        for _ in 0..4 {
            s.enqueue(queued_flow(0, 0, 0, seq));
            seq += 1;
        }
        for _ in 0..4 {
            s.enqueue(queued_flow(1, 0, 1, seq));
            seq += 1;
        }
        let order = drain(&mut s);
        // First packet of flow 1 must be served before the last packet of
        // flow 0 (strict interleaving after the first round).
        let first1 = order.iter().position(|&f| f == 1).unwrap();
        let last0 = order.iter().rposition(|&f| f == 0).unwrap();
        assert!(first1 < last0, "no interleaving: {order:?}");
        // Equal split overall.
        assert_eq!(order.iter().filter(|&&f| f == 0).count(), 4);
    }

    #[test]
    fn single_flow_stays_fifo() {
        let mut s = Fq::new();
        for seq in 0..6 {
            s.enqueue(queued_flow(7, 0, seq, seq));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        assert_eq!(seqs, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_flow_gets_proportional_share() {
        let mut s = Fq::new();
        s.set_weight(FlowId(0), 2.0);
        s.set_weight(FlowId(1), 1.0);
        let mut seq = 0;
        for _ in 0..6 {
            s.enqueue(queued_flow(0, 0, 0, seq));
            seq += 1;
        }
        for _ in 0..3 {
            s.enqueue(queued_flow(1, 0, 0, seq));
            seq += 1;
        }
        // In the first 6 services, flow 0 (weight 2) should get ~4.
        let order = drain(&mut s);
        let f0_in_first6 = order[..6].iter().filter(|&&f| f == 0).count();
        assert!(f0_in_first6 >= 4, "weights ignored: {order:?}");
    }

    #[test]
    fn idle_flow_gets_no_credit_hoard() {
        let mut s = Fq::new();
        // Flow 0 is served alone for a while (vtime advances)...
        for seq in 0..3 {
            s.enqueue(queued_flow(0, 0, seq, seq));
        }
        drain(&mut s);
        // ...then flow 1 arrives. Its start tag must be >= current vtime,
        // i.e. it cannot claim the bandwidth it never used.
        s.enqueue(queued_flow(1, 0, 100, 10));
        s.enqueue(queued_flow(0, 0, 100, 11));
        let order = drain(&mut s);
        // Both flows start fresh at vtime: interleaved fairly (FCFS on tag
        // ties -> flow 1 first since it was enqueued first here).
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 1);
    }
}
