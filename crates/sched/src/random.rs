//! Random scheduling — the paper's default *original* schedule for the
//! replay experiments (§2.3): "completely arbitrary schedules produced by
//! a random scheduler (which picks the packet to be scheduled randomly
//! from the set of queued up packets)".
//!
//! Draws come from a [`DetRng`] seeded per link, so a given seed always
//! produces the same "arbitrary" schedule — a requirement for comparing
//! the original run against its replay.

use ups_net::scheduler::{Queued, Scheduler};
use ups_sim::DetRng;

/// Uniform-random scheduler.
#[derive(Debug)]
pub struct Random {
    q: Vec<Queued>,
    rng: DetRng,
}

impl Random {
    /// Create a random scheduler with its own seed.
    pub fn new(seed: u64) -> Random {
        Random {
            q: Vec::new(),
            rng: DetRng::new(seed),
        }
    }
}

impl Scheduler for Random {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn enqueue(&mut self, q: Queued) {
        self.q.push(q);
    }

    fn dequeue(&mut self) -> Option<Queued> {
        if self.q.is_empty() {
            return None;
        }
        let i = self.rng.gen_index(self.q.len());
        Some(self.q.swap_remove(i))
    }

    fn len(&self) -> usize {
        self.q.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_slack;

    #[test]
    fn same_seed_same_order() {
        let order = |seed| {
            let mut s = Random::new(seed);
            for seq in 0..20 {
                s.enqueue(queued_slack(0, seq, seq));
            }
            std::iter::from_fn(|| s.dequeue())
                .map(|q| q.pkt.seq)
                .collect::<Vec<_>>()
        };
        assert_eq!(order(5), order(5));
        assert_ne!(order(5), order(6), "different seeds should differ");
    }

    #[test]
    fn conserves_packets() {
        let mut s = Random::new(1);
        for seq in 0..100 {
            s.enqueue(queued_slack(0, seq, seq));
        }
        let mut got: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn is_not_fifo() {
        let mut s = Random::new(99);
        for seq in 0..50 {
            s.enqueue(queued_slack(0, seq, seq));
        }
        let got: Vec<u64> = std::iter::from_fn(|| s.dequeue())
            .map(|q| q.pkt.seq)
            .collect();
        assert_ne!(got, (0..50).collect::<Vec<_>>());
    }
}
