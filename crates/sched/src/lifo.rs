//! Last-in-first-out scheduling — one of the paper's stress-test original
//! schedules (Table 1). LIFO produces a large skew in the slack
//! distribution, which is exactly why its LSTF replay is among the hardest.

use ups_net::scheduler::{Queued, Scheduler};

/// LIFO stack scheduler (drop-tail on overflow).
#[derive(Debug, Default)]
pub struct Lifo {
    stack: Vec<Queued>,
}

impl Lifo {
    /// Create an empty LIFO scheduler.
    pub fn new() -> Lifo {
        Lifo::default()
    }
}

impl Scheduler for Lifo {
    fn name(&self) -> &'static str {
        "LIFO"
    }

    fn enqueue(&mut self, q: Queued) {
        self.stack.push(q);
    }

    fn dequeue(&mut self) -> Option<Queued> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::testutil::queued_slack;

    #[test]
    fn newest_first() {
        let mut s = Lifo::new();
        for seq in 0..4 {
            s.enqueue(queued_slack(0, seq, seq));
        }
        for seq in (0..4).rev() {
            assert_eq!(s.dequeue().unwrap().pkt.seq, seq);
        }
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn interleaved_push_pop() {
        let mut s = Lifo::new();
        s.enqueue(queued_slack(0, 0, 0));
        s.enqueue(queued_slack(0, 1, 1));
        assert_eq!(s.dequeue().unwrap().pkt.seq, 1);
        s.enqueue(queued_slack(0, 2, 2));
        assert_eq!(s.dequeue().unwrap().pkt.seq, 2);
        assert_eq!(s.dequeue().unwrap().pkt.seq, 0);
    }
}
