//! Regression test for the buffer-admission eviction loop: an arriving
//! packet bigger than the whole buffer can never fit, so `Link::admit`
//! must drop it and terminate — for **every** scheduler, including the
//! evicting ones (LSTF and friends), which previously could only stop
//! the loop by how they happened to answer `evict_for` on an empty
//! queue.

use std::sync::Arc;
use ups_net::{FlowId, Link, LinkId, NodeId, Packet, PacketId, PacketKind, Path, SchedHeader};
use ups_sched::SchedKind;
use ups_sim::{Bandwidth, Dur, Time};

fn mk_link(kind: SchedKind, buffer: u64) -> Link {
    let mut l = Link::new(
        LinkId(0),
        NodeId(0),
        NodeId(1),
        Bandwidth::gbps(1),
        Dur::from_micros(5),
    );
    l.buffer = Some(buffer);
    l.set_scheduler(kind.build(LinkId(0), 7));
    l
}

fn mk_pkt(id: u64, size: u32, slack: i64) -> Box<Packet> {
    let path = Arc::new(Path {
        links: vec![LinkId(0)].into(),
        bw: vec![Bandwidth::gbps(1)].into(),
        prop: vec![Dur::from_micros(5)].into(),
    });
    Box::new(Packet {
        id: PacketId(id),
        flow: FlowId(id),
        seq: 0,
        size,
        tx_left: None,
        src: NodeId(0),
        dst: NodeId(1),
        created: Time::ZERO,
        path,
        hops_done: 0,
        hdr: SchedHeader {
            slack,
            prio: slack,
            hop_times: None,
        },
        kind: PacketKind::Data { bytes: size },
        qdelay: Dur::ZERO,
        hop_arrive: Time::ZERO,
        hop_first_tx: Time::ZERO,
    })
}

/// Arrival alone exceeds the buffer, queue empty: must drop the arrival
/// (and not loop or panic) under every scheduler.
#[test]
fn oversized_arrival_into_empty_queue_is_dropped() {
    for kind in SchedKind::ALL {
        let mut l = mk_link(kind, 1000);
        let act = l.admit(mk_pkt(0, 1500, 0), Time::ZERO);
        let name = l.scheduler_name();
        assert_eq!(act.dropped.len(), 1, "{name}: arrival must be dropped");
        assert_eq!(act.dropped[0].id, PacketId(0), "{name}: wrong victim");
        assert_eq!(l.stats.dropped, 1, "{name}");
        assert_eq!(l.queue_len(), 0, "{name}: queue must stay empty");
    }
}

/// Arrival alone exceeds the buffer while smaller (and, for the keyed
/// schedulers, strictly worse-keyed) packets are queued: eviction may
/// clear the queue, but the loop must still terminate by dropping the
/// oversized arrival once nothing is left to evict.
#[test]
fn oversized_arrival_terminates_even_after_evicting_everything() {
    for kind in SchedKind::ALL {
        let mut l = mk_link(kind, 1000);
        // Occupy the transmitter so admitted packets stay queued.
        l.admit(mk_pkt(100, 400, 1), Time::ZERO);
        l.try_start(Time::ZERO).expect("starts transmitting");
        // Two small queued packets with huge slack/prio (evict-worst
        // schedulers will happily sacrifice them).
        l.admit(mk_pkt(101, 400, 1_000_000_000), Time::ZERO);
        l.admit(mk_pkt(102, 400, 2_000_000_000), Time::ZERO);
        let queued_before = l.queue_len();
        assert_eq!(queued_before, 2);

        let act = l.admit(mk_pkt(0, 1200, 0), Time::ZERO);
        let name = l.scheduler_name();
        // However many victims were evicted first, the arrival itself
        // must end up in the dropped set and the call must return.
        assert!(
            act.dropped.iter().any(|p| p.id == PacketId(0)),
            "{name}: oversized arrival not dropped (dropped: {:?})",
            act.dropped.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert!(
            l.queue_len() <= queued_before,
            "{name}: queue grew on a failed admission"
        );
    }
}
