//! The known-bad corpus: one mini-tree per rule under
//! `tests/fixtures/`, each laid out like a tiny workspace so the
//! path-based tier logic runs for real. Every test pins the *exact*
//! findings — rule, file, and line — so a rule that drifts (matches
//! more, matches less, moves a line) fails loudly rather than rotting.
//!
//! The workspace walker skips directories named `fixtures`, which is
//! what keeps this corpus from failing the lint's own self-run.

use std::path::PathBuf;
use ups_lint::report::Report;

fn fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    ups_lint::lint_root(&root).expect("fixture lints")
}

/// (rule, file, line) triples of the findings, in report order.
fn triples(r: &Report) -> Vec<(&str, &str, u32)> {
    r.findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect()
}

#[test]
fn hash_collections_flags_unannotated_only() {
    let r = fixture("hash_collections");
    assert_eq!(
        triples(&r),
        vec![
            ("hash-collections", "crates/sim/src/bad.rs", 4),
            ("hash-collections", "crates/sim/src/bad.rs", 7),
        ]
    );
}

#[test]
fn wall_clock_flags_instant_now_and_system_time() {
    let r = fixture("wall_clock");
    assert_eq!(
        triples(&r),
        vec![
            ("wall-clock", "crates/sim/src/bad.rs", 6),
            ("wall-clock", "crates/sim/src/bad.rs", 9),
            ("wall-clock", "crates/sim/src/bad.rs", 10),
        ]
    );
}

#[test]
fn ambient_entropy_flags_rng_and_env() {
    let r = fixture("ambient_entropy");
    assert_eq!(
        triples(&r),
        vec![
            ("ambient-entropy", "crates/net/src/bad.rs", 3),
            ("ambient-entropy", "crates/net/src/bad.rs", 8),
        ]
    );
}

#[test]
fn ptr_as_key_flags_the_cast() {
    let r = fixture("ptr_as_key");
    assert_eq!(
        triples(&r),
        vec![("ptr-as-key", "crates/net/src/bad.rs", 3)]
    );
}

#[test]
fn float_debug_format_flags_artifact_writer() {
    let r = fixture("float_debug_format");
    assert_eq!(
        triples(&r),
        vec![("float-debug-format", "crates/sweep/src/artifact.rs", 3)]
    );
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let r = fixture("unsafe_safety");
    assert_eq!(
        triples(&r),
        vec![("unsafe-safety-comment", "crates/net/src/bad.rs", 4)]
    );
    // Both blocks were audited, only one flagged.
    assert_eq!(r.checked.unsafe_blocks, 2);
}

#[test]
fn unwrap_budget_counts_non_test_calls() {
    let r = fixture("unwrap_budget");
    assert_eq!(
        triples(&r),
        vec![("unwrap-budget", "crates/net/src/hot.rs", 4)]
    );
    assert!(r.findings[0].message.contains("3 non-test"));
    assert!(r.findings[0].message.contains("budget of 2"));
}

#[test]
fn event_class_order_catches_tie_and_undeclared_use() {
    let r = fixture("event_class_order");
    let t = triples(&r);
    // OBSERVE==TIMER tie: flagged once for the shared value and once
    // for OBSERVE not being the strict maximum; plus the undeclared
    // `class::DEPART` use.
    assert_eq!(t.len(), 3, "{t:?}");
    assert!(t.iter().all(|(rule, _, _)| *rule == "event-class-order"));
    assert!(r
        .findings
        .iter()
        .any(|f| f.message.contains("share value 6")));
    assert!(r
        .findings
        .iter()
        .any(|f| f.message.contains("strict maximum")));
    assert!(r
        .findings
        .iter()
        .any(|f| f.line == 16 && f.message.contains("class::DEPART")));
    assert_eq!(r.checked.event_classes, 4);
}

#[test]
fn scenario_docs_checks_both_directions() {
    let r = fixture("scenario_docs");
    assert_eq!(
        triples(&r),
        vec![
            ("scenario-docs", "crates/sweep/src/scenario.rs", 9),
            ("scenario-docs", "docs/SCENARIOS.md", 7),
        ]
    );
    assert!(r.findings[0].message.contains("`ghost`"));
    assert!(r.findings[1].message.contains("`phantom`"));
    assert_eq!(r.checked.scenarios, 2);
}

#[test]
fn obs_off_gating_respects_delegation() {
    let r = fixture("obs_off_gating");
    // `inc` is gated directly, `raise` via delegation; only `record`
    // is naked. `total` takes &self and is not a hook at all.
    assert_eq!(
        triples(&r),
        vec![("obs-off-gating", "crates/obs/src/reg.rs", 21)]
    );
    assert_eq!(r.findings[0].item.as_deref(), Some("record"));
    assert_eq!(r.checked.obs_hooks, 3);
}

#[test]
fn suppression_hygiene_is_enforced() {
    let r = fixture("suppressions");
    let t = triples(&r);
    // The unjustified entry suppresses nothing: the wall-clock finding
    // survives, the entry is flagged, and the no-match entry is stale.
    assert_eq!(
        t,
        vec![
            ("wall-clock", "crates/sim/src/bad.rs", 4),
            ("unjustified-suppression", "lint.toml", 1),
            ("stale-suppression", "lint.toml", 6),
        ]
    );
    assert_eq!(r.suppressed, 0);
}
