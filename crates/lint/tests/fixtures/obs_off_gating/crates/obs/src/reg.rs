//! Fixture: `inc` tests COMPILED (gated), `raise` delegates to `inc`
//! (gated transitively), `record` does neither (flagged).
pub const COMPILED: bool = cfg!(not(feature = "off"));

pub struct Reg {
    v: u64,
}

impl Reg {
    pub fn inc(&mut self, by: u64) {
        if !COMPILED {
            return;
        }
        self.v += by;
    }

    pub fn raise(&mut self, by: u64) {
        self.inc(by);
    }

    pub fn record(&mut self, by: u64) {
        self.v += by;
    }

    pub fn total(&self) -> u64 {
        self.v
    }
}
