//! Fixture: thread_rng and an environment read — banned at every tier.
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

pub fn config() -> Option<String> {
    std::env::var("UPS_SECRET_KNOB").ok()
}
