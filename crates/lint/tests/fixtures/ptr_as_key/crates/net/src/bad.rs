//! Fixture: a pointer laundered into a sort key.
pub fn key_of(v: &[u8]) -> usize {
    v.as_ptr() as usize
}
