//! Fixture: `ghost` is registered but undocumented; the docs describe a
//! `phantom` scenario that is not registered.
pub struct Scenario {
    pub name: &'static str,
}

pub static REGISTRY: &[Scenario] = &[
    Scenario { name: "baseline" },
    Scenario { name: "ghost" },
];
