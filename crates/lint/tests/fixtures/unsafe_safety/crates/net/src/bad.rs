//! Fixture: one naked unsafe block (flagged) and one with a SAFETY
//! comment (clean, but still counted in `checked.unsafe_blocks`).
pub fn naked(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn argued(p: *const u8) -> u8 {
    // SAFETY: fixture pointer is valid by construction in the caller.
    unsafe { *p }
}
