//! Fixture: OBSERVE is not the strict maximum (TIMER ties it), and a
//! use of an undeclared class.
pub mod class {
    pub const CHAOS: u8 = 0;
    pub const ARRIVE: u8 = 1;
    pub const TIMER: u8 = 6;
    pub const OBSERVE: u8 = 6;
}

pub fn push_all() -> (u8, u8, u8, u8, u8) {
    (
        class::CHAOS,
        class::ARRIVE,
        class::TIMER,
        class::OBSERVE,
        class::DEPART,
    )
}
