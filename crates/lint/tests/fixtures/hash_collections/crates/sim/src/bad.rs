//! Fixture: unannotated HashMap mentions in a Core-tier crate (the
//! `use` and the field are both flagged), an annotated one (clean),
//! and a test-only one (clean).
use std::collections::HashMap;

pub struct S {
    map: HashMap<u64, u64>,
}

pub struct Fine {
    // lint: keyed-lookup-only — read by key, never iterated
    map: HashMap<u64, u64>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    pub fn t() -> HashSet<u64> {
        HashSet::new()
    }
}
