//! Fixture: Instant::now in a Core-tier crate (flagged) plus a
//! SystemTime mention (flagged).
use std::time::Instant;

pub fn now_ms() -> u128 {
    Instant::now().elapsed().as_millis()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::UNIX_EPOCH
}
