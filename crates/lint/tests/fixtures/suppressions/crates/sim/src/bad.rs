//! Fixture: a wall-clock hit whose allow entry has no justification —
//! the finding must survive AND the entry must be flagged.
pub fn t() -> std::time::Instant {
    std::time::Instant::now()
}
