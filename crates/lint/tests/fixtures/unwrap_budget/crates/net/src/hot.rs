//! Fixture: three non-test unwraps against a committed budget of two.
//! The test-module unwrap must not count.
pub fn f(a: Option<u8>, b: Option<u8>, c: Option<u8>) -> u8 {
    a.unwrap() + b.unwrap() + c.expect("c")
}

#[cfg(test)]
mod tests {
    pub fn t(x: Option<u8>) -> u8 {
        x.unwrap()
    }
}
