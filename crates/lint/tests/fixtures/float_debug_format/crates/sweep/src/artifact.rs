//! Fixture: `{:?}` formatting inside an artifact writer.
pub fn write_row(x: f64) -> String {
    format!("{:?}", x)
}
