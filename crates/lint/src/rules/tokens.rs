//! Token rules: banned-API patterns matched on the lexed token stream.
//!
//! Each rule guards one determinism invariant (docs/LINT.md maps them
//! out in full). All of them skip `#[cfg(test)]` items where noted —
//! test-only code cannot perturb artifacts — and several accept an
//! in-source justification comment, which is the preferred suppression
//! for sites that are provably safe (the justification travels with the
//! code it excuses).

use crate::config::Config;
use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::walk::{SourceFile, Tier};

/// The in-source justification for `hash-collections`: the map is only
/// ever used for keyed lookup, so its nondeterministic iteration order
/// cannot escape. `(file)` scope covers the whole file.
pub const KEYED_LOOKUP_NOTE: &str = "lint: keyed-lookup-only";

/// Artifact-writer modules where `{:?}` float formatting is banned:
/// Debug float output is not format-stable across toolchains, so a
/// rustc upgrade could silently rewrite every committed baseline.
const ARTIFACT_WRITERS: &[&str] = &[
    "crates/sweep/src/artifact.rs",
    "crates/sweep/src/telemetry.rs",
    "crates/sweep/src/perf.rs",
];

pub fn run(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    for f in files {
        hash_collections(f, report);
        wall_clock(f, report);
        ambient_entropy(f, report);
        ptr_as_key(f, report);
        float_debug_format(f, report);
        unsafe_safety_comment(f, report);
    }
    unwrap_budget(files, cfg, report);
}

fn push(
    report: &mut Report,
    rule: &'static str,
    f: &SourceFile,
    line: u32,
    message: String,
    hint: &'static str,
) {
    report.findings.push(Finding {
        rule,
        file: f.rel.clone(),
        line,
        item: None,
        message,
        hint,
    });
}

/// `hash-collections`: `HashMap`/`HashSet` anywhere in a
/// determinism-critical crate. Hash iteration order varies per process
/// (SipHash keys are random), so any map whose iteration order can
/// reach an artifact breaks byte-identity. Keyed-lookup-only sites
/// carry the [`KEYED_LOOKUP_NOTE`] annotation instead.
fn hash_collections(f: &SourceFile, report: &mut Report) {
    if f.tier != Tier::Core {
        return;
    }
    let file_scope = f
        .lexed
        .comments
        .iter()
        .any(|c| c.text.contains(&format!("{KEYED_LOOKUP_NOTE}(file)")));
    if file_scope {
        return;
    }
    for (i, t) in f.toks().iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) || f.is_test_tok(i) {
            continue;
        }
        if f.lexed
            .comment_contains(t.line.saturating_sub(1), t.line, KEYED_LOOKUP_NOTE)
        {
            continue;
        }
        push(
            report,
            "hash-collections",
            f,
            t.line,
            format!("`{}` in a determinism-critical crate", t.text),
            "iteration order is per-process random; use BTreeMap/BTreeSet or \
             ups_sched::soa::OrderedQueue, or annotate the site \
             `// lint: keyed-lookup-only — <why no iteration order escapes>`",
        );
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` outside bench/perf
/// modules. Wall-clock reads in simulation or artifact code couple
/// results to the machine, which is the opposite of replayability.
fn wall_clock(f: &SourceFile, report: &mut Report) {
    if matches!(f.tier, Tier::Bench | Tier::Shim) {
        return;
    }
    let toks = f.toks();
    for (i, t) in toks.iter().enumerate() {
        if f.is_test_tok(i) {
            continue;
        }
        let hit = if t.is_ident("SystemTime") {
            Some("SystemTime")
        } else if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            Some("Instant::now")
        } else {
            None
        };
        if let Some(api) = hit {
            push(
                report,
                "wall-clock",
                f,
                t.line,
                format!("`{api}` outside a bench/perf module"),
                "simulation time comes from the event wheel (`ups_sim::Time`); \
                 perf timing belongs in crates/bench or behind a lint.toml \
                 allow with a justification",
            );
        }
    }
}

/// `ambient-entropy`: `thread_rng`, OS randomness, or environment reads
/// anywhere. Every RNG in this repo is seeded from the experiment
/// coordinate; every config comes in through flags. Ambient entropy or
/// env vars make a run irreproducible by construction, so there is no
/// justified site and no tier exemption.
fn ambient_entropy(f: &SourceFile, report: &mut Report) {
    let toks = f.toks();
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.is_ident("thread_rng")
            || t.is_ident("ThreadRng")
            || t.is_ident("RandomState")
            || t.is_ident("from_entropy")
            || t.is_ident("getrandom")
        {
            Some(t.text.clone())
        } else if t.is_ident("env")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks
                .get(i + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && t.text.starts_with("var"))
        {
            Some(format!("env::{}", toks[i + 3].text))
        } else {
            None
        };
        if let Some(api) = hit {
            push(
                report,
                "ambient-entropy",
                f,
                t.line,
                format!("`{api}` injects ambient state into a run"),
                "seed RNGs from the experiment coordinate (see ups_sim::rng); \
                 pass configuration through CLI flags, never the environment",
            );
        }
    }
}

/// `ptr-as-key`: casting a pointer to an integer. Addresses vary per
/// run (ASLR, allocator state), so a pointer-derived value feeding a
/// hash, sort key, or artifact breaks determinism. The pattern matched
/// is `as_ptr()`/`as_mut_ptr()` followed by an `as usize`/`as u64`
/// cast within the same expression window.
fn ptr_as_key(f: &SourceFile, report: &mut Report) {
    let toks = f.toks();
    for (i, t) in toks.iter().enumerate() {
        if f.is_test_tok(i) || !(t.is_ident("as_ptr") || t.is_ident("as_mut_ptr")) {
            continue;
        }
        let window = &toks[i + 1..toks.len().min(i + 8)];
        let cast = window
            .windows(2)
            .any(|w| w[0].is_ident("as") && (w[1].is_ident("usize") || w[1].is_ident("u64")));
        if cast {
            push(
                report,
                "ptr-as-key",
                f,
                t.line,
                "pointer cast to an integer".to_string(),
                "addresses differ per run under ASLR; derive keys from dense \
                 ids (NodeId/LinkId/FlowId), never from memory layout",
            );
        }
    }
}

/// `float-debug-format`: `{:?}` in a format string inside an
/// artifact-writer module. Debug float formatting is explicitly not
/// stability-guaranteed; artifact writers must go through the explicit
/// `fmt_f64` path so committed baselines survive toolchain upgrades.
fn float_debug_format(f: &SourceFile, report: &mut Report) {
    if !ARTIFACT_WRITERS.contains(&f.rel.as_str()) {
        return;
    }
    for (i, t) in f.toks().iter().enumerate() {
        if f.is_test_tok(i) || t.kind != TokKind::Str {
            continue;
        }
        if t.text.contains(":?") {
            push(
                report,
                "float-debug-format",
                f,
                t.line,
                "`{:?}` formatting in an artifact writer".to_string(),
                "Debug output is not format-stable across toolchains; write \
                 numbers through the writer's explicit Display path",
            );
        }
    }
}

/// `unsafe-safety-comment`: every `unsafe` keyword needs a `// SAFETY:`
/// comment on the same line or within the three lines above it.
fn unsafe_safety_comment(f: &SourceFile, report: &mut Report) {
    for t in f.toks() {
        if !t.is_ident("unsafe") {
            continue;
        }
        report.checked.unsafe_blocks += 1;
        if !f
            .lexed
            .comment_contains(t.line.saturating_sub(3), t.line, "SAFETY:")
        {
            push(
                report,
                "unsafe-safety-comment",
                f,
                t.line,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                "state the invariant that makes the block sound in a \
                 `// SAFETY:` comment directly above it",
            );
        }
    }
}

/// `unwrap-budget`: hot-path modules carry a committed ceiling on
/// non-test `unwrap()/expect()` calls (lint.toml `[budgets.unwrap]`).
/// Panics on the hot path are availability hazards; the ratchet only
/// tightens — raising a budget requires editing the committed file in
/// review.
fn unwrap_budget(files: &[SourceFile], cfg: &Config, report: &mut Report) {
    for (path, &budget) in &cfg.unwrap_budgets {
        let Some(f) = files.iter().find(|f| &f.rel == path) else {
            report.findings.push(Finding {
                rule: "stale-suppression",
                file: "lint.toml".to_string(),
                line: 0,
                item: Some(path.clone()),
                message: format!("[budgets.unwrap] names missing file `{path}`"),
                hint: "remove the stale budget entry",
            });
            continue;
        };
        let toks = f.toks();
        let mut count: u32 = 0;
        let mut over_line = 0;
        for (i, t) in toks.iter().enumerate() {
            let call = t.is_punct('.')
                && toks
                    .get(i + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('));
            if call && !f.is_test_tok(i) {
                count += 1;
                if count == budget + 1 {
                    over_line = toks[i + 1].line;
                }
            }
        }
        if count > budget {
            push(
                report,
                "unwrap-budget",
                f,
                over_line,
                format!(
                    "{count} non-test unwrap()/expect() calls exceed the \
                     hot-path budget of {budget}"
                ),
                "return/propagate instead of panicking on the hot path, or — \
                 for a genuinely impossible state — raise the committed budget \
                 in lint.toml so the change is visible in review",
            );
        }
    }
}
