//! Structural cross-checks: repo-wide contracts parsed out of source.
//!
//! Unlike the token rules, these correlate *multiple* files: the event
//! class constants against their documented pop order and their uses,
//! the scenario registry against docs/SCENARIOS.md, and the ups-obs
//! public hooks against their compiled-out gating. Each rule skips
//! silently when its anchor file is absent (so fixture mini-trees can
//! exercise one rule at a time); the `checked` counters in the report
//! let the workspace self-run assert the anchors were actually found.

use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::walk::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Anchor file for the event-class contract.
const NETWORK_RS: &str = "crates/net/src/network.rs";
/// Anchor file for the scenario registry.
const SCENARIO_RS: &str = "crates/sweep/src/scenario.rs";
/// Scenario catalogue document, relative to the lint root.
const SCENARIOS_MD: &str = "docs/SCENARIOS.md";
/// Directory prefix of the observability crate.
const OBS_PREFIX: &str = "crates/obs/src/";

/// Recording-hook method names in ups-obs that must be compiled out by
/// the `off` feature. A method with one of these names and a `&mut
/// self` receiver is a hook; anything else (registration, readers,
/// merge) may run unconditionally.
const HOOK_VERBS: &[&str] = &["add", "inc", "raise", "record", "push", "observe", "sample"];

pub fn run(files: &[SourceFile], root: &Path, report: &mut Report) {
    event_class_order(files, report);
    scenario_docs(files, root, report);
    obs_off_gating(files, report);
}

/// `event-class-order`: the same-instant pop order of the event wheel
/// is a load-bearing determinism contract — chaos transitions settle
/// before any data-plane event, and telemetry observation pops last so
/// it can never reorder the data plane. This rule parses the `mod
/// class` constants in network.rs and enforces: `CHAOS` is the strict
/// minimum, `OBSERVE` the strict maximum, values are unique, every
/// `class::X` use resolves to a declared constant, and no declared
/// constant is dead.
fn event_class_order(files: &[SourceFile], report: &mut Report) {
    let Some(f) = files.iter().find(|f| f.rel == NETWORK_RS) else {
        return;
    };
    let toks = f.toks();
    // Locate `mod class {` and its matching close brace.
    let Some(start) = toks
        .windows(3)
        .position(|w| w[0].is_ident("mod") && w[1].is_ident("class") && w[2].is_punct('{'))
    else {
        report.findings.push(Finding {
            rule: "event-class-order",
            file: f.rel.clone(),
            line: 0,
            item: None,
            message: "no `mod class { ... }` found".to_string(),
            hint: "the event ordering classes must live in a `mod class` so \
                   the pop-order contract stays checkable",
        });
        return;
    };
    let body_start = start + 3;
    let mut depth = 1usize;
    let mut end = body_start;
    while end < toks.len() && depth > 0 {
        if toks[end].is_punct('{') {
            depth += 1;
        } else if toks[end].is_punct('}') {
            depth -= 1;
        }
        end += 1;
    }
    // Collect `pub const NAME: u8 = N;` entries.
    let mut consts: BTreeMap<String, (u64, u32)> = BTreeMap::new();
    let mut i = body_start;
    while i + 6 < end {
        if toks[i].is_ident("const")
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            // Find the `=` then the number.
            let mut j = i + 3;
            while j < end && !toks[j].is_punct('=') {
                j += 1;
            }
            if let Some(num) = toks.get(j + 1).filter(|t| t.kind == TokKind::Num) {
                if let Ok(v) = num.text.parse::<u64>() {
                    consts.insert(name, (v, line));
                }
            }
            i = j;
        }
        i += 1;
    }
    report.checked.event_classes = consts.len();
    fn flag(report: &mut Report, line: u32, item: &str, message: String) {
        report.findings.push(Finding {
            rule: "event-class-order",
            file: NETWORK_RS.to_string(),
            line,
            item: Some(item.to_string()),
            message,
            hint: "same-instant pop order is (time, class, seq): chaos must \
                   settle first (strict minimum) and OBSERVE must pop last \
                   (strict maximum) or artifacts change byte-for-byte",
        });
    }
    // Uniqueness.
    let mut by_value: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, (v, _)) in &consts {
        by_value.entry(*v).or_default().push(name);
    }
    for (v, names) in &by_value {
        if names.len() > 1 {
            let (_, line) = consts[names[1]];
            flag(
                report,
                line,
                names[1],
                format!("event classes {names:?} share value {v}"),
            );
        }
    }
    // CHAOS strict min, OBSERVE strict max.
    match consts.get("CHAOS") {
        None => flag(
            report,
            0,
            "CHAOS",
            "no CHAOS event class declared".to_string(),
        ),
        Some(&(v, line)) => {
            if consts.iter().any(|(n, &(o, _))| n != "CHAOS" && o <= v) {
                flag(
                    report,
                    line,
                    "CHAOS",
                    format!("CHAOS ({v}) is not the strict minimum class"),
                );
            }
        }
    }
    match consts.get("OBSERVE") {
        None => flag(
            report,
            0,
            "OBSERVE",
            "no OBSERVE event class declared".to_string(),
        ),
        Some(&(v, line)) => {
            if consts.iter().any(|(n, &(o, _))| n != "OBSERVE" && o >= v) {
                flag(
                    report,
                    line,
                    "OBSERVE",
                    format!("OBSERVE ({v}) is not the strict maximum class"),
                );
            }
        }
    }
    // Usage resolution: every `class::X` (X all-caps) across the
    // workspace must be declared, and every declared class used.
    let mut used: BTreeSet<String> = BTreeSet::new();
    for sf in files {
        let ts = sf.toks();
        for (k, t) in ts.iter().enumerate() {
            if t.is_ident("class")
                && ts.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && ts.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                if let Some(name) = ts.get(k + 3).filter(|t| {
                    t.kind == TokKind::Ident
                        && t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                }) {
                    used.insert(name.text.clone());
                    if !consts.is_empty() && !consts.contains_key(&name.text) {
                        report.findings.push(Finding {
                            rule: "event-class-order",
                            file: sf.rel.clone(),
                            line: name.line,
                            item: Some(name.text.clone()),
                            message: format!(
                                "`class::{}` does not name a declared event class",
                                name.text
                            ),
                            hint: "declare the class constant in `mod class` with an \
                                   explicit position in the pop order",
                        });
                    }
                }
            }
        }
    }
    for (name, (_, line)) in &consts {
        if !used.contains(name) {
            flag(
                report,
                *line,
                name,
                format!("event class `{name}` is declared but never pushed"),
            );
        }
    }
}

/// `scenario-docs`: every scenario in `REGISTRY` must be catalogued in
/// docs/SCENARIOS.md (as a backticked name), and every backticked `##`
/// heading in the catalogue must name a registered scenario — the
/// registry and its documentation cannot drift apart silently.
fn scenario_docs(files: &[SourceFile], root: &Path, report: &mut Report) {
    let Some(f) = files.iter().find(|f| f.rel == SCENARIO_RS) else {
        return;
    };
    let toks = f.toks();
    let Some(reg) = toks.iter().position(|t| t.is_ident("REGISTRY")) else {
        return;
    };
    // Names appear as `name: "..."` field inits after the REGISTRY
    // token; collect them until the array's closing `]` at depth 0.
    let mut names: Vec<(String, u32)> = Vec::new();
    let mut i = reg;
    // Advance to the opening `[` of the array literal (skip the type's
    // `&[Scenario]` brackets by waiting for `= & [`).
    while i < toks.len() && !(toks[i].is_punct('=')) {
        i += 1;
    }
    let mut depth = 0usize;
    let mut entered = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
            entered = true;
        } else if t.is_punct(']') {
            depth -= 1;
            if entered && depth == 0 {
                break;
            }
        } else if t.is_ident("name")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Str)
        {
            names.push((toks[i + 2].text.clone(), toks[i + 2].line));
        }
        i += 1;
    }
    report.checked.scenarios = names.len();
    let doc_path = root.join(SCENARIOS_MD);
    let doc = match std::fs::read_to_string(&doc_path) {
        Ok(d) => d,
        Err(_) => {
            report.findings.push(Finding {
                rule: "scenario-docs",
                file: SCENARIOS_MD.to_string(),
                line: 0,
                item: None,
                message: format!(
                    "{SCENARIOS_MD} is missing but REGISTRY has {} scenarios",
                    names.len()
                ),
                hint: "document every registered scenario in docs/SCENARIOS.md",
            });
            return;
        }
    };
    for (name, line) in &names {
        if !doc.contains(&format!("`{name}`")) {
            report.findings.push(Finding {
                rule: "scenario-docs",
                file: SCENARIO_RS.to_string(),
                line: *line,
                item: Some(name.clone()),
                message: format!("scenario `{name}` is not documented in {SCENARIOS_MD}"),
                hint: "add a `## `name`` section to docs/SCENARIOS.md (params, \
                       repro command, artifact path) or remove the registry entry",
            });
        }
    }
    // Reverse direction: headings must name registered scenarios.
    let registered: BTreeSet<&str> = names.iter().map(|(n, _)| n.as_str()).collect();
    for (idx, line) in doc.lines().enumerate() {
        let Some(rest) = line.strip_prefix("## `") else {
            continue;
        };
        let Some(name) = rest.split('`').next() else {
            continue;
        };
        if !registered.contains(name) {
            report.findings.push(Finding {
                rule: "scenario-docs",
                file: SCENARIOS_MD.to_string(),
                line: (idx + 1) as u32,
                item: Some(name.to_string()),
                message: format!("documented scenario `{name}` is not in REGISTRY"),
                hint: "register the scenario in crates/sweep/src/scenario.rs or \
                       drop the stale section",
            });
        }
    }
}

/// One parsed `pub fn` with a `&mut self` receiver in ups-obs.
struct ObsMethod {
    file: usize,
    name: String,
    line: u32,
    /// Token range of the body.
    body: (usize, usize),
    gated: bool,
}

/// `obs-off-gating`: every public recording hook in ups-obs must be a
/// no-op when the `off` feature is enabled — directly (its body tests
/// `COMPILED` / `enabled()`) or transitively (it delegates to a gated
/// hook). This is the zero-overhead-when-off contract as a source
/// check: with it, `--features off` provably cannot change behavior,
/// which is what lets telemetry stay compiled into release builds.
fn obs_off_gating(files: &[SourceFile], report: &mut Report) {
    let mut methods: Vec<ObsMethod> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !f.rel.starts_with(OBS_PREFIX) {
            continue;
        }
        let toks = f.toks();
        let mut i = 0;
        while i < toks.len() {
            if !toks[i].is_ident("pub") {
                i += 1;
                continue;
            }
            // Optional `pub(crate)` style visibility.
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                while j < toks.len() && !toks[j].is_punct(')') {
                    j += 1;
                }
                j += 1;
            }
            if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
                i += 1;
                continue;
            }
            let Some(name_tok) = toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) else {
                i = j + 1;
                continue;
            };
            // Parameter list.
            let mut k = j + 2;
            if !toks.get(k).is_some_and(|t| t.is_punct('(')) {
                i = k;
                continue;
            }
            let params_start = k;
            let mut depth = 0usize;
            while k < toks.len() {
                if toks[k].is_punct('(') {
                    depth += 1;
                } else if toks[k].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            let params = &toks[params_start..=k.min(toks.len() - 1)];
            let mut_self = params
                .windows(2)
                .any(|w| w[0].is_ident("mut") && w[1].is_ident("self"));
            // Body: the next `{` after the params (skipping `-> Type`).
            let mut b = k + 1;
            while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
                b += 1;
            }
            if !mut_self || !toks.get(b).is_some_and(|t| t.is_punct('{')) {
                i = b;
                continue;
            }
            let body_start = b + 1;
            let mut depth = 1usize;
            let mut e = body_start;
            while e < toks.len() && depth > 0 {
                if toks[e].is_punct('{') {
                    depth += 1;
                } else if toks[e].is_punct('}') {
                    depth -= 1;
                }
                e += 1;
            }
            let gated = toks[body_start..e]
                .iter()
                .any(|t| t.is_ident("COMPILED") || t.is_ident("enabled"));
            methods.push(ObsMethod {
                file: fi,
                name: name_tok.text.clone(),
                line: name_tok.line,
                body: (body_start, e),
                gated,
            });
            i = e;
        }
    }
    // Fixed point: a method delegating to a gated method is gated.
    let names: Vec<String> = methods.iter().map(|m| m.name.clone()).collect();
    loop {
        let mut changed = false;
        for mi in 0..methods.len() {
            if methods[mi].gated {
                continue;
            }
            let (lo, hi) = methods[mi].body;
            let toks = files[methods[mi].file].toks();
            let delegates = toks[lo..hi].windows(3).any(|w| {
                w[0].is_ident("self")
                    && w[1].is_punct('.')
                    && w[2].kind == TokKind::Ident
                    && names
                        .iter()
                        .enumerate()
                        .any(|(other, n)| methods[other].gated && *n == w[2].text)
            });
            if delegates {
                methods[mi].gated = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let hooks: Vec<&ObsMethod> = methods
        .iter()
        .filter(|m| HOOK_VERBS.contains(&m.name.as_str()))
        .collect();
    report.checked.obs_hooks = hooks.len();
    for m in hooks {
        if !m.gated {
            report.findings.push(Finding {
                rule: "obs-off-gating",
                file: files[m.file].rel.clone(),
                line: m.line,
                item: Some(m.name.clone()),
                message: format!("recording hook `{}` has no compiled-out no-op twin", m.name),
                hint: "guard the body on `self.enabled()` / `COMPILED`, or \
                       delegate to a hook that does — the `off` feature must \
                       erase every recording path",
            });
        }
    }
}
