//! Rule families. `tokens` matches banned-API patterns on single
//! files; `structure` correlates contracts across files and documents.

pub mod structure;
pub mod tokens;
