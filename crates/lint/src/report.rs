//! Findings, the machine-readable JSON report, and the human table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, kebab-case (e.g. `hash-collections`).
    pub rule: &'static str,
    /// Path relative to the lint root, `/`-separated.
    pub file: String,
    /// 1-based line; 0 when the finding is file-scoped.
    pub line: u32,
    /// Optional item name (fn, constant, scenario) the finding is about.
    pub item: Option<String>,
    /// What is wrong.
    pub message: String,
    /// How to fix or justify it.
    pub hint: &'static str,
}

/// Counts of what the structural rules actually verified — the self-run
/// test asserts these so "clean" can never silently mean "the anchors
/// moved and nothing was checked".
#[derive(Debug, Default, Clone)]
pub struct Checked {
    pub files_scanned: usize,
    pub event_classes: usize,
    pub scenarios: usize,
    pub obs_hooks: usize,
    pub unsafe_blocks: usize,
    pub suppressions_used: usize,
}

/// The full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
    pub checked: Checked,
}

impl Report {
    /// True when no findings survived suppression.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic order: by file, then line, then rule.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Render the human-facing table: one `file:line  rule  message`
    /// row per finding with the remediation hint beneath, then a
    /// summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .findings
            .iter()
            .map(|f| f.file.len() + 1 + digits(f.line))
            .max()
            .unwrap_or(0);
        for f in &self.findings {
            let loc = format!("{}:{}", f.file, f.line);
            let _ = writeln!(out, "{loc:<width$}  [{}] {}", f.rule, f.message);
            let _ = writeln!(out, "{:<width$}  fix: {}", "", f.hint);
        }
        let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
        for f in &self.findings {
            *by_rule.entry(f.rule).or_insert(0) += 1;
        }
        if !by_rule.is_empty() {
            let _ = writeln!(out);
            for (rule, n) in &by_rule {
                let _ = writeln!(out, "  {n:>3} × {rule}");
            }
        }
        let _ = writeln!(
            out,
            "{} finding(s), {} suppressed · {} files · checked: {} event classes, \
             {} scenarios, {} obs hooks, {} unsafe blocks",
            self.findings.len(),
            self.suppressed,
            self.checked.files_scanned,
            self.checked.event_classes,
            self.checked.scenarios,
            self.checked.obs_hooks,
            self.checked.unsafe_blocks,
        );
        out
    }

    /// The machine-readable JSON report (`"kind": "lint"`), written
    /// with the same hand-rolled escaping discipline as the sweep
    /// artifacts: key order fixed, findings pre-sorted, no floats.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"kind\": \"lint\",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(
                out,
                "\"rule\": {}, \"file\": {}, \"line\": {}",
                json_str(f.rule),
                json_str(&f.file),
                f.line
            );
            if let Some(item) = &f.item {
                let _ = write!(out, ", \"item\": {}", json_str(item));
            }
            let _ = write!(
                out,
                ", \"message\": {}, \"hint\": {}}}",
                json_str(&f.message),
                json_str(f.hint)
            );
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        let c = &self.checked;
        let _ = write!(
            out,
            "  \"suppressed\": {},\n  \"checked\": {{\"files_scanned\": {}, \
             \"event_classes\": {}, \"scenarios\": {}, \"obs_hooks\": {}, \
             \"unsafe_blocks\": {}, \"suppressions_used\": {}}}\n}}\n",
            self.suppressed,
            c.files_scanned,
            c.event_classes,
            c.scenarios,
            c.obs_hooks,
            c.unsafe_blocks,
            c.suppressions_used,
        );
        out
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: &'static str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            item: None,
            message: "msg".to_string(),
            hint: "hint",
        }
    }

    #[test]
    fn sort_is_total_and_render_mentions_each() {
        let mut r = Report {
            findings: vec![
                finding("b.rs", 2, "wall-clock"),
                finding("a.rs", 9, "hash-collections"),
                finding("b.rs", 2, "ambient-entropy"),
            ],
            ..Report::default()
        };
        r.sort();
        assert_eq!(r.findings[0].file, "a.rs");
        assert_eq!(r.findings[1].rule, "ambient-entropy");
        let table = r.render();
        assert!(table.contains("a.rs:9"));
        assert!(table.contains("3 finding(s)"));
    }

    #[test]
    fn json_escapes_and_is_stable() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: "unsafe-safety-comment",
            file: "x.rs".into(),
            line: 3,
            item: Some("we\"ird".into()),
            message: "line1\nline2".into(),
            hint: "h",
        });
        let j = r.to_json();
        assert!(j.contains("\"kind\": \"lint\""));
        assert!(j.contains("we\\\"ird"));
        assert!(j.contains("line1\\nline2"));
        assert_eq!(j, r.to_json());
    }
}
