//! `lint.toml`: the committed suppression allowlist and budgets.
//!
//! The parser accepts the small TOML subset the file needs — `[[allow]]`
//! array-of-tables, the `[budgets.unwrap]` table, `key = "string"` and
//! `key = integer` pairs, quoted keys, and `#` comments. Two policies
//! are enforced at load time, not merely documented:
//!
//! * every `[[allow]]` entry must carry a non-empty `justification`
//!   (finding `unjustified-suppression` otherwise), and
//! * an entry that suppresses nothing is itself flagged
//!   (`stale-suppression`), so the allowlist can only shrink as hazards
//!   are fixed.

use std::collections::BTreeMap;

/// One `[[allow]]` suppression entry.
#[derive(Debug, Default, Clone)]
pub struct Allow {
    /// Rule id the entry suppresses (e.g. `wall-clock`).
    pub rule: String,
    /// Relative path the entry applies to, `/`-separated.
    pub path: String,
    /// Optional item name (e.g. a method) narrowing the suppression.
    pub item: Option<String>,
    /// Why the site is safe. Required, non-empty.
    pub justification: String,
    /// 1-based line of the entry header in `lint.toml`.
    pub line: u32,
}

/// Parsed configuration.
#[derive(Debug, Default)]
pub struct Config {
    pub allows: Vec<Allow>,
    /// Per-file `unwrap()/expect()` ceilings for hot-path modules.
    pub unwrap_budgets: BTreeMap<String, u32>,
}

impl Config {
    /// Load `<root>/lint.toml` if present; an absent file is an empty
    /// config (the lint then runs with zero suppressions).
    pub fn load(root: &std::path::Path) -> Result<Config, String> {
        let path = root.join("lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }
}

enum Section {
    None,
    Allow(usize),
    UnwrapBudgets,
}

/// Parse the `lint.toml` text.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            cfg.allows.push(Allow {
                line: lineno,
                ..Allow::default()
            });
            section = Section::Allow(cfg.allows.len() - 1);
            continue;
        }
        if line == "[budgets.unwrap]" {
            section = Section::UnwrapBudgets;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown section `{line}`"));
        }
        let Some((key, value)) = split_kv(&line) else {
            return Err(format!("lint.toml:{lineno}: expected `key = value`"));
        };
        match &section {
            Section::None => {
                return Err(format!(
                    "lint.toml:{lineno}: key `{key}` outside any section"
                ));
            }
            Section::Allow(i) => {
                let entry = &mut cfg.allows[*i];
                let v = unquote(&value)
                    .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` wants a quoted string"))?;
                match key.as_str() {
                    "rule" => entry.rule = v,
                    "path" => entry.path = v,
                    "item" => entry.item = Some(v),
                    "justification" => entry.justification = v,
                    other => {
                        return Err(format!(
                            "lint.toml:{lineno}: unknown [[allow]] key `{other}`"
                        ));
                    }
                }
            }
            Section::UnwrapBudgets => {
                let path = unquote(&key).unwrap_or(key);
                let n: u32 = value.parse().map_err(|_| {
                    format!("lint.toml:{lineno}: budget for `{path}` must be an integer")
                })?;
                cfg.unwrap_budgets.insert(path, n);
            }
        }
    }
    for a in &cfg.allows {
        if a.rule.is_empty() || a.path.is_empty() {
            return Err(format!(
                "lint.toml:{}: [[allow]] needs both `rule` and `path`",
                a.line
            ));
        }
    }
    Ok(cfg)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str) -> Option<(String, String)> {
    // Split on the first `=` outside quotes.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => {
                return Some((
                    line[..i].trim().to_string(),
                    line[i + 1..].trim().to_string(),
                ));
            }
            _ => {}
        }
    }
    None
}

fn unquote(v: &str) -> Option<String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allows_and_budgets() {
        let cfg = parse(
            r#"
# header comment
[[allow]]
rule = "wall-clock"
path = "src/bin/sweep.rs"
justification = "perf timing" # trailing comment

[[allow]]
rule = "obs-off-gating"
path = "crates/obs/src/hist.rs"
item = "record"
justification = "gated by caller"

[budgets.unwrap]
"crates/net/src/link.rs" = 14
"crates/sim/src/queue.rs" = 9
"#,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 2);
        assert_eq!(cfg.allows[0].rule, "wall-clock");
        assert_eq!(cfg.allows[1].item.as_deref(), Some("record"));
        assert_eq!(cfg.unwrap_budgets["crates/net/src/link.rs"], 14);
        assert_eq!(cfg.unwrap_budgets.len(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("[[allow]]\nrule: nope\n").is_err());
        assert!(parse("stray = \"key\"\n").is_err());
        assert!(parse("[mystery]\n").is_err());
        assert!(parse("[[allow]]\njustification = \"no rule or path\"\n").is_err());
        assert!(parse("[budgets.unwrap]\n\"a.rs\" = \"not a number\"\n").is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg =
            parse("[[allow]]\nrule = \"r\"\npath = \"p#1.rs\"\njustification = \"has # inside\"\n")
                .unwrap();
        assert_eq!(cfg.allows[0].path, "p#1.rs");
        assert_eq!(cfg.allows[0].justification, "has # inside");
    }
}
