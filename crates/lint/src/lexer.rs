//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The rules in this crate match on *token* sequences, never on raw
//! text, so a `HashMap` inside a string literal, a doc comment, or a
//! doctest can never produce a false positive: doc comments (and the
//! doctests they contain) are comments to this lexer, string and char
//! literals become single opaque tokens, and nested block comments are
//! tracked to their true end. Comments are not discarded — they are
//! collected per line so rules can check for adjacent `// SAFETY:` and
//! `// lint: ...` annotations.
//!
//! This is not a full Rust lexer (no float-suffix splitting, no
//! `shebang` handling, no edition-sensitive keyword logic); it is exact
//! for the subset the rules need: identifier, punctuation, string
//! (including raw/byte strings), char literal, lifetime, and number
//! tokens, each carrying a 1-based line.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, ...).
    Ident,
    /// Single punctuation character (`:`, `{`, `#`, ...).
    Punct,
    /// String literal (regular, raw, byte, or raw-byte); `text` is the
    /// literal's *content*, without quotes or hashes.
    Str,
    /// Character literal; `text` is the raw content between quotes.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`, `'static`); `text` excludes the tick.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub line: u32,
    pub kind: TokKind,
    pub text: String,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes()[0] as char == c && self.text.len() == 1
    }
}

/// One comment (line or block) with its inclusive line span. Line
/// comments are one entry per `//`; a block comment spanning several
/// lines is a single entry covering all of them.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// A lexed source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// All comment text attached to lines `[lo, hi]` (inclusive),
    /// concatenated. Used for adjacency checks like `// SAFETY:`.
    pub fn comments_in(&self, lo: u32, hi: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.end_line >= lo && c.line <= hi {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }

    /// True when some comment covering line `lo..=hi` contains `needle`.
    pub fn comment_contains(&self, lo: u32, hi: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.end_line >= lo && c.line <= hi && c.text.contains(needle))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs are closed at end of file (the compiler, not the lint,
/// owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut out = Lexed::default();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (chars[i + 1] == '/' || chars[i + 1] == '*') {
            let start_line = line;
            let mut text = String::new();
            if chars[i + 1] == '/' {
                while i < n && chars[i] != '\n' {
                    text.push(chars[i]);
                    i += 1;
                }
            } else {
                // Block comment; Rust block comments nest.
                let mut depth = 0usize;
                while i < n {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        text.push_str("/*");
                        i += 2;
                        continue;
                    }
                    if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        text.push_str("*/");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    bump_line!(chars[i]);
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text,
            });
            continue;
        }
        // Raw strings and byte strings: r"..", r#".."#, b"..", br#".."#.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut raw = c == 'r';
            if c == 'b' && j < n && chars[j] == 'r' {
                raw = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            // A string opener needs a quote here; non-raw byte strings
            // take no hashes. `r#foo` (raw ident) falls through to the
            // identifier branch below.
            if j < n && chars[j] == '"' && (raw || hashes == 0) {
                let start_line = line;
                j += 1; // past the opening quote
                let mut text = String::new();
                if raw {
                    // Scan to `"` followed by `hashes` hashes.
                    'raw_scan: while j < n {
                        if chars[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && k < n && chars[k] == '#' {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'raw_scan;
                            }
                        }
                        bump_line!(chars[j]);
                        text.push(chars[j]);
                        j += 1;
                    }
                } else {
                    // Plain byte string with escapes.
                    while j < n && chars[j] != '"' {
                        if chars[j] == '\\' && j + 1 < n {
                            bump_line!(chars[j + 1]);
                            text.push(chars[j]);
                            text.push(chars[j + 1]);
                            j += 2;
                            continue;
                        }
                        bump_line!(chars[j]);
                        text.push(chars[j]);
                        j += 1;
                    }
                    j += 1; // closing quote
                }
                out.tokens.push(Tok {
                    line: start_line,
                    kind: TokKind::Str,
                    text,
                });
                i = j;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let start_line = line;
            let mut text = String::new();
            let mut j = i + 1;
            while j < n && chars[j] != '"' {
                if chars[j] == '\\' && j + 1 < n {
                    bump_line!(chars[j + 1]);
                    text.push(chars[j]);
                    text.push(chars[j + 1]);
                    j += 2;
                    continue;
                }
                bump_line!(chars[j]);
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                line: start_line,
                kind: TokKind::Str,
                text,
            });
            i = j + 1;
            continue;
        }
        // Char literal vs lifetime. After a tick: an escape or a
        // single char followed by a closing tick is a char literal;
        // otherwise it is a lifetime.
        if c == '\'' {
            let j = i + 1;
            let is_char = j < n && (chars[j] == '\\' || (j + 1 < n && chars[j + 1] == '\''));
            if is_char {
                let mut text = String::new();
                let mut j = i + 1;
                if chars[j] == '\\' {
                    text.push(chars[j]);
                    j += 1;
                    // Consume the escape body up to the closing tick,
                    // handling \u{...}.
                    if j < n && chars[j] == 'u' {
                        while j < n && chars[j] != '\'' {
                            text.push(chars[j]);
                            j += 1;
                        }
                    } else if j < n {
                        text.push(chars[j]);
                        j += 1;
                    }
                } else {
                    text.push(chars[j]);
                    j += 1;
                }
                // Closing tick.
                if j < n && chars[j] == '\'' {
                    j += 1;
                }
                out.tokens.push(Tok {
                    line,
                    kind: TokKind::Char,
                    text,
                });
                i = j;
                continue;
            }
            // Lifetime.
            let mut j = i + 1;
            let mut text = String::new();
            while j < n && is_ident_continue(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                line,
                kind: TokKind::Lifetime,
                text,
            });
            i = j.max(i + 1);
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            let mut text = String::new();
            while j < n && (is_ident_continue(chars[j]) || chars[j] == '.') {
                // Stop a `0..10` range from merging into one token.
                if chars[j] == '.' && j + 1 < n && chars[j + 1] == '.' {
                    break;
                }
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                line,
                kind: TokKind::Num,
                text,
            });
            i = j;
            continue;
        }
        // Identifier / keyword (including raw identifiers `r#type`).
        if is_ident_start(c) {
            let mut j = i;
            let mut text = String::new();
            if c == 'r'
                && i + 1 < n
                && chars[i + 1] == '#'
                && i + 2 < n
                && is_ident_start(chars[i + 2])
            {
                j = i + 2; // strip the r# prefix
            }
            while j < n && is_ident_continue(chars[j]) {
                text.push(chars[j]);
                j += 1;
            }
            out.tokens.push(Tok {
                line,
                kind: TokKind::Ident,
                text,
            });
            i = j;
            continue;
        }
        // Anything else: single punctuation char.
        out.tokens.push(Tok {
            line,
            kind: TokKind::Punct,
            text: c.to_string(),
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            /// HashMap in a doc comment with a doctest:
            /// ```
            /// use std::collections::HashMap;
            /// ```
            let s = "HashMap::new()";
            let r = r#"HashMap "quoted" inside raw"#;
            let real = BTreeMap::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"BTreeMap".to_string()));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let q = '\"'; let n = 'x'; }";
        let lx = lex(src);
        let lifetimes: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = lx.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn line_numbers_track_strings_and_blocks() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = unsafe_marker;\n";
        let lx = lex(src);
        let b = lx
            .tokens
            .iter()
            .find(|t| t.is_ident("unsafe_marker"))
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn comments_carry_spans() {
        let src = "code();\n/* spans\nthree\nlines */\nmore(); // SAFETY: trailing\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert_eq!((lx.comments[0].line, lx.comments[0].end_line), (2, 4));
        assert!(lx.comment_contains(5, 5, "SAFETY:"));
    }

    #[test]
    fn raw_ident_is_stripped() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lx = lex("for i in 0..10 { x[i] = 1.5e3; }");
        let nums: Vec<_> = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3"]);
    }
}
