//! Workspace source discovery and file classification.
//!
//! The walker collects every `.rs` file under the root in sorted path
//! order (determinism of the report is itself a byte-identity
//! artifact), skipping `target/`, VCS metadata, and the lint's own
//! known-bad fixture corpus. Each file carries a [`Tier`] derived from
//! its path — the rules key their applicability on it — plus a map of
//! the lines occupied by `#[cfg(test)]` items, so test-only code can be
//! exempted from production-path rules.

use crate::lexer::{lex, Lexed, Tok};
use std::path::{Path, PathBuf};

/// Determinism tier of a source file, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Determinism-critical: code on the artifact path. `crates/sim`,
    /// `crates/net`, `crates/sched`, `crates/sweep`, `crates/obs`.
    Core,
    /// Perf tooling where wall-clock reads are the point:
    /// `crates/bench`.
    Bench,
    /// Offline dependency shims (`shims/`): tooling tier, wall-clock
    /// allowed (the criterion shim *is* a timer).
    Shim,
    /// Test, bench-harness, and example code: any path with a `tests`,
    /// `benches`, or `examples` component, plus `testutil` modules.
    Test,
    /// Everything else (`crates/core`, `crates/topo`, bins, ...).
    Other,
}

/// One discovered source file, lexed and classified.
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel: String,
    pub tier: Tier,
    pub lexed: Lexed,
    /// Half-open index ranges into `lexed.tokens` occupied by
    /// `#[cfg(test)]` items.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// True when token index `i` sits inside a `#[cfg(test)]` item or
    /// the whole file is test-tier.
    pub fn is_test_tok(&self, i: usize) -> bool {
        self.tier == Tier::Test || self.test_spans.iter().any(|&(lo, hi)| i >= lo && i < hi)
    }

    /// Shorthand for the token slice.
    pub fn toks(&self) -> &[Tok] {
        &self.lexed.tokens
    }
}

/// Classify a relative path into its tier.
pub fn tier_of(rel: &str) -> Tier {
    let comps: Vec<&str> = rel.split('/').collect();
    if comps
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples")
        || rel.ends_with("testutil.rs")
    {
        return Tier::Test;
    }
    if comps.first() == Some(&"shims") {
        return Tier::Shim;
    }
    match (comps.first(), comps.get(1)) {
        (Some(&"crates"), Some(&"bench")) => Tier::Bench,
        (Some(&"crates"), Some(&"sim" | &"net" | &"sched" | &"sweep" | &"obs")) => Tier::Core,
        _ => Tier::Other,
    }
}

/// Directories never descended into. `fixtures` holds the lint's own
/// deliberately-bad test corpus.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | ".github" | "fixtures")
}

/// Collect every `.rs` file under `root`, sorted by relative path.
pub fn walk(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&p)?;
        let lexed = lex(&src);
        let test_spans = find_test_spans(&lexed.tokens);
        out.push(SourceFile {
            tier: tier_of(&rel),
            rel,
            lexed,
            test_spans,
        });
    }
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Find the token spans of `#[cfg(test)]` items: the attribute, any
/// further stacked attributes, then the item itself up to its matching
/// close brace (or trailing semicolon for brace-less items).
fn find_test_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let start = i;
            // Skip this attribute and any stacked ones.
            let mut j = skip_attr(toks, i);
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attr(toks, j);
            }
            // Consume the item: to the matching `}` of its first brace,
            // or to `;` if none opens first.
            let mut depth = 0usize;
            let mut opened = false;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('{') {
                    depth += 1;
                    opened = true;
                } else if t.is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        j += 1;
                        break;
                    }
                } else if t.is_punct(';') && !opened {
                    j += 1;
                    break;
                }
                j += 1;
            }
            spans.push((start, j));
            i = j;
            continue;
        }
        i += 1;
    }
    spans
}

/// True when tokens at `i` spell exactly `#[cfg(test)]`. Deliberately
/// exact: `#[cfg(not(test))]` or `#[cfg(all(test, ...))]` must NOT be
/// treated as test-only code.
fn is_cfg_test_attr(toks: &[Tok], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct('#'))
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
        && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 4).is_some_and(|t| t.is_ident("test"))
        && toks.get(i + 5).is_some_and(|t| t.is_punct(')'))
        && toks.get(i + 6).is_some_and(|t| t.is_punct(']'))
}

/// Index just past an attribute starting at `#` token `i`.
fn skip_attr(toks: &[Tok], i: usize) -> usize {
    debug_assert!(toks[i].is_punct('#'));
    let mut j = i + 1;
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_follow_paths() {
        assert_eq!(tier_of("crates/sim/src/queue.rs"), Tier::Core);
        assert_eq!(tier_of("crates/sweep/src/artifact.rs"), Tier::Core);
        assert_eq!(tier_of("crates/bench/src/runners.rs"), Tier::Bench);
        assert_eq!(tier_of("crates/bench/benches/event_core.rs"), Tier::Test);
        assert_eq!(tier_of("crates/net/src/testutil.rs"), Tier::Test);
        assert_eq!(tier_of("shims/criterion/src/lib.rs"), Tier::Shim);
        assert_eq!(tier_of("tests/sweep_diff.rs"), Tier::Test);
        assert_eq!(tier_of("src/bin/sweep.rs"), Tier::Other);
        assert_eq!(tier_of("crates/topo/src/fattree.rs"), Tier::Other);
    }

    #[test]
    fn cfg_test_items_are_spanned() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
                   fn prod2() {}\n";
        let lexed = lex(src);
        let spans = find_test_spans(&lexed.tokens);
        assert_eq!(spans.len(), 1);
        let sf = SourceFile {
            rel: "crates/net/src/x.rs".into(),
            tier: Tier::Core,
            lexed,
            test_spans: spans,
        };
        // The second `unwrap` is inside the test span; the first is not.
        let unwraps: Vec<usize> = sf
            .toks()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!sf.is_test_tok(unwraps[0]));
        assert!(sf.is_test_tok(unwraps[1]));
        // prod2 after the module is production code again.
        let p2 = sf.toks().iter().position(|t| t.is_ident("prod2")).unwrap();
        assert!(!sf.is_test_tok(p2));
    }

    #[test]
    fn stacked_attrs_and_braceless_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::collections::HashMap;\nfn f() {}\n";
        let lexed = lex(src);
        let spans = find_test_spans(&lexed.tokens);
        assert_eq!(spans.len(), 1);
        let hm = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("HashMap"))
            .unwrap();
        assert!(hm >= spans[0].0 && hm < spans[0].1);
        let f = lexed.tokens.iter().position(|t| t.is_ident("f")).unwrap();
        assert!(f >= spans[0].1);
    }
}
