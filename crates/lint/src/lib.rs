//! ups-lint: a source-level determinism lint for the UPS workspace.
//!
//! The whole byte-identity story — every sweep artifact identical for
//! any `--jobs N`, any rerun, any machine — rests on invariants that
//! `rustc` cannot see: no hash-ordered iteration on the artifact path,
//! no wall-clock or ambient entropy in simulation code, chaos events
//! popping before data-plane events, observability erased by the `off`
//! feature. This crate checks those invariants *statically*, over the
//! source text, so a violation is caught in CI before it costs a
//! baseline-diff debugging session (see CHANGES.md for the wire-fast-
//! path RNG incident that motivated it: 65 diffing baselines from one
//! untracked draw).
//!
//! Design constraints:
//!
//! * **Zero dependencies.** The lint must never be blocked by a compile
//!   error in the code it judges, and the container is offline. The
//!   lexer in [`lexer`] is hand-rolled; analysis is token-level.
//! * **Deterministic output.** The report is itself an artifact: files
//!   walked in sorted order, findings sorted (file, line, rule), JSON
//!   with fixed key order. Two runs over the same tree are
//!   byte-identical.
//! * **Suppressions are arguments.** An in-source annotation or a
//!   `lint.toml` entry must say *why* the site is safe; entries that
//!   suppress nothing or carry no justification are themselves
//!   findings, so the allowlist can only shrink.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use config::Config;
use report::{Finding, Report};
use std::path::Path;

/// Lint the workspace rooted at `root` using `<root>/lint.toml` (absent
/// file = no suppressions). Errors are I/O or config-parse failures —
/// the CLI maps them to exit code 2.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let cfg = Config::load(root)?;
    lint_with(root, &cfg)
}

/// Lint with an explicit configuration.
pub fn lint_with(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files = walk::walk(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut report = Report::default();
    report.checked.files_scanned = files.len();
    rules::tokens::run(&files, cfg, &mut report);
    rules::structure::run(&files, root, &mut report);
    apply_allows(cfg, &mut report);
    report.sort();
    Ok(report)
}

/// Apply the `[[allow]]` suppressions, then emit hygiene findings for
/// entries that are unjustified or suppress nothing.
fn apply_allows(cfg: &Config, report: &mut Report) {
    let mut hits = vec![0usize; cfg.allows.len()];
    report.findings.retain(|f| {
        for (i, a) in cfg.allows.iter().enumerate() {
            let rule_match = a.rule == f.rule;
            let path_match = a.path == f.file;
            let item_match = match (&a.item, &f.item) {
                (None, _) => true,
                (Some(want), Some(have)) => want == have,
                (Some(_), None) => false,
            };
            if rule_match && path_match && item_match && !a.justification.trim().is_empty() {
                hits[i] += 1;
                return false;
            }
        }
        true
    });
    report.suppressed = hits.iter().sum();
    report.checked.suppressions_used = hits.iter().filter(|&&h| h > 0).count();
    for (i, a) in cfg.allows.iter().enumerate() {
        if a.justification.trim().is_empty() {
            report.findings.push(Finding {
                rule: "unjustified-suppression",
                file: "lint.toml".to_string(),
                line: a.line,
                item: Some(format!("{} @ {}", a.rule, a.path)),
                message: "[[allow]] entry has no justification".to_string(),
                hint: "every suppression must argue why the site is safe; an \
                       entry without a justification suppresses nothing",
            });
        } else if hits[i] == 0 {
            report.findings.push(Finding {
                rule: "stale-suppression",
                file: "lint.toml".to_string(),
                line: a.line,
                item: Some(format!("{} @ {}", a.rule, a.path)),
                message: "[[allow]] entry matches no finding".to_string(),
                hint: "the hazard was fixed or moved — delete the entry so the \
                       allowlist tracks reality",
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Allow;

    fn finding(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line: 7,
            item: None,
            message: "m".into(),
            hint: "h",
        }
    }

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let cfg = Config {
            allows: vec![Allow {
                rule: "wall-clock".into(),
                path: "src/bin/sweep.rs".into(),
                item: None,
                justification: "perf harness timing".into(),
                line: 1,
            }],
            ..Config::default()
        };
        let mut r = Report::default();
        r.findings.push(finding("wall-clock", "src/bin/sweep.rs"));
        r.findings
            .push(finding("wall-clock", "crates/sim/src/lib.rs"));
        apply_allows(&cfg, &mut r);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].file, "crates/sim/src/lib.rs");
    }

    #[test]
    fn unjustified_allow_is_flagged_and_inert() {
        let cfg = Config {
            allows: vec![Allow {
                rule: "wall-clock".into(),
                path: "src/bin/sweep.rs".into(),
                item: None,
                justification: "  ".into(),
                line: 4,
            }],
            ..Config::default()
        };
        let mut r = Report::default();
        r.findings.push(finding("wall-clock", "src/bin/sweep.rs"));
        apply_allows(&cfg, &mut r);
        // The original finding survives AND the entry is flagged.
        assert_eq!(r.findings.len(), 2);
        assert!(r
            .findings
            .iter()
            .any(|f| f.rule == "unjustified-suppression"));
    }

    #[test]
    fn stale_allow_is_flagged() {
        let cfg = Config {
            allows: vec![Allow {
                rule: "hash-collections".into(),
                path: "crates/sim/src/gone.rs".into(),
                item: None,
                justification: "was needed once".into(),
                line: 9,
            }],
            ..Config::default()
        };
        let mut r = Report::default();
        apply_allows(&cfg, &mut r);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "stale-suppression");
    }

    #[test]
    fn item_narrowing_is_respected() {
        let cfg = Config {
            allows: vec![Allow {
                rule: "obs-off-gating".into(),
                path: "crates/obs/src/hist.rs".into(),
                item: Some("record".into()),
                justification: "gated by the caller".into(),
                line: 2,
            }],
            ..Config::default()
        };
        let mut r = Report::default();
        let mut f = finding("obs-off-gating", "crates/obs/src/hist.rs");
        f.item = Some("record".into());
        r.findings.push(f);
        let mut g = finding("obs-off-gating", "crates/obs/src/hist.rs");
        g.item = Some("observe".into());
        r.findings.push(g);
        apply_allows(&cfg, &mut r);
        assert_eq!(r.suppressed, 1);
        assert_eq!(r.findings[0].item.as_deref(), Some("observe"));
    }
}
