//! Run every table/figure experiment in sequence at the configured
//! scale. `--full` gives paper-like scale.

use ups_bench::*;

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Universal Packet Scheduling — full experiment suite ({}, jobs: {}, replicates: {})",
        scale.label, scale.jobs, scale.replicates
    );

    // Table 1 and all four figures are sweep-backed: every grid runs on
    // `scale.jobs` worker threads with `scale.replicates` seed
    // replicates per cell (see `ups-sweep`); only the ablations and the
    // congestion-point diagnostic below remain serial single-seed runs.
    print_replay_rows("Table 1: LSTF replayability", &table1(&scale));

    println!("\n=== Figure 1: queueing-delay ratio CDF ===");
    let f1 = fig1_report(&scale);
    // Look the axis points up by value, not position — the axis shape
    // belongs to fig1_ratio_axis(), not to this summary.
    let at_ratio_1 = f1
        .axis
        .xs
        .iter()
        .position(|&x| x == 1.0)
        .expect("fig1 axis covers ratio 1.0");
    for r in &f1.results {
        let ratio1 = &r.points[at_ratio_1];
        println!(
            "{:<10} n={:<8.0} P[ratio<=1]={:.3}±{:.3} median={:.3}±{:.3} p90={:.3}±{:.3}",
            r.series,
            r.scalars[0].mean,
            ratio1.mean,
            ratio1.stddev,
            r.scalars[1].mean,
            r.scalars[1].stddev,
            r.scalars[2].mean,
            r.scalars[2].stddev
        );
    }

    println!("\n=== Figure 2: mean FCT ===");
    for r in &fig2_report(&scale).results {
        println!(
            "{:<12} mean FCT {:.4}±{:.4}s ({:.0}/{:.0} flows completed)",
            r.series, r.scalars[0].mean, r.scalars[0].stddev, r.scalars[1].mean, r.scalars[2].mean
        );
    }

    println!("\n=== Figure 3: tail packet delays ===");
    let f3 = fig3_report(&scale);
    let percentile = |p: f64| {
        f3.axis
            .xs
            .iter()
            .position(|&x| x == p)
            .unwrap_or_else(|| panic!("fig3 axis covers p{p}"))
    };
    let (p99, p999) = (percentile(99.0), percentile(99.9));
    for r in &f3.results {
        println!(
            "{:<14} mean {:.6}s p99 {:.6}±{:.6}s p99.9 {:.6}±{:.6}s",
            r.series,
            r.scalars[0].mean,
            r.points[p99].mean,
            r.points[p99].stddev,
            r.points[p999].mean,
            r.points[p999].stddev
        );
    }

    println!("\n=== Figure 4: fairness convergence (final Jain index) ===");
    let f4 = fig4_report(&scale);
    for r in &f4.results {
        let mid = &r.points[r.points.len() / 2];
        let last = r.points.last().expect("no windows");
        println!(
            "{:<16} jain@{}ms={:.4}±{:.4} jain@{}ms={:.4}±{:.4}",
            r.series,
            r.points.len() / 2 + 1,
            mid.mean,
            mid.stddev,
            r.points.len(),
            last.mean,
            last.stddev
        );
    }

    print_replay_rows("Ablation: preemptive LSTF", &ablation_preempt(&scale));
    print_replay_rows("Ablation: candidate UPSes", &ablation_priority(&scale));
    print_replay_rows("Ablation: LSTF key", &ablation_lstf_key(&scale));

    println!("\n=== Congestion points per packet ===");
    for (topo, hist, mean_slack_us) in congestion_points(&scale) {
        let total: usize = hist.iter().sum();
        print!("{topo:<18} mean slack {mean_slack_us:>8.1}us  ");
        for (k, &n) in hist.iter().enumerate() {
            print!("cp{k}: {:.3}  ", n as f64 / total as f64);
        }
        println!();
    }
}
