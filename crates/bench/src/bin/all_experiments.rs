//! Run every table/figure experiment in sequence at the configured
//! scale. `--full` gives paper-like scale.

use ups_bench::*;

fn main() {
    let scale = Scale::from_args();
    println!(
        "# Universal Packet Scheduling — full experiment suite ({}, jobs: {}, replicates: {})",
        scale.label, scale.jobs, scale.replicates
    );

    // Table 1 is sweep-backed: its grid runs on `scale.jobs` worker
    // threads (see `ups-sweep`); the figures below are serial runners.
    print_replay_rows("Table 1: LSTF replayability", &table1(&scale));

    println!("\n=== Figure 1: queueing-delay ratio CDF ===");
    for (label, cdf) in fig1(&scale) {
        println!(
            "{label:<10} n={:<8} P[ratio<=1]={:.3} median={:.3} p90={:.3}",
            cdf.len(),
            cdf.at(1.0),
            cdf.quantile(0.5),
            cdf.quantile(0.9)
        );
    }

    println!("\n=== Figure 2: mean FCT ===");
    let (_, results) = fig2(&scale);
    for r in &results {
        println!(
            "{:<12} mean FCT {:.4}s ({}/{} flows completed)",
            r.label, r.mean_fct, r.completed.0, r.completed.1
        );
    }

    println!("\n=== Figure 3: tail packet delays ===");
    for r in fig3(&scale) {
        println!(
            "{:<14} mean {:.6}s p99 {:.6}s p99.9 {:.6}s",
            r.label, r.mean, r.p99, r.p999
        );
    }

    println!("\n=== Figure 4: fairness convergence (final Jain index) ===");
    for (label, pts) in fig4(&scale) {
        let last = pts.last().expect("no points");
        let half = &pts[pts.len() / 2];
        println!(
            "{:<16} jain@{}ms={:.4} jain@{}ms={:.4}",
            label,
            pts.len() / 2 + 1,
            half.jain,
            pts.len(),
            last.jain
        );
    }

    print_replay_rows("Ablation: preemptive LSTF", &ablation_preempt(&scale));
    print_replay_rows("Ablation: candidate UPSes", &ablation_priority(&scale));
    print_replay_rows("Ablation: LSTF key", &ablation_lstf_key(&scale));

    println!("\n=== Congestion points per packet ===");
    for (topo, hist, mean_slack_us) in congestion_points(&scale) {
        let total: usize = hist.iter().sum();
        print!("{topo:<18} mean slack {mean_slack_us:>8.1}us  ");
        for (k, &n) in hist.iter().enumerate() {
            print!("cp{k}: {:.3}  ", n as f64 / total as f64);
        }
        println!();
    }
}
