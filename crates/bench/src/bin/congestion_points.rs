//! §2.2 diagnostic — congestion points per packet under the default
//! Random original schedule, per topology. The replay theorems are
//! stated in these terms: ≤2 congestion points ⇒ LSTF replays
//! perfectly; ≥3 ⇒ no UPS can.

use ups_bench::{congestion_points, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Congestion points per packet (scale: {})", scale.label);
    for (topo, hist, mean_slack_us) in congestion_points(&scale) {
        let total: usize = hist.iter().sum();
        print!("{topo:<18} mean slack {mean_slack_us:>8.1}us  ");
        for (k, &n) in hist.iter().enumerate() {
            print!("cp{k}: {:.3}  ", n as f64 / total as f64);
        }
        println!();
    }
}
