//! DESIGN.md ablation — LSTF comparison-key variants: the Appendix D
//! last-bit deadline (default) vs the pure deadline without the local
//! transmission term. With uniform packet sizes they must coincide.

use ups_bench::{ablation_lstf_key, print_replay_rows, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("LSTF key ablation (scale: {})", scale.label);
    let rows = ablation_lstf_key(&scale);
    print_replay_rows("Last-bit vs pure deadline", &rows);
}
