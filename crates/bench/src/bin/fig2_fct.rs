//! Figure 2 — mean flow completion time bucketed by flow size on the
//! default Internet2 topology at 70% utilization; TCP with 5 MB router
//! buffers. Paper means: FIFO 0.288s, SRPT 0.208s, SJF 0.194s,
//! LSTF 0.195s (shape: LSTF ≈ SJF ≈ SRPT ≪ FIFO).
//!
//! A thin client of the `ups-sweep` engine: `--replicates N` runs every
//! scheme at N seeds on `--jobs` workers and reports mean ± stddev per
//! size bucket; JSON/CSV artifacts land under `target/sweep/` (or
//! `--out DIR`) and are byte-identical for every `--jobs` value.

use ups_bench::{fig2_report, print_fig_report, write_fig_artifacts, Scale};

fn main() {
    let (scale, out) = Scale::from_args_with_out();
    let report = fig2_report(&scale);
    print_fig_report(&report);
    println!("\n(bucket rows are mean FCT in seconds; a 0 mean marks a");
    println!("bucket with no completed flows in a replicate)");
    write_fig_artifacts(&report, &out);
}
