//! Figure 2 — mean flow completion time bucketed by flow size on the
//! default Internet2 topology at 70% utilization; TCP with 5 MB router
//! buffers. Paper means: FIFO 0.288s, SRPT 0.208s, SJF 0.194s,
//! LSTF 0.195s (shape: LSTF ≈ SJF ≈ SRPT ≪ FIFO).

use ups_bench::{fig2, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 2 (scale: {})", scale.label);
    let (buckets, results) = fig2(&scale);
    print!("{:<14}", "size(pkts)");
    for r in &results {
        print!(" {:>12}", r.label);
    }
    println!();
    for b in 0..buckets.count() {
        print!("{:<14}", buckets.label(b));
        for r in &results {
            let (mean, n) = r.buckets[b];
            if n == 0 {
                print!(" {:>12}", "-");
            } else {
                print!(" {:>12.5}", mean);
            }
        }
        println!();
    }
    println!();
    for r in &results {
        println!(
            "{:<12} mean FCT {:.4}s over {}/{} completed flows",
            r.label, r.mean_fct, r.completed.0, r.completed.1
        );
    }
}
