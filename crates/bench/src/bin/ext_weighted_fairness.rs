//! §3.3 extension — weighted fairness: "we can also extend the slack
//! assignment heuristic to achieve weighted fairness by using different
//! values of rest for different flows, in proportion to the desired
//! weights". Four long-lived flows share a 1 Gbps bottleneck with
//! weights 4:2:1:1; delivered bytes should split proportionally.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use ups_bench::Scale;
use ups_core::objectives::Scheme;
use ups_core::run_goodput;
use ups_net::{FlowId, TraceLevel};
use ups_sim::{Bandwidth, Dur, Time};
use ups_topo::simple::dumbbell;
use ups_transport::FlowDesc;

fn main() {
    let _scale = Scale::from_args();
    let topo = || {
        dumbbell(
            4,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(20),
            TraceLevel::Delivery,
        )
    };
    let t = topo();
    let flows: Vec<FlowDesc> = (0..4)
        .map(|i| FlowDesc {
            id: FlowId(i),
            src: t.hosts[i as usize],
            dst: t.hosts[4 + i as usize],
            pkts: u64::MAX / 2,
            start: Time::from_micros(i * 13),
            deadline: None,
        })
        .collect();
    drop(t);

    let wanted = [4.0, 2.0, 1.0, 1.0];
    let mut weights = HashMap::new();
    for (i, &w) in wanted.iter().enumerate() {
        weights.insert(FlowId(i as u64), w);
    }
    let scheme = Scheme::LstfVcWeighted {
        base: Bandwidth::mbps(50),
        weights,
    };
    let bytes = run_goodput(topo(), &flows, &scheme, Time::from_millis(30), None);
    let total: u64 = bytes.iter().sum();
    println!("weighted fairness, weights {wanted:?}:");
    for (i, b) in bytes.iter().enumerate() {
        println!(
            "  flow {i}: {:>9} bytes = {:>5.1}% of goodput (target {:>5.1}%)",
            b,
            100.0 * *b as f64 / total as f64,
            100.0 * wanted[i] / wanted.iter().sum::<f64>()
        );
    }
    // Unweighted baseline for contrast.
    let even = run_goodput(
        topo(),
        &flows,
        &Scheme::LstfVc {
            rest: Bandwidth::mbps(50),
        },
        Time::from_millis(30),
        None,
    );
    let etotal: u64 = even.iter().sum();
    println!("unweighted LSTF@50Mbps shares:");
    for (i, b) in even.iter().enumerate() {
        println!("  flow {i}: {:>5.1}%", 100.0 * *b as f64 / etotal as f64);
    }
}
