//! Table 1 — LSTF replayability across utilizations, link-speed
//! variants, topologies, and original scheduling algorithms.
//!
//! Paper reference values (fraction overdue / fraction overdue > T):
//! I2 default @70% Random: 0.0021 / 0.0002; SJF: 0.1833 / 0.0019;
//! LIFO: 0.1477 / 0.0067; RocketFuel: 0.0246 / 0.0063;
//! Datacenter: 0.0164 / 0.0154.

use ups_bench::{print_replay_rows, table1, Scale};

fn main() {
    let scale = Scale::from_args();
    println!(
        "Table 1 (scale: {}, jobs: {}, replicates: {})",
        scale.label, scale.jobs, scale.replicates
    );
    let rows = table1(&scale);
    print_replay_rows("LSTF Replayability Results", &rows);
}
