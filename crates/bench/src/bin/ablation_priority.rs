//! §2.3(7) comparison — the same Random original schedule replayed by
//! every candidate UPS. Paper: Priority(o) 21% overdue vs LSTF 0.21%;
//! EDF identical to LSTF (Appendix E); omniscient perfect (Appendix B).

use ups_bench::{ablation_priority, print_replay_rows, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Candidate-UPS comparison (scale: {})", scale.label);
    let rows = ablation_priority(&scale);
    print_replay_rows("LSTF vs Priority(o) vs EDF vs Omniscient", &rows);
}
