//! Figure 3 — tail packet delays: FIFO vs LSTF with a constant slack
//! (identical to FIFO+), UDP at 70% on the default Internet2 topology.
//! Paper: FIFO mean 0.0780s / p99 0.2142s; LSTF mean 0.0786s /
//! p99 0.1958s (shape: slightly higher mean, lower tail).
//!
//! A thin client of the `ups-sweep` engine: `--replicates N` runs both
//! schemes at N seeds on `--jobs` workers and reports mean ± stddev per
//! percentile; JSON/CSV artifacts land under `target/sweep/` (or
//! `--out DIR`) and are byte-identical for every `--jobs` value.

use ups_bench::{fig3_report, print_fig_report, write_fig_artifacts, Scale};

fn main() {
    let (scale, out) = Scale::from_args_with_out();
    let report = fig3_report(&scale);
    print_fig_report(&report);
    println!("\n(rows are packet delay in seconds at each percentile;");
    println!("the paper's shape: LSTF trades a slightly higher mean for a");
    println!("lower tail)");
    write_fig_artifacts(&report, &out);
}
