//! Figure 3 — tail packet delays: FIFO vs LSTF with a constant slack
//! (identical to FIFO+), UDP at 70% on the default Internet2 topology.
//! Paper: FIFO mean 0.0780s / p99 0.2142s; LSTF mean 0.0786s /
//! p99 0.1958s (shape: slightly higher mean, lower tail).

use ups_bench::{fig3, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 3 (scale: {})", scale.label);
    let results = fig3(&scale);
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "scheme", "mean(s)", "p99(s)", "p99.9(s)", "max(s)", "packets"
    );
    for r in &results {
        println!(
            "{:<14} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>9}",
            r.label,
            r.mean,
            r.p99,
            r.p999,
            r.max,
            r.cdf.len()
        );
    }
    // CCDF at round delay multiples of the FIFO p99.
    if let [fifo, lstf] = &results[..] {
        println!("\nCCDF (fraction of packets with delay > x):");
        println!("{:>12} {:>12} {:>12}", "x(s)", "FIFO", "LSTF");
        for k in 1..=10 {
            let x = fifo.p99 * k as f64 / 5.0;
            println!(
                "{:>12.6} {:>12.2e} {:>12.2e}",
                x,
                fifo.cdf.ccdf_at(x),
                lstf.cdf.ccdf_at(x)
            );
        }
    }
}
