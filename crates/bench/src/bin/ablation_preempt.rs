//! §2.3(5) ablation — preemption rescues the hard replays: with
//! preemptive LSTF the paper's SJF replay failures drop from 18.33% to
//! 0.24% and LIFO from 14.77% to 0.25%.

use ups_bench::{ablation_preempt, print_replay_rows, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Preemption ablation (scale: {})", scale.label);
    let rows = ablation_preempt(&scale);
    print_replay_rows("Non-preemptive vs preemptive LSTF", &rows);
}
