//! Figure 1 — CDF of the ratio of queueing delay (LSTF replay :
//! original schedule) on the default Internet2 topology at 70%
//! utilization, for six original scheduling algorithms.

use ups_bench::{fig1, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 1 (scale: {})", scale.label);
    let curves = fig1(&scale);
    // Print the CDF value at fixed ratio points, one column per ratio.
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 0.1).collect();
    print!("{:<10}", "ratio");
    for x in &xs {
        print!(" {x:>6.1}");
    }
    println!();
    for (label, cdf) in &curves {
        print!("{label:<10}");
        for x in &xs {
            print!(" {:>6.3}", cdf.at(*x));
        }
        println!("   (n={}, median={:.3})", cdf.len(), cdf.quantile(0.5));
    }
    println!("\nPaper: most packets see a *smaller* queueing delay in the");
    println!("LSTF replay than in the original (CDF > 0.5 at ratio 1.0).");
}
