//! Figure 1 — CDF of the ratio of queueing delay (LSTF replay :
//! original schedule) on the default Internet2 topology at 70%
//! utilization, for six original scheduling algorithms.
//!
//! A thin client of the `ups-sweep` engine: `--replicates N` runs every
//! original scheduler at N seeds on `--jobs` workers and reports mean ±
//! stddev per ratio point; JSON/CSV artifacts land under `target/sweep/`
//! (or `--out DIR`) and are byte-identical for every `--jobs` value.

use ups_bench::{fig1_report, print_fig_report, write_fig_artifacts, Scale};

fn main() {
    let (scale, out) = Scale::from_args_with_out();
    let report = fig1_report(&scale);
    print_fig_report(&report);
    println!("\nPaper: most packets see a *smaller* queueing delay in the");
    println!("LSTF replay than in the original (CDF > 0.5 at ratio 1.0).");
    write_fig_artifacts(&report, &out);
}
