//! Figure 4 — Jain fairness index over time for long-lived TCP flows on
//! Internet2 with 10 Gbps edges: FIFO, FQ, and LSTF with virtual-clock
//! slack at rest ∈ {1, 0.5, 0.1, 0.05, 0.01} Gbps. Paper: LSTF
//! converges to fairness 1 for every rest ≤ r*, sooner for larger rest.

use ups_bench::{fig4, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("Figure 4 (scale: {})", scale.label);
    let series = fig4(&scale);
    print!("{:<16}", "t(ms)");
    for (label, _) in &series {
        print!(" {label:>14}");
    }
    println!();
    let n = series[0].1.len();
    for w in 0..n {
        print!("{:<16.1}", (w + 1) as f64);
        for (_, pts) in &series {
            print!(" {:>14.4}", pts[w].jain);
        }
        println!();
    }
}
