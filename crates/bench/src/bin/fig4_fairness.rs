//! Figure 4 — Jain fairness index over time for long-lived TCP flows on
//! Internet2 with 10 Gbps edges: FIFO, FQ, and LSTF with virtual-clock
//! slack at rest ∈ {1, 0.5, 0.1, 0.05, 0.01} Gbps. Paper: LSTF
//! converges to fairness 1 for every rest ≤ r*, sooner for larger rest.
//!
//! A thin client of the `ups-sweep` engine: `--replicates N` runs every
//! scheme at N seeds on `--jobs` workers and reports mean ± stddev per
//! 1 ms window; JSON/CSV artifacts land under `target/sweep/` (or
//! `--out DIR`) and are byte-identical for every `--jobs` value.

use ups_bench::{fig4_report, print_fig_report, write_fig_artifacts, Scale};

fn main() {
    let (scale, out) = Scale::from_args_with_out();
    let report = fig4_report(&scale);
    print_fig_report(&report);
    write_fig_artifacts(&report, &out);
}
