//! `ups-bench` — the experiment harness.
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built
//! on the shared runners in this library so the integration tests can
//! exercise the same code at reduced scale:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table 1 — LSTF replayability across utilizations, link speeds, topologies, original schedulers |
//! | `fig1_delay_ratio` | Figure 1 — CDF of queueing-delay ratio (LSTF : original) |
//! | `fig2_fct` | Figure 2 — mean FCT by flow size, FIFO/SJF/SRPT/LSTF |
//! | `fig3_tail` | Figure 3 — tail packet delays, FIFO vs LSTF(≡FIFO+) |
//! | `fig4_fairness` | Figure 4 — Jain fairness convergence, FIFO/FQ/LSTF@rest |
//! | `ablation_preempt` | §2.3(5) — preemptive LSTF on SJF/LIFO replays |
//! | `ablation_priority` | §2.3(7) — Priority(o) vs LSTF vs EDF vs omniscient |
//! | `ablation_lstf_key` | DESIGN.md ablation — last-bit vs pure-deadline keys |
//! | `congestion_points` | §2.2 diagnostic — congestion points per packet |
//! | `all_experiments` | everything above at the configured scale |
//! | `sweep` | declarative parallel grid sweeps and registered scenarios with JSON/CSV artifacts (lives at the workspace root; engine + scenario registry in `ups-sweep`) |
//!
//! Every binary accepts `--full` for paper-like scale (all runs are still
//! laptop-sized) and `--seed N`; the default "quick" scale finishes each
//! experiment in seconds. Sweep-backed experiments (`table1`, the four
//! `fig*` binaries, `all_experiments`, `sweep`) also take `--jobs N`
//! (worker threads — output is byte-identical for every value) and
//! `--replicates N` (seed replicates per grid cell, reported as mean ±
//! stddev on every scalar and every plotted point); the figure binaries
//! additionally take `--out DIR` and write JSON/CSV artifacts there
//! (default `target/sweep/` — schema in `ups-sweep`'s crate docs).
//! `sweep diff old.json new.json` compares two artifacts for regression
//! detection.

#![forbid(unsafe_code)]

pub mod runners;
pub mod scale;

pub use runners::*;
pub use scale::Scale;
