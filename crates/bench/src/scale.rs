//! Experiment scale parsed from the command line.

use std::path::PathBuf;
use ups_sim::Dur;
use ups_sweep::SimScale;

/// Flag reference (no `usage:` synopsis line, so binaries with extra
/// flags — like `sweep` — can print their own synopsis above it).
pub const SCALE_FLAGS: &str = "\
scale flags:
  --full          paper-like scale (default: quick)
  --seed N        base RNG seed (default: 1)
  --horizon-ms N  flow-arrival horizon in milliseconds
  --edges N       edge routers per core router on WAN topologies
  --jobs N        worker threads (default: available parallelism;
                  output is identical for every value). Only sweep-
                  backed experiments parallelize: sweep, table1,
                  fig1-fig4, all_experiments — a no-op elsewhere.
  --replicates N  seed replicates per grid cell, reported as
                  mean +/- stddev (default: 1). Sweep-backed
                  experiments only — a no-op elsewhere.";

/// Remove every `--out DIR` from `args`, returning the last directory
/// given (default: `target/sweep`) — the artifact-directory flag shared
/// by the sweep-backed figure binaries.
pub fn take_out_flag(args: &mut Vec<String>) -> Result<PathBuf, String> {
    let mut out = PathBuf::from("target/sweep");
    while let Some(i) = args.iter().position(|a| a == "--out") {
        args.remove(i);
        if i >= args.len() {
            return Err("--out requires a value".to_string());
        }
        let value = args.remove(i);
        // A following flag means the DIR was forgotten; consuming it
        // silently would both mis-scale the run and write artifacts to
        // a `./--flag/` directory.
        if value.starts_with('-') {
            return Err(format!("--out requires a value, got flag `{value}`"));
        }
        out = PathBuf::from(value);
    }
    Ok(out)
}

/// Knobs that trade fidelity for runtime.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Edge routers (and hosts) per core router on WAN topologies
    /// (paper: 10).
    pub edges_per_core: usize,
    /// Flow-arrival horizon for open-loop workloads.
    pub horizon: Dur,
    /// Fat-tree arity.
    pub fattree_k: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for sweep-backed experiments. Results are
    /// byte-identical for every value; this only trades wall-clock.
    pub jobs: usize,
    /// Seed replicates per sweep cell (mean ± stddev aggregation).
    pub replicates: usize,
    /// Human label for report headers.
    pub label: &'static str,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Scale {
    /// Fast scale: the paper's topology size (10 edge routers per core,
    /// 100 hosts on Internet2 — replay quality depends on this mixing),
    /// with a short workload horizon. Each experiment takes seconds.
    pub fn quick() -> Scale {
        Scale {
            edges_per_core: 10,
            horizon: Dur::from_millis(10),
            fattree_k: 4,
            seed: 1,
            jobs: default_jobs(),
            replicates: 1,
            label: "quick",
        }
    }

    /// Paper-like scale: longer horizon for tighter fractions, k=8
    /// fat-tree (128 hosts).
    pub fn full() -> Scale {
        Scale {
            edges_per_core: 10,
            horizon: Dur::from_millis(40),
            fattree_k: 8,
            seed: 1,
            jobs: default_jobs(),
            replicates: 1,
            label: "full",
        }
    }

    /// The simulation-size subset the sweep engine needs.
    pub fn sim(&self) -> SimScale {
        SimScale {
            edges_per_core: self.edges_per_core,
            horizon: self.horizon,
            fattree_k: self.fattree_k,
            label: self.label,
        }
    }

    /// Parse an argument vector (without the program name). Unknown
    /// flags, bare arguments, and missing or unparseable values are
    /// errors — not silently ignored.
    pub fn parse(args: &[String]) -> Result<Scale, String> {
        let mut s = if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::quick()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| -> Result<u64, String> {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{flag} requires a value"))?;
                v.parse::<u64>()
                    .map_err(|_| format!("{flag}: expected an integer, got `{v}`"))
            };
            match a.as_str() {
                "--full" => {}
                "--seed" => s.seed = value("--seed")?,
                "--horizon-ms" => s.horizon = Dur::from_millis(value("--horizon-ms")?),
                "--edges" => s.edges_per_core = value("--edges")?.max(1) as usize,
                "--jobs" => s.jobs = value("--jobs")?.max(1) as usize,
                "--replicates" => s.replicates = value("--replicates")?.max(1) as usize,
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag `{other}`"));
                }
                other => return Err(format!("unexpected argument `{other}`")),
            }
        }
        Ok(s)
    }

    /// Parse from `std::env::args`; print the error and usage, then
    /// exit(2), on bad input.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Scale::parse(&args) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}\nusage: <experiment> [scale flags]\n{SCALE_FLAGS}");
                std::process::exit(2);
            }
        }
    }

    /// Parse from `std::env::args` with `--out DIR` support — the entry
    /// point for binaries that write sweep artifacts. Returns the scale
    /// and the artifact directory (default `target/sweep`); prints the
    /// error and usage, then exit(2), on bad input.
    pub fn from_args_with_out() -> (Scale, PathBuf) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        let parsed = take_out_flag(&mut args).and_then(|out| Ok((Scale::parse(&args)?, out)));
        match parsed {
            Ok(v) => v,
            Err(e) => {
                eprintln!(
                    "error: {e}\n\
                     usage: <experiment> [--out DIR] [scale flags]\n  \
                     --out DIR    artifact directory (default: target/sweep)\n\
                     {SCALE_FLAGS}"
                );
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Scale, String> {
        Scale::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn quick_is_smaller_than_full() {
        let (q, f) = (Scale::quick(), Scale::full());
        assert!(q.horizon < f.horizon);
        assert!(q.fattree_k < f.fattree_k);
        // Both use the paper's WAN topology size — replay quality depends
        // on that host-level statistical mixing.
        assert_eq!(q.edges_per_core, 10);
    }

    #[test]
    fn empty_args_give_quick_defaults() {
        let s = parse(&[]).unwrap();
        assert_eq!(s.label, "quick");
        assert_eq!(s.seed, 1);
        assert_eq!(s.replicates, 1);
        assert!(s.jobs >= 1);
    }

    #[test]
    fn full_flag_and_values_are_consumed() {
        let s = parse(&[
            "--full",
            "--seed",
            "9",
            "--horizon-ms",
            "25",
            "--edges",
            "4",
            "--jobs",
            "3",
            "--replicates",
            "5",
        ])
        .unwrap();
        assert_eq!(s.label, "full");
        assert_eq!(s.seed, 9);
        assert_eq!(s.horizon, Dur::from_millis(25));
        assert_eq!(s.edges_per_core, 4);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.replicates, 5);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let err = parse(&["--frobnicate"]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn bare_argument_is_an_error() {
        let err = parse(&["17"]).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&["--seed"]).unwrap_err();
        assert!(err.contains("requires a value"), "{err}");
    }

    #[test]
    fn unparseable_value_is_an_error() {
        let err = parse(&["--jobs", "many"]).unwrap_err();
        assert!(err.contains("expected an integer"), "{err}");
        // The old parser silently ignored this and also treated the
        // value as a bare argument; both are now rejected.
        assert!(parse(&["--seed", "-3"]).is_err());
    }

    #[test]
    fn zero_jobs_and_replicates_clamp_to_one() {
        let s = parse(&["--jobs", "0", "--replicates", "0"]).unwrap();
        assert_eq!(s.jobs, 1);
        assert_eq!(s.replicates, 1);
    }

    #[test]
    fn take_out_flag_strips_and_defaults() {
        let mut args: Vec<String> = ["--seed", "3", "--out", "some/dir", "--jobs", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let out = take_out_flag(&mut args).unwrap();
        assert_eq!(out, PathBuf::from("some/dir"));
        assert_eq!(args, ["--seed", "3", "--jobs", "2"]);
        // Scale parsing then succeeds on the remainder.
        assert!(Scale::parse(&args).is_ok());

        let mut none: Vec<String> = vec![];
        assert_eq!(
            take_out_flag(&mut none).unwrap(),
            PathBuf::from("target/sweep")
        );

        let mut dangling: Vec<String> = vec!["--out".to_string()];
        assert!(take_out_flag(&mut dangling).is_err());

        // A forgotten DIR before another flag must error, not silently
        // swallow the flag as the directory.
        let mut swallowed: Vec<String> =
            ["--out", "--full"].iter().map(|s| s.to_string()).collect();
        assert!(take_out_flag(&mut swallowed).is_err());
    }

    #[test]
    fn sim_subset_matches() {
        let s = parse(&["--edges", "3", "--horizon-ms", "7"]).unwrap();
        let sim = s.sim();
        assert_eq!(sim.edges_per_core, 3);
        assert_eq!(sim.horizon, Dur::from_millis(7));
        assert_eq!(sim.fattree_k, s.fattree_k);
        assert_eq!(sim.label, "quick");
    }
}
