//! Experiment scale parsed from the command line.

use ups_sim::Dur;

/// Knobs that trade fidelity for runtime.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Edge routers (and hosts) per core router on WAN topologies
    /// (paper: 10).
    pub edges_per_core: usize,
    /// Flow-arrival horizon for open-loop workloads.
    pub horizon: Dur,
    /// Fat-tree arity.
    pub fattree_k: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Human label for report headers.
    pub label: &'static str,
}

impl Scale {
    /// Fast scale: the paper's topology size (10 edge routers per core,
    /// 100 hosts on Internet2 — replay quality depends on this mixing),
    /// with a short workload horizon. Each experiment takes seconds.
    pub fn quick() -> Scale {
        Scale {
            edges_per_core: 10,
            horizon: Dur::from_millis(10),
            fattree_k: 4,
            seed: 1,
            label: "quick",
        }
    }

    /// Paper-like scale: longer horizon for tighter fractions, k=8
    /// fat-tree (128 hosts).
    pub fn full() -> Scale {
        Scale {
            edges_per_core: 10,
            horizon: Dur::from_millis(40),
            fattree_k: 8,
            seed: 1,
            label: "full",
        }
    }

    /// Parse from `std::env::args`: `--full`, `--seed N`,
    /// `--horizon-ms N`, `--edges N`.
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        let mut s = if args.iter().any(|a| a == "--full") {
            Scale::full()
        } else {
            Scale::quick()
        };
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let mut grab = |field: &mut u64| {
                if let Some(v) = it.peek() {
                    if let Ok(n) = v.parse::<u64>() {
                        *field = n;
                    }
                }
            };
            match a.as_str() {
                "--seed" => grab(&mut s.seed),
                "--horizon-ms" => {
                    let mut ms = s.horizon.as_ps() / ups_sim::PS_PER_MS;
                    grab(&mut ms);
                    s.horizon = Dur::from_millis(ms);
                }
                "--edges" => {
                    let mut e = s.edges_per_core as u64;
                    grab(&mut e);
                    s.edges_per_core = e as usize;
                }
                _ => {}
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let (q, f) = (Scale::quick(), Scale::full());
        assert!(q.horizon < f.horizon);
        assert!(q.fattree_k < f.fattree_k);
        // Both use the paper's WAN topology size — replay quality depends
        // on that host-level statistical mixing.
        assert_eq!(q.edges_per_core, 10);
    }
}
