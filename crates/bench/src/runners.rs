//! Shared experiment runners: each returns structured data; the binaries
//! format it. Integration tests call these at [`Scale::quick`].

use crate::scale::Scale;
use std::path::Path;
use ups_core::objectives::Scheme;
use ups_core::replay::{record_original, replay_schedule, ReplayMode, ReplayReport};
use ups_core::workload::{default_udp_workload, to_flow_descs};
use ups_core::RecordedSchedule;
use ups_metrics::{bucket_means, Cdf, FairnessPoint, SizeBuckets};
use ups_net::TraceLevel;
use ups_sched::{LstfKeyMode, SchedKind};
use ups_sim::{Bandwidth, Dur, Time};
use ups_sweep::{
    run_fig_with, run_sweep, CellMetrics, DistMetrics, FigAxis, FigReport, FigSpec, SweepSpec,
};
use ups_topo::internet2::{self, I2Config, I2Variant};

// The topology selector lives in `ups-sweep` now (it is grid
// vocabulary); re-exported here so existing call sites keep working.
pub use ups_sweep::TopoKind;

/// One row of a replayability table.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Topology label.
    pub topo: String,
    /// Target utilization of the most-loaded core link.
    pub util: f64,
    /// Original scheduling algorithm.
    pub original: &'static str,
    /// Replay mode label.
    pub mode: String,
    /// Packets replayed.
    pub total: usize,
    /// Fraction overdue.
    pub frac_overdue: f64,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: f64,
    /// The threshold `T` in microseconds.
    pub t_us: f64,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: usize,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: f64,
}

/// Record an original schedule and replay it; returns the row plus the
/// raw report (for CDFs) and the recorded schedule (for diagnostics).
/// The pipeline itself is `ups_sweep::record_and_replay`, so figure
/// runners and the sweep engine cannot drift apart.
pub fn run_replay(
    kind: TopoKind,
    scale: &Scale,
    util: f64,
    original: SchedKind,
    mode: ReplayMode,
) -> (ReplayRow, ReplayReport, RecordedSchedule) {
    let coord = ups_sweep::CellCoord {
        topo: kind,
        sched: original,
        util,
        chaos: ups_sweep::ChaosSpec::OFF,
    };
    let (report, schedule) = ups_sweep::record_and_replay(&coord, &scale.sim(), scale.seed, mode);
    let row = replay_row(
        kind.label(),
        util,
        original.label(),
        mode.label().to_string(),
        CellMetrics::of(&report, &schedule),
    );
    (row, report, schedule)
}

/// Build a display row from the canonical metric reduction, so the
/// figure/ablation runners report the exact same values (and unit
/// conversions) as the sweep engine.
fn replay_row(
    topo: String,
    util: f64,
    original: &'static str,
    mode: String,
    m: CellMetrics,
) -> ReplayRow {
    ReplayRow {
        topo,
        util,
        original,
        mode,
        total: m.total,
        frac_overdue: m.frac_overdue,
        frac_gt_t: m.frac_gt_t,
        t_us: m.t_us,
        max_cp: m.max_cp,
        mean_slack_us: m.mean_slack_us,
    }
}

/// Table 1: all scenario rows. A thin client of the sweep engine — the
/// grid runs on `scale.jobs` worker threads with `scale.replicates`
/// seed replicates per cell, and each row carries the per-cell means.
/// With one replicate the rows are exactly the legacy serial values.
pub fn table1(scale: &Scale) -> Vec<ReplayRow> {
    let spec = SweepSpec::table1()
        .with_seed(scale.seed)
        .with_replicates(scale.replicates);
    let report = run_sweep(&spec, &scale.sim(), scale.jobs);
    let mode = ReplayMode::lstf().label().to_string();
    report
        .results
        .iter()
        .map(|r| ReplayRow {
            topo: r.coord.topo.label(),
            util: r.coord.util,
            original: r.coord.sched.label(),
            mode: mode.clone(),
            total: r.total.mean.round() as usize,
            frac_overdue: r.frac_overdue.mean,
            frac_gt_t: r.frac_gt_t.mean,
            t_us: r.t_us.mean,
            max_cp: r.max_cp.mean.round() as usize,
            mean_slack_us: r.mean_slack_us.mean,
        })
        .collect()
}

/// The six original schedulers Figure 1 replays.
pub fn fig1_originals() -> [SchedKind; 6] {
    [
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Fq,
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::FqFifoPlusMix,
    ]
}

/// The fixed ratio grid Figure 1's artifact samples the CDF on
/// (0.0 to 2.0 in steps of 0.1 — the paper's plotted range).
pub fn fig1_ratio_axis() -> Vec<f64> {
    // i/10 (not i*0.1): the division rounds to the double nearest the
    // decimal, so artifact x values print as `1.2`, not
    // `1.2000000000000002`.
    (0..=20).map(|i| i as f64 / 10.0).collect()
}

/// One Figure-1 cell: record `orig`'s schedule at `seed`, replay it
/// under LSTF, and return the queueing-delay ratio distribution.
pub fn fig1_cell(scale: &Scale, orig: SchedKind, seed: u64) -> Cdf {
    let coord = ups_sweep::CellCoord {
        topo: TopoKind::I2(I2Variant::Default1g10g),
        sched: orig,
        util: 0.7,
        chaos: ups_sweep::ChaosSpec::OFF,
    };
    let (report, _) = ups_sweep::record_and_replay(&coord, &scale.sim(), seed, ReplayMode::lstf());
    Cdf::new(report.qdelay_ratios)
}

/// Figure 1: per-original-scheduler CDFs of the queueing-delay ratio
/// (one run at the scale's base seed; [`fig1_report`] is the multi-seed
/// sweep variant).
pub fn fig1(scale: &Scale) -> Vec<(&'static str, Cdf)> {
    fig1_originals()
        .into_iter()
        .map(|orig| (orig.label(), fig1_cell(scale, orig, scale.seed)))
        .collect()
}

/// Figure 1 through the sweep engine: every original scheduler ×
/// `scale.replicates` seed replicates on `scale.jobs` workers, the CDF
/// evaluated on the fixed ratio axis with mean ± stddev per point.
pub fn fig1_report(scale: &Scale) -> FigReport {
    let originals = fig1_originals();
    let xs = fig1_ratio_axis();
    let spec = FigSpec::new(
        "fig1",
        "Figure 1 — CDF of queueing-delay ratio (LSTF replay : original)",
        originals.iter().map(|o| o.label().to_string()).collect(),
        FigAxis::numeric("ratio", xs.clone()),
    )
    .with_scalars(&["packets", "median", "p90"])
    .with_replicates(scale.replicates)
    .with_seed(scale.seed);
    run_fig_with(&spec, scale.label, scale.jobs, |job| {
        let cdf = fig1_cell(scale, originals[job.series], job.seed);
        if cdf.is_empty() {
            return DistMetrics {
                scalars: vec![0.0; 3],
                points: vec![0.0; xs.len()],
            };
        }
        DistMetrics {
            scalars: vec![cdf.len() as f64, cdf.quantile(0.5), cdf.quantile(0.9)],
            points: cdf.at_many(&xs),
        }
    })
}

/// One scheme's Figure 2 result.
#[derive(Debug)]
pub struct FctResult {
    /// Scheme label.
    pub label: String,
    /// Mean FCT over completed flows (seconds).
    pub mean_fct: f64,
    /// Completed / total flows.
    pub completed: (usize, usize),
    /// Per-bucket (mean FCT seconds, flow count).
    pub buckets: Vec<(f64, usize)>,
}

/// The four Figure-2 schemes (FIFO, SJF, SRPT, LSTF with fs×D slack).
pub fn fig2_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Fifo,
        Scheme::Sjf,
        Scheme::Srpt,
        Scheme::LstfFct {
            d: Dur::from_secs(1),
        },
    ]
}

/// One Figure-2 cell: TCP flows (seed-drawn workload, 5 MB buffers)
/// under `scheme`, FCTs bucketed by flow size.
pub fn fig2_cell(scale: &Scale, buckets: &SizeBuckets, scheme: &Scheme, seed: u64) -> FctResult {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, seed);
    drop(topo);
    let horizon = Time::ZERO + scale.horizon * 40 + Dur::from_secs(2);
    let buffer = 5_000_000; // 5 MB, as in §3.1
    let res = ups_core::run_fct(kind.build(&scale.sim()), &flows, scheme, buffer, horizon);
    let done: Vec<_> = res.iter().filter(|r| r.completed.is_some()).collect();
    let sizes: Vec<u64> = done.iter().map(|r| r.desc.pkts).collect();
    let fcts: Vec<f64> = done
        .iter()
        .map(|r| r.fct().expect("completed").as_secs_f64())
        .collect();
    let mean = if fcts.is_empty() {
        0.0
    } else {
        fcts.iter().sum::<f64>() / fcts.len() as f64
    };
    FctResult {
        label: scheme.label(),
        mean_fct: mean,
        completed: (done.len(), res.len()),
        buckets: bucket_means(buckets, &sizes, &fcts),
    }
}

/// Figure 2: mean FCT by flow-size bucket under FIFO / SJF / SRPT /
/// LSTF(fs×D), TCP with finite buffers (one run at the base seed;
/// [`fig2_report`] is the multi-seed sweep variant).
pub fn fig2(scale: &Scale) -> (SizeBuckets, Vec<FctResult>) {
    let buckets = SizeBuckets::paper_fig2();
    let results = fig2_schemes()
        .iter()
        .map(|scheme| fig2_cell(scale, &buckets, scheme, scale.seed))
        .collect();
    (buckets, results)
}

/// Figure 2 through the sweep engine: per-bucket mean FCT with mean ±
/// stddev over seed replicates. Buckets with no completed flows in a
/// replicate contribute 0 to that replicate's point (see the artifact
/// schema in `ups-sweep`'s crate docs).
pub fn fig2_report(scale: &Scale) -> FigReport {
    let buckets = SizeBuckets::paper_fig2();
    let schemes = fig2_schemes();
    let labels = (0..buckets.count()).map(|b| buckets.label(b)).collect();
    let spec = FigSpec::new(
        "fig2",
        "Figure 2 — mean FCT by flow size (TCP, 5 MB buffers)",
        schemes.iter().map(|s| s.label()).collect(),
        FigAxis::categorical("bucket_pkts", labels),
    )
    .with_scalars(&["mean_fct_s", "completed_flows", "total_flows"])
    .with_replicates(scale.replicates)
    .with_seed(scale.seed);
    run_fig_with(&spec, scale.label, scale.jobs, |job| {
        let r = fig2_cell(scale, &buckets, &schemes[job.series], job.seed);
        DistMetrics {
            scalars: vec![r.mean_fct, r.completed.0 as f64, r.completed.1 as f64],
            points: r.buckets.iter().map(|&(mean, _)| mean).collect(),
        }
    })
}

/// One scheme's Figure 3 result.
#[derive(Debug)]
pub struct TailResult {
    /// Scheme label.
    pub label: String,
    /// Mean packet delay (seconds).
    pub mean: f64,
    /// 99th-percentile delay (seconds).
    pub p99: f64,
    /// 99.9th-percentile delay (seconds).
    pub p999: f64,
    /// Maximum delay (seconds).
    pub max: f64,
    /// The full delay distribution for CCDF printing.
    pub cdf: Cdf,
}

/// The two Figure-3 schemes: FIFO vs LSTF with constant slack (≡ FIFO+).
pub fn fig3_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Fifo,
        Scheme::LstfConst {
            slack: Dur::from_secs(1),
        },
    ]
}

/// The percentiles Figure 3's artifact reports tail delay at.
pub fn fig3_percentile_axis() -> Vec<f64> {
    vec![50.0, 90.0, 95.0, 99.0, 99.9, 100.0]
}

/// One Figure-3 cell: per-packet delays under `scheme` on a seed-drawn
/// open-loop UDP workload (identical load across schemes at one seed).
/// An empty workload (e.g. `--horizon-ms 0`) yields all-zero statistics
/// rather than a quantile panic, matching `fig1_cell`'s empty handling.
pub fn fig3_cell(scale: &Scale, scheme: &Scheme, seed: u64) -> TailResult {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, seed);
    drop(topo);
    let delays = ups_core::run_tail_delays(kind.build(&scale.sim()), &flows, scheme, 1500, None);
    let cdf = Cdf::new(delays);
    let q = |p: f64| if cdf.is_empty() { 0.0 } else { cdf.quantile(p) };
    TailResult {
        label: scheme.label(),
        mean: cdf.mean(),
        p99: q(0.99),
        p999: q(0.999),
        max: q(1.0),
        cdf,
    }
}

/// Figure 3: per-packet delays under FIFO vs LSTF with constant slack
/// (≡ FIFO+), open-loop UDP so the load is identical (one run at the
/// base seed; [`fig3_report`] is the multi-seed sweep variant).
pub fn fig3(scale: &Scale) -> Vec<TailResult> {
    fig3_schemes()
        .iter()
        .map(|scheme| fig3_cell(scale, scheme, scale.seed))
        .collect()
}

/// Figure 3 through the sweep engine: delay at fixed percentiles with
/// mean ± stddev over seed replicates.
pub fn fig3_report(scale: &Scale) -> FigReport {
    let schemes = fig3_schemes();
    let xs = fig3_percentile_axis();
    let ps: Vec<f64> = xs.iter().map(|&p| p / 100.0).collect();
    let spec = FigSpec::new(
        "fig3",
        "Figure 3 — tail packet delay percentiles, FIFO vs LSTF(const)",
        schemes.iter().map(|s| s.label()).collect(),
        FigAxis::numeric("percentile", xs.clone()),
    )
    .with_scalars(&["mean_s", "packets"])
    .with_replicates(scale.replicates)
    .with_seed(scale.seed);
    run_fig_with(&spec, scale.label, scale.jobs, |job| {
        let r = fig3_cell(scale, &schemes[job.series], job.seed);
        if r.cdf.is_empty() {
            return DistMetrics {
                scalars: vec![0.0; 2],
                points: vec![0.0; ps.len()],
            };
        }
        DistMetrics {
            scalars: vec![r.mean, r.cdf.len() as f64],
            points: r.cdf.quantiles(&ps),
        }
    })
}

/// The seven Figure-4 schemes: FIFO, FQ, and LSTF with virtual-clock
/// slack at five `rest` estimates.
pub fn fig4_schemes() -> Vec<Scheme> {
    let mut schemes = vec![Scheme::Fifo, Scheme::Fq];
    for rest_mbps in [1000, 500, 100, 50, 10] {
        schemes.push(Scheme::LstfVc {
            rest: Bandwidth::mbps(rest_mbps),
        });
    }
    schemes
}

/// Figure 4's measurement windows: 1 ms windows over a 20 ms horizon
/// (fixed — convergence behavior, not workload volume, is the subject).
fn fig4_windows() -> (Dur, Time) {
    (Dur::from_millis(1), Time::from_millis(20))
}

/// One Figure-4 cell: the Jain-index time series for long-lived TCP
/// flows (jittered starts drawn from `seed`) under `scheme`.
///
/// Per the paper: Internet2 with 10 Gbps edges so all congestion is in
/// the core, shortened propagation delays, jittered flow starts, and
/// LSTF slack from the virtual-clock rule at several `rest` estimates.
pub fn fig4_cell(scale: &Scale, scheme: &Scheme, seed: u64) -> Vec<FairnessPoint> {
    let factory = || {
        internet2::build(
            &I2Config {
                variant: I2Variant::Access10g10g,
                core_bw: Bandwidth::gbps(10),
                edges_per_core: scale.edges_per_core,
                core_prop_scale_percent: 10,
                ..Default::default()
            },
            TraceLevel::Delivery,
        )
    };
    let topo = factory();
    let n_flows = (topo.hosts.len() * 9 / 10).max(2);
    let flows = to_flow_descs(&ups_flowgen::long_lived_flows(
        &topo,
        n_flows,
        Dur::from_millis(5),
        seed,
    ));
    drop(topo);
    let (window, horizon) = fig4_windows();
    ups_core::run_fairness(factory(), &flows, scheme, window, horizon, None)
}

/// Figure 4: Jain fairness convergence for long-lived TCP flows (one
/// run at the base seed; [`fig4_report`] is the multi-seed sweep
/// variant).
pub fn fig4(scale: &Scale) -> Vec<(String, Vec<FairnessPoint>)> {
    fig4_schemes()
        .iter()
        .map(|scheme| (scheme.label(), fig4_cell(scale, scheme, scale.seed)))
        .collect()
}

/// Figure 4 through the sweep engine: the per-window Jain index with
/// mean ± stddev over seed replicates.
pub fn fig4_report(scale: &Scale) -> FigReport {
    let schemes = fig4_schemes();
    let (window, horizon) = fig4_windows();
    // div_ceil, matching ups_metrics::throughput_fairness_series — a
    // floor here would desync the axis from the payload length if the
    // horizon ever stops being a multiple of the window.
    let n_windows = horizon.as_ps().div_ceil(window.as_ps()) as usize;
    let xs: Vec<f64> = (1..=n_windows).map(|w| w as f64).collect();
    let spec = FigSpec::new(
        "fig4",
        "Figure 4 — Jain fairness index over time (long-lived TCP)",
        schemes.iter().map(|s| s.label()).collect(),
        FigAxis::numeric("t_ms", xs),
    )
    .with_scalars(&["jain_final", "jain_mean"])
    .with_replicates(scale.replicates)
    .with_seed(scale.seed);
    run_fig_with(&spec, scale.label, scale.jobs, |job| {
        let pts = fig4_cell(scale, &schemes[job.series], job.seed);
        let jains: Vec<f64> = pts.iter().map(|p| p.jain).collect();
        let mean = jains.iter().sum::<f64>() / jains.len() as f64;
        DistMetrics {
            scalars: vec![*jains.last().expect("windows"), mean],
            points: jains,
        }
    })
}

/// §2.3(5): non-preemptive vs preemptive LSTF on the hardest originals.
pub fn ablation_preempt(scale: &Scale) -> Vec<ReplayRow> {
    let mut rows = Vec::new();
    for original in [
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::Fifo,
        SchedKind::Random,
    ] {
        for mode in [ReplayMode::lstf(), ReplayMode::lstf_preemptive()] {
            rows.push(
                run_replay(
                    TopoKind::I2(I2Variant::Default1g10g),
                    scale,
                    0.7,
                    original,
                    mode,
                )
                .0,
            );
        }
    }
    rows
}

/// §2.3(7) + appendices: same original schedule replayed under every
/// candidate UPS.
pub fn ablation_priority(scale: &Scale) -> Vec<ReplayRow> {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let mut orig_topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&orig_topo, 0.7, scale.horizon, scale.seed);
    let schedule = record_original(&mut orig_topo, &flows, SchedKind::Random, scale.seed, 1500);
    drop(orig_topo);
    [
        ReplayMode::lstf(),
        ReplayMode::Priority,
        ReplayMode::Edf,
        ReplayMode::Omniscient,
    ]
    .into_iter()
    .map(|mode| {
        let mut topo = kind.build(&scale.sim());
        let report = replay_schedule(&mut topo, &schedule, mode);
        replay_row(
            kind.label(),
            0.7,
            "Random",
            mode.label().to_string(),
            CellMetrics::of(&report, &schedule),
        )
    })
    .collect()
}

/// DESIGN.md ablation: the last-bit deadline key vs the pure deadline
/// key (they coincide for uniform packet sizes; this verifies that).
pub fn ablation_lstf_key(scale: &Scale) -> Vec<ReplayRow> {
    [LstfKeyMode::LastBit, LstfKeyMode::PureDeadline]
        .into_iter()
        .map(|key| {
            run_replay(
                TopoKind::I2(I2Variant::Default1g10g),
                scale,
                0.7,
                SchedKind::Random,
                ReplayMode::Lstf {
                    preemptive: false,
                    key,
                },
            )
            .0
        })
        .collect()
}

/// §2.2 diagnostic: congestion points per packet across topologies.
pub fn congestion_points(scale: &Scale) -> Vec<(String, Vec<usize>, f64)> {
    [
        TopoKind::I2(I2Variant::Default1g10g),
        TopoKind::I2(I2Variant::Access1g1g),
        TopoKind::I2(I2Variant::Access10g10g),
        TopoKind::RocketFuel,
        TopoKind::FatTree,
    ]
    .into_iter()
    .map(|kind| {
        let mut topo = kind.build(&scale.sim());
        let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
        let schedule = record_original(&mut topo, &flows, SchedKind::Random, scale.seed, 1500);
        (
            kind.label(),
            schedule.congestion_point_histogram(),
            schedule.mean_slack() / 1e6,
        )
    })
    .collect()
}

/// Format a replay-row table for stdout.
pub fn print_replay_rows(title: &str, rows: &[ReplayRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<18} {:>5} {:<9} {:<14} {:>9} {:>12} {:>10} {:>8} {:>7} {:>12}",
        "Topology",
        "Util",
        "Original",
        "Replay",
        "Packets",
        "FracOverdue",
        "Frac>T",
        "T(us)",
        "MaxCP",
        "MeanSlack(us)"
    );
    for r in rows {
        println!(
            "{:<18} {:>4.0}% {:<9} {:<14} {:>9} {:>12.6} {:>10.6} {:>8.1} {:>7} {:>12.1}",
            r.topo,
            r.util * 100.0,
            r.original,
            r.mode,
            r.total,
            r.frac_overdue,
            r.frac_gt_t,
            r.t_us,
            r.max_cp,
            r.mean_slack_us
        );
    }
}

/// Format a figure report for stdout: header, per-series scalar
/// summaries, then the mean ± stddev curve table (one column per
/// series, one row per x-axis point).
pub fn print_fig_report(report: &FigReport) {
    println!("\n=== {} ===", report.title);
    println!(
        "scale {}, {} replicate(s), base seed {} (output is identical for every --jobs value)",
        report.scale, report.replicates, report.base_seed
    );
    if !report.scalar_names.is_empty() {
        println!();
        print!("{:<16}", "series");
        for name in &report.scalar_names {
            print!(" {name:>22}");
        }
        println!();
        for r in &report.results {
            print!("{:<16}", r.series);
            for s in &r.scalars {
                print!(" {:>13.4} ±{:>7.4}", s.mean, s.stddev);
            }
            println!();
        }
    }
    println!();
    print!("{:<12}", report.axis.name);
    for r in &report.results {
        print!(" {:>20}", r.series);
    }
    println!();
    for (i, &x) in report.axis.xs.iter().enumerate() {
        let row_label = report
            .axis
            .labels
            .as_ref()
            .map_or_else(|| format!("{x}"), |labels| labels[i].clone());
        print!("{row_label:<12}");
        for r in &report.results {
            let s = &r.points[i];
            print!(" {:>11.4} ±{:>7.4}", s.mean, s.stddev);
        }
        println!();
    }
}

/// Write a figure report's JSON + CSV artifacts under `out`, printing
/// the paths; exits(1) on an IO error (binary-level helper).
pub fn write_fig_artifacts(report: &FigReport, out: &Path) {
    match report.write(out) {
        Ok((json, csv)) => println!("\nwrote {} and {}", json.display(), csv.display()),
        Err(e) => {
            eprintln!("error: writing artifacts to {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            seed: 7,
            jobs: 1,
            replicates: 1,
            label: "tiny",
        }
    }

    #[test]
    fn replay_row_has_sane_fields() {
        let (row, report, schedule) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.5,
            SchedKind::Random,
            ReplayMode::lstf(),
        );
        assert!(row.total > 0);
        assert!(row.frac_overdue <= 1.0);
        assert!(row.frac_gt_t <= row.frac_overdue);
        assert_eq!(report.total, schedule.len());
        assert!(
            (row.t_us - 12.0).abs() < 1e-9,
            "T must be 12us, got {}",
            row.t_us
        );
    }

    #[test]
    fn fig1_report_matches_single_run_at_one_replicate() {
        // With one replicate the sweep path must reproduce the legacy
        // serial path exactly — same seed, same cells, same CDF values.
        let scale = tiny();
        let report = fig1_report(&scale);
        let legacy = fig1(&scale);
        assert_eq!(report.results.len(), legacy.len());
        let xs = fig1_ratio_axis();
        for (r, (label, cdf)) in report.results.iter().zip(&legacy) {
            assert_eq!(&r.series, label);
            assert_eq!(r.replicates, 1);
            for (s, &x) in r.points.iter().zip(&xs) {
                assert_eq!(s.mean, cdf.at(x), "{label} at ratio {x}");
                assert_eq!(s.stddev, 0.0);
            }
        }
    }

    #[test]
    fn fig3_report_aggregates_replicates() {
        // fig3 is the cheapest multi-scheme figure (two open-loop UDP
        // runs per replicate), so it carries the multi-replicate wiring
        // check; fig4's 20 ms TCP sims would cost ~50s here.
        let mut scale = tiny();
        scale.replicates = 2;
        scale.jobs = 2;
        let report = fig3_report(&scale);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.axis.xs, fig3_percentile_axis());
        for r in &report.results {
            assert_eq!(r.replicates, 2);
            // Percentile curve is monotone in the mean.
            for w in r.points.windows(2) {
                assert!(w[0].mean <= w[1].mean, "{}: non-monotone", r.series);
            }
            // Two seeds draw different workloads → different packet
            // counts → nonzero spread on the count scalar.
            assert!(r.scalars[1].mean > 0.0, "{}: no packets", r.series);
            assert!(
                r.scalars[1].stddev > 0.0,
                "{}: replicates did not vary the seed",
                r.series
            );
        }
    }

    #[test]
    fn omniscient_is_perfect_on_i2() {
        let (row, _, _) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.6,
            SchedKind::Random,
            ReplayMode::Omniscient,
        );
        assert_eq!(row.frac_overdue, 0.0, "Appendix B violated");
    }
}
