//! Shared experiment runners: each returns structured data; the binaries
//! format it. Integration tests call these at [`Scale::quick`].

use crate::scale::Scale;
use ups_core::objectives::Scheme;
use ups_core::replay::{record_original, replay_schedule, ReplayMode, ReplayReport};
use ups_core::workload::{default_udp_workload, to_flow_descs};
use ups_core::RecordedSchedule;
use ups_metrics::{bucket_means, Cdf, FairnessPoint, SizeBuckets};
use ups_net::TraceLevel;
use ups_sched::{LstfKeyMode, SchedKind};
use ups_sim::{Bandwidth, Dur, Time};
use ups_topo::internet2::{self, I2Config, I2Variant};
use ups_topo::{fattree, rocketfuel, Topology};

/// Topology selector for replay experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Internet2 with one of the paper's bandwidth variants.
    I2(I2Variant),
    /// Synthetic RocketFuel (83 routers / 131 links).
    RocketFuel,
    /// Full-bisection fat-tree datacenter.
    FatTree,
}

impl TopoKind {
    /// Display label (matches Table 1's "Topology" column).
    pub fn label(self) -> String {
        match self {
            TopoKind::I2(v) => v.label().to_string(),
            TopoKind::RocketFuel => "RocketFuel".to_string(),
            TopoKind::FatTree => "Datacenter".to_string(),
        }
    }

    /// Build a fresh instance at the given scale.
    pub fn build(self, scale: &Scale) -> Topology {
        match self {
            TopoKind::I2(variant) => internet2::build(
                &I2Config {
                    variant,
                    edges_per_core: scale.edges_per_core,
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
            TopoKind::RocketFuel => rocketfuel::build(
                &rocketfuel::RocketFuelConfig {
                    edges_per_core: (scale.edges_per_core / 2).max(1),
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
            TopoKind::FatTree => fattree::build(
                &fattree::FatTreeConfig {
                    k: scale.fattree_k,
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
        }
    }
}

/// One row of a replayability table.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Topology label.
    pub topo: String,
    /// Target utilization of the most-loaded core link.
    pub util: f64,
    /// Original scheduling algorithm.
    pub original: &'static str,
    /// Replay mode label.
    pub mode: String,
    /// Packets replayed.
    pub total: usize,
    /// Fraction overdue.
    pub frac_overdue: f64,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: f64,
    /// The threshold `T` in microseconds.
    pub t_us: f64,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: usize,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: f64,
}

/// Record an original schedule and replay it; returns the row plus the
/// raw report (for CDFs) and the recorded schedule (for diagnostics).
pub fn run_replay(
    kind: TopoKind,
    scale: &Scale,
    util: f64,
    original: SchedKind,
    mode: ReplayMode,
) -> (ReplayRow, ReplayReport, RecordedSchedule) {
    let mut orig_topo = kind.build(scale);
    let flows = default_udp_workload(&orig_topo, util, scale.horizon, scale.seed);
    let schedule = record_original(&mut orig_topo, &flows, original, scale.seed, 1500);
    drop(orig_topo);
    let mut replay_topo = kind.build(scale);
    let report = replay_schedule(&mut replay_topo, &schedule, mode);
    let row = ReplayRow {
        topo: kind.label(),
        util,
        original: original.label(),
        mode: mode.label().to_string(),
        total: report.total,
        frac_overdue: report.frac_overdue(),
        frac_gt_t: report.frac_overdue_gt_t(),
        t_us: report.t.as_micros_f64(),
        max_cp: schedule.max_congestion_points(),
        mean_slack_us: schedule.mean_slack() / 1e6,
    };
    (row, report, schedule)
}

/// Table 1: all scenario rows.
pub fn table1(scale: &Scale) -> Vec<ReplayRow> {
    let mut rows = Vec::new();
    let lstf = ReplayMode::lstf();
    // Rows 1-2: default topology, Random, utilization sweep.
    for util in [0.1, 0.3, 0.5, 0.7, 0.9] {
        rows.push(
            run_replay(
                TopoKind::I2(I2Variant::Default1g10g),
                scale,
                util,
                SchedKind::Random,
                lstf,
            )
            .0,
        );
    }
    // Row 3: bandwidth variants at 70%.
    for variant in [I2Variant::Access1g1g, I2Variant::Access10g10g] {
        rows.push(run_replay(TopoKind::I2(variant), scale, 0.7, SchedKind::Random, lstf).0);
    }
    // Row 4: other topologies at 70%.
    for kind in [TopoKind::RocketFuel, TopoKind::FatTree] {
        rows.push(run_replay(kind, scale, 0.7, SchedKind::Random, lstf).0);
    }
    // Row 5: original-scheduler sweep on the default topology.
    for original in [
        SchedKind::Fifo,
        SchedKind::Fq,
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::FqFifoPlusMix,
    ] {
        rows.push(
            run_replay(
                TopoKind::I2(I2Variant::Default1g10g),
                scale,
                0.7,
                original,
                lstf,
            )
            .0,
        );
    }
    rows
}

/// Figure 1: per-original-scheduler CDFs of the queueing-delay ratio.
pub fn fig1(scale: &Scale) -> Vec<(&'static str, Cdf)> {
    [
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Fq,
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::FqFifoPlusMix,
    ]
    .into_iter()
    .map(|orig| {
        let (_, report, _) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            scale,
            0.7,
            orig,
            ReplayMode::lstf(),
        );
        (orig.label(), Cdf::new(report.qdelay_ratios))
    })
    .collect()
}

/// One scheme's Figure 2 result.
#[derive(Debug)]
pub struct FctResult {
    /// Scheme label.
    pub label: String,
    /// Mean FCT over completed flows (seconds).
    pub mean_fct: f64,
    /// Completed / total flows.
    pub completed: (usize, usize),
    /// Per-bucket (mean FCT seconds, flow count).
    pub buckets: Vec<(f64, usize)>,
}

/// Figure 2: mean FCT by flow-size bucket under FIFO / SJF / SRPT /
/// LSTF(fs×D), TCP with finite buffers.
pub fn fig2(scale: &Scale) -> (SizeBuckets, Vec<FctResult>) {
    let buckets = SizeBuckets::paper_fig2();
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(scale);
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
    drop(topo);
    let horizon = Time::ZERO + scale.horizon * 40 + Dur::from_secs(2);
    let buffer = 5_000_000; // 5 MB, as in §3.1
    let schemes = vec![
        Scheme::Fifo,
        Scheme::Sjf,
        Scheme::Srpt,
        Scheme::LstfFct {
            d: Dur::from_secs(1),
        },
    ];
    let results = schemes
        .into_iter()
        .map(|scheme| {
            let res = ups_core::run_fct(kind.build(scale), &flows, &scheme, buffer, horizon);
            let done: Vec<_> = res.iter().filter(|r| r.completed.is_some()).collect();
            let sizes: Vec<u64> = done.iter().map(|r| r.desc.pkts).collect();
            let fcts: Vec<f64> = done
                .iter()
                .map(|r| r.fct().expect("completed").as_secs_f64())
                .collect();
            let mean = if fcts.is_empty() {
                0.0
            } else {
                fcts.iter().sum::<f64>() / fcts.len() as f64
            };
            FctResult {
                label: scheme.label(),
                mean_fct: mean,
                completed: (done.len(), res.len()),
                buckets: bucket_means(&buckets, &sizes, &fcts),
            }
        })
        .collect();
    (buckets, results)
}

/// One scheme's Figure 3 result.
#[derive(Debug)]
pub struct TailResult {
    /// Scheme label.
    pub label: String,
    /// Mean packet delay (seconds).
    pub mean: f64,
    /// 99th-percentile delay (seconds).
    pub p99: f64,
    /// 99.9th-percentile delay (seconds).
    pub p999: f64,
    /// Maximum delay (seconds).
    pub max: f64,
    /// The full delay distribution for CCDF printing.
    pub cdf: Cdf,
}

/// Figure 3: per-packet delays under FIFO vs LSTF with constant slack
/// (≡ FIFO+), open-loop UDP so the load is identical.
pub fn fig3(scale: &Scale) -> Vec<TailResult> {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(scale);
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
    drop(topo);
    [
        Scheme::Fifo,
        Scheme::LstfConst {
            slack: Dur::from_secs(1),
        },
    ]
    .into_iter()
    .map(|scheme| {
        let delays = ups_core::run_tail_delays(kind.build(scale), &flows, &scheme, 1500, None);
        let cdf = Cdf::new(delays);
        TailResult {
            label: scheme.label(),
            mean: cdf.mean(),
            p99: cdf.quantile(0.99),
            p999: cdf.quantile(0.999),
            max: cdf.quantile(1.0),
            cdf,
        }
    })
    .collect()
}

/// Figure 4: Jain fairness convergence for long-lived TCP flows.
///
/// Per the paper: Internet2 with 10 Gbps edges so all congestion is in
/// the core, shortened propagation delays, jittered flow starts, and
/// LSTF slack from the virtual-clock rule at several `rest` estimates.
pub fn fig4(scale: &Scale) -> Vec<(String, Vec<FairnessPoint>)> {
    let factory = || {
        internet2::build(
            &I2Config {
                variant: I2Variant::Access10g10g,
                core_bw: Bandwidth::gbps(10),
                edges_per_core: scale.edges_per_core,
                core_prop_scale_percent: 10,
                ..Default::default()
            },
            TraceLevel::Delivery,
        )
    };
    let topo = factory();
    let n_flows = (topo.hosts.len() * 9 / 10).max(2);
    let flows = to_flow_descs(&ups_flowgen::long_lived_flows(
        &topo,
        n_flows,
        Dur::from_millis(5),
        scale.seed,
    ));
    drop(topo);
    let window = Dur::from_millis(1);
    let horizon = Time::from_millis(20);
    let mut schemes = vec![Scheme::Fifo, Scheme::Fq];
    for rest_mbps in [1000, 500, 100, 50, 10] {
        schemes.push(Scheme::LstfVc {
            rest: Bandwidth::mbps(rest_mbps),
        });
    }
    schemes
        .into_iter()
        .map(|scheme| {
            let pts = ups_core::run_fairness(factory(), &flows, &scheme, window, horizon, None);
            (scheme.label(), pts)
        })
        .collect()
}

/// §2.3(5): non-preemptive vs preemptive LSTF on the hardest originals.
pub fn ablation_preempt(scale: &Scale) -> Vec<ReplayRow> {
    let mut rows = Vec::new();
    for original in [
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::Fifo,
        SchedKind::Random,
    ] {
        for mode in [ReplayMode::lstf(), ReplayMode::lstf_preemptive()] {
            rows.push(
                run_replay(
                    TopoKind::I2(I2Variant::Default1g10g),
                    scale,
                    0.7,
                    original,
                    mode,
                )
                .0,
            );
        }
    }
    rows
}

/// §2.3(7) + appendices: same original schedule replayed under every
/// candidate UPS.
pub fn ablation_priority(scale: &Scale) -> Vec<ReplayRow> {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let mut orig_topo = kind.build(scale);
    let flows = default_udp_workload(&orig_topo, 0.7, scale.horizon, scale.seed);
    let schedule = record_original(&mut orig_topo, &flows, SchedKind::Random, scale.seed, 1500);
    drop(orig_topo);
    [
        ReplayMode::lstf(),
        ReplayMode::Priority,
        ReplayMode::Edf,
        ReplayMode::Omniscient,
    ]
    .into_iter()
    .map(|mode| {
        let mut topo = kind.build(scale);
        let report = replay_schedule(&mut topo, &schedule, mode);
        ReplayRow {
            topo: kind.label(),
            util: 0.7,
            original: "Random",
            mode: mode.label().to_string(),
            total: report.total,
            frac_overdue: report.frac_overdue(),
            frac_gt_t: report.frac_overdue_gt_t(),
            t_us: report.t.as_micros_f64(),
            max_cp: schedule.max_congestion_points(),
            mean_slack_us: schedule.mean_slack() / 1e6,
        }
    })
    .collect()
}

/// DESIGN.md ablation: the last-bit deadline key vs the pure deadline
/// key (they coincide for uniform packet sizes; this verifies that).
pub fn ablation_lstf_key(scale: &Scale) -> Vec<ReplayRow> {
    [LstfKeyMode::LastBit, LstfKeyMode::PureDeadline]
        .into_iter()
        .map(|key| {
            run_replay(
                TopoKind::I2(I2Variant::Default1g10g),
                scale,
                0.7,
                SchedKind::Random,
                ReplayMode::Lstf {
                    preemptive: false,
                    key,
                },
            )
            .0
        })
        .collect()
}

/// §2.2 diagnostic: congestion points per packet across topologies.
pub fn congestion_points(scale: &Scale) -> Vec<(String, Vec<usize>, f64)> {
    [
        TopoKind::I2(I2Variant::Default1g10g),
        TopoKind::I2(I2Variant::Access1g1g),
        TopoKind::I2(I2Variant::Access10g10g),
        TopoKind::RocketFuel,
        TopoKind::FatTree,
    ]
    .into_iter()
    .map(|kind| {
        let mut topo = kind.build(scale);
        let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
        let schedule = record_original(&mut topo, &flows, SchedKind::Random, scale.seed, 1500);
        (
            kind.label(),
            schedule.congestion_point_histogram(),
            schedule.mean_slack() / 1e6,
        )
    })
    .collect()
}

/// Format a replay-row table for stdout.
pub fn print_replay_rows(title: &str, rows: &[ReplayRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<18} {:>5} {:<9} {:<14} {:>9} {:>12} {:>10} {:>8} {:>7} {:>12}",
        "Topology",
        "Util",
        "Original",
        "Replay",
        "Packets",
        "FracOverdue",
        "Frac>T",
        "T(us)",
        "MaxCP",
        "MeanSlack(us)"
    );
    for r in rows {
        println!(
            "{:<18} {:>4.0}% {:<9} {:<14} {:>9} {:>12.6} {:>10.6} {:>8.1} {:>7} {:>12.1}",
            r.topo,
            r.util * 100.0,
            r.original,
            r.mode,
            r.total,
            r.frac_overdue,
            r.frac_gt_t,
            r.t_us,
            r.max_cp,
            r.mean_slack_us
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            seed: 7,
            label: "tiny",
        }
    }

    #[test]
    fn replay_row_has_sane_fields() {
        let (row, report, schedule) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.5,
            SchedKind::Random,
            ReplayMode::lstf(),
        );
        assert!(row.total > 0);
        assert!(row.frac_overdue <= 1.0);
        assert!(row.frac_gt_t <= row.frac_overdue);
        assert_eq!(report.total, schedule.len());
        assert!(
            (row.t_us - 12.0).abs() < 1e-9,
            "T must be 12us, got {}",
            row.t_us
        );
    }

    #[test]
    fn omniscient_is_perfect_on_i2() {
        let (row, _, _) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.6,
            SchedKind::Random,
            ReplayMode::Omniscient,
        );
        assert_eq!(row.frac_overdue, 0.0, "Appendix B violated");
    }
}
