//! Shared experiment runners: each returns structured data; the binaries
//! format it. Integration tests call these at [`Scale::quick`].

use crate::scale::Scale;
use ups_core::objectives::Scheme;
use ups_core::replay::{record_original, replay_schedule, ReplayMode, ReplayReport};
use ups_core::workload::{default_udp_workload, to_flow_descs};
use ups_core::RecordedSchedule;
use ups_metrics::{bucket_means, Cdf, FairnessPoint, SizeBuckets};
use ups_net::TraceLevel;
use ups_sched::{LstfKeyMode, SchedKind};
use ups_sim::{Bandwidth, Dur, Time};
use ups_sweep::{run_sweep, CellMetrics, SweepSpec};
use ups_topo::internet2::{self, I2Config, I2Variant};

// The topology selector lives in `ups-sweep` now (it is grid
// vocabulary); re-exported here so existing call sites keep working.
pub use ups_sweep::TopoKind;

/// One row of a replayability table.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    /// Topology label.
    pub topo: String,
    /// Target utilization of the most-loaded core link.
    pub util: f64,
    /// Original scheduling algorithm.
    pub original: &'static str,
    /// Replay mode label.
    pub mode: String,
    /// Packets replayed.
    pub total: usize,
    /// Fraction overdue.
    pub frac_overdue: f64,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: f64,
    /// The threshold `T` in microseconds.
    pub t_us: f64,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: usize,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: f64,
}

/// Record an original schedule and replay it; returns the row plus the
/// raw report (for CDFs) and the recorded schedule (for diagnostics).
/// The pipeline itself is `ups_sweep::record_and_replay`, so figure
/// runners and the sweep engine cannot drift apart.
pub fn run_replay(
    kind: TopoKind,
    scale: &Scale,
    util: f64,
    original: SchedKind,
    mode: ReplayMode,
) -> (ReplayRow, ReplayReport, RecordedSchedule) {
    let coord = ups_sweep::CellCoord {
        topo: kind,
        sched: original,
        util,
    };
    let (report, schedule) = ups_sweep::record_and_replay(&coord, &scale.sim(), scale.seed, mode);
    let row = replay_row(
        kind.label(),
        util,
        original.label(),
        mode.label().to_string(),
        CellMetrics::of(&report, &schedule),
    );
    (row, report, schedule)
}

/// Build a display row from the canonical metric reduction, so the
/// figure/ablation runners report the exact same values (and unit
/// conversions) as the sweep engine.
fn replay_row(
    topo: String,
    util: f64,
    original: &'static str,
    mode: String,
    m: CellMetrics,
) -> ReplayRow {
    ReplayRow {
        topo,
        util,
        original,
        mode,
        total: m.total,
        frac_overdue: m.frac_overdue,
        frac_gt_t: m.frac_gt_t,
        t_us: m.t_us,
        max_cp: m.max_cp,
        mean_slack_us: m.mean_slack_us,
    }
}

/// Table 1: all scenario rows. A thin client of the sweep engine — the
/// grid runs on `scale.jobs` worker threads with `scale.replicates`
/// seed replicates per cell, and each row carries the per-cell means.
/// With one replicate the rows are exactly the legacy serial values.
pub fn table1(scale: &Scale) -> Vec<ReplayRow> {
    let spec = SweepSpec::table1()
        .with_seed(scale.seed)
        .with_replicates(scale.replicates);
    let report = run_sweep(&spec, &scale.sim(), scale.jobs);
    let mode = ReplayMode::lstf().label().to_string();
    report
        .results
        .iter()
        .map(|r| ReplayRow {
            topo: r.coord.topo.label(),
            util: r.coord.util,
            original: r.coord.sched.label(),
            mode: mode.clone(),
            total: r.total.mean.round() as usize,
            frac_overdue: r.frac_overdue.mean,
            frac_gt_t: r.frac_gt_t.mean,
            t_us: r.t_us.mean,
            max_cp: r.max_cp.mean.round() as usize,
            mean_slack_us: r.mean_slack_us.mean,
        })
        .collect()
}

/// Figure 1: per-original-scheduler CDFs of the queueing-delay ratio.
pub fn fig1(scale: &Scale) -> Vec<(&'static str, Cdf)> {
    [
        SchedKind::Random,
        SchedKind::Fifo,
        SchedKind::Fq,
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::FqFifoPlusMix,
    ]
    .into_iter()
    .map(|orig| {
        let (_, report, _) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            scale,
            0.7,
            orig,
            ReplayMode::lstf(),
        );
        (orig.label(), Cdf::new(report.qdelay_ratios))
    })
    .collect()
}

/// One scheme's Figure 2 result.
#[derive(Debug)]
pub struct FctResult {
    /// Scheme label.
    pub label: String,
    /// Mean FCT over completed flows (seconds).
    pub mean_fct: f64,
    /// Completed / total flows.
    pub completed: (usize, usize),
    /// Per-bucket (mean FCT seconds, flow count).
    pub buckets: Vec<(f64, usize)>,
}

/// Figure 2: mean FCT by flow-size bucket under FIFO / SJF / SRPT /
/// LSTF(fs×D), TCP with finite buffers.
pub fn fig2(scale: &Scale) -> (SizeBuckets, Vec<FctResult>) {
    let buckets = SizeBuckets::paper_fig2();
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
    drop(topo);
    let horizon = Time::ZERO + scale.horizon * 40 + Dur::from_secs(2);
    let buffer = 5_000_000; // 5 MB, as in §3.1
    let schemes = vec![
        Scheme::Fifo,
        Scheme::Sjf,
        Scheme::Srpt,
        Scheme::LstfFct {
            d: Dur::from_secs(1),
        },
    ];
    let results = schemes
        .into_iter()
        .map(|scheme| {
            let res = ups_core::run_fct(kind.build(&scale.sim()), &flows, &scheme, buffer, horizon);
            let done: Vec<_> = res.iter().filter(|r| r.completed.is_some()).collect();
            let sizes: Vec<u64> = done.iter().map(|r| r.desc.pkts).collect();
            let fcts: Vec<f64> = done
                .iter()
                .map(|r| r.fct().expect("completed").as_secs_f64())
                .collect();
            let mean = if fcts.is_empty() {
                0.0
            } else {
                fcts.iter().sum::<f64>() / fcts.len() as f64
            };
            FctResult {
                label: scheme.label(),
                mean_fct: mean,
                completed: (done.len(), res.len()),
                buckets: bucket_means(&buckets, &sizes, &fcts),
            }
        })
        .collect();
    (buckets, results)
}

/// One scheme's Figure 3 result.
#[derive(Debug)]
pub struct TailResult {
    /// Scheme label.
    pub label: String,
    /// Mean packet delay (seconds).
    pub mean: f64,
    /// 99th-percentile delay (seconds).
    pub p99: f64,
    /// 99.9th-percentile delay (seconds).
    pub p999: f64,
    /// Maximum delay (seconds).
    pub max: f64,
    /// The full delay distribution for CCDF printing.
    pub cdf: Cdf,
}

/// Figure 3: per-packet delays under FIFO vs LSTF with constant slack
/// (≡ FIFO+), open-loop UDP so the load is identical.
pub fn fig3(scale: &Scale) -> Vec<TailResult> {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
    drop(topo);
    [
        Scheme::Fifo,
        Scheme::LstfConst {
            slack: Dur::from_secs(1),
        },
    ]
    .into_iter()
    .map(|scheme| {
        let delays =
            ups_core::run_tail_delays(kind.build(&scale.sim()), &flows, &scheme, 1500, None);
        let cdf = Cdf::new(delays);
        TailResult {
            label: scheme.label(),
            mean: cdf.mean(),
            p99: cdf.quantile(0.99),
            p999: cdf.quantile(0.999),
            max: cdf.quantile(1.0),
            cdf,
        }
    })
    .collect()
}

/// Figure 4: Jain fairness convergence for long-lived TCP flows.
///
/// Per the paper: Internet2 with 10 Gbps edges so all congestion is in
/// the core, shortened propagation delays, jittered flow starts, and
/// LSTF slack from the virtual-clock rule at several `rest` estimates.
pub fn fig4(scale: &Scale) -> Vec<(String, Vec<FairnessPoint>)> {
    let factory = || {
        internet2::build(
            &I2Config {
                variant: I2Variant::Access10g10g,
                core_bw: Bandwidth::gbps(10),
                edges_per_core: scale.edges_per_core,
                core_prop_scale_percent: 10,
                ..Default::default()
            },
            TraceLevel::Delivery,
        )
    };
    let topo = factory();
    let n_flows = (topo.hosts.len() * 9 / 10).max(2);
    let flows = to_flow_descs(&ups_flowgen::long_lived_flows(
        &topo,
        n_flows,
        Dur::from_millis(5),
        scale.seed,
    ));
    drop(topo);
    let window = Dur::from_millis(1);
    let horizon = Time::from_millis(20);
    let mut schemes = vec![Scheme::Fifo, Scheme::Fq];
    for rest_mbps in [1000, 500, 100, 50, 10] {
        schemes.push(Scheme::LstfVc {
            rest: Bandwidth::mbps(rest_mbps),
        });
    }
    schemes
        .into_iter()
        .map(|scheme| {
            let pts = ups_core::run_fairness(factory(), &flows, &scheme, window, horizon, None);
            (scheme.label(), pts)
        })
        .collect()
}

/// §2.3(5): non-preemptive vs preemptive LSTF on the hardest originals.
pub fn ablation_preempt(scale: &Scale) -> Vec<ReplayRow> {
    let mut rows = Vec::new();
    for original in [
        SchedKind::Sjf,
        SchedKind::Lifo,
        SchedKind::Fifo,
        SchedKind::Random,
    ] {
        for mode in [ReplayMode::lstf(), ReplayMode::lstf_preemptive()] {
            rows.push(
                run_replay(
                    TopoKind::I2(I2Variant::Default1g10g),
                    scale,
                    0.7,
                    original,
                    mode,
                )
                .0,
            );
        }
    }
    rows
}

/// §2.3(7) + appendices: same original schedule replayed under every
/// candidate UPS.
pub fn ablation_priority(scale: &Scale) -> Vec<ReplayRow> {
    let kind = TopoKind::I2(I2Variant::Default1g10g);
    let mut orig_topo = kind.build(&scale.sim());
    let flows = default_udp_workload(&orig_topo, 0.7, scale.horizon, scale.seed);
    let schedule = record_original(&mut orig_topo, &flows, SchedKind::Random, scale.seed, 1500);
    drop(orig_topo);
    [
        ReplayMode::lstf(),
        ReplayMode::Priority,
        ReplayMode::Edf,
        ReplayMode::Omniscient,
    ]
    .into_iter()
    .map(|mode| {
        let mut topo = kind.build(&scale.sim());
        let report = replay_schedule(&mut topo, &schedule, mode);
        replay_row(
            kind.label(),
            0.7,
            "Random",
            mode.label().to_string(),
            CellMetrics::of(&report, &schedule),
        )
    })
    .collect()
}

/// DESIGN.md ablation: the last-bit deadline key vs the pure deadline
/// key (they coincide for uniform packet sizes; this verifies that).
pub fn ablation_lstf_key(scale: &Scale) -> Vec<ReplayRow> {
    [LstfKeyMode::LastBit, LstfKeyMode::PureDeadline]
        .into_iter()
        .map(|key| {
            run_replay(
                TopoKind::I2(I2Variant::Default1g10g),
                scale,
                0.7,
                SchedKind::Random,
                ReplayMode::Lstf {
                    preemptive: false,
                    key,
                },
            )
            .0
        })
        .collect()
}

/// §2.2 diagnostic: congestion points per packet across topologies.
pub fn congestion_points(scale: &Scale) -> Vec<(String, Vec<usize>, f64)> {
    [
        TopoKind::I2(I2Variant::Default1g10g),
        TopoKind::I2(I2Variant::Access1g1g),
        TopoKind::I2(I2Variant::Access10g10g),
        TopoKind::RocketFuel,
        TopoKind::FatTree,
    ]
    .into_iter()
    .map(|kind| {
        let mut topo = kind.build(&scale.sim());
        let flows = default_udp_workload(&topo, 0.7, scale.horizon, scale.seed);
        let schedule = record_original(&mut topo, &flows, SchedKind::Random, scale.seed, 1500);
        (
            kind.label(),
            schedule.congestion_point_histogram(),
            schedule.mean_slack() / 1e6,
        )
    })
    .collect()
}

/// Format a replay-row table for stdout.
pub fn print_replay_rows(title: &str, rows: &[ReplayRow]) {
    println!("\n=== {title} ===");
    println!(
        "{:<18} {:>5} {:<9} {:<14} {:>9} {:>12} {:>10} {:>8} {:>7} {:>12}",
        "Topology",
        "Util",
        "Original",
        "Replay",
        "Packets",
        "FracOverdue",
        "Frac>T",
        "T(us)",
        "MaxCP",
        "MeanSlack(us)"
    );
    for r in rows {
        println!(
            "{:<18} {:>4.0}% {:<9} {:<14} {:>9} {:>12.6} {:>10.6} {:>8.1} {:>7} {:>12.1}",
            r.topo,
            r.util * 100.0,
            r.original,
            r.mode,
            r.total,
            r.frac_overdue,
            r.frac_gt_t,
            r.t_us,
            r.max_cp,
            r.mean_slack_us
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            seed: 7,
            jobs: 1,
            replicates: 1,
            label: "tiny",
        }
    }

    #[test]
    fn replay_row_has_sane_fields() {
        let (row, report, schedule) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.5,
            SchedKind::Random,
            ReplayMode::lstf(),
        );
        assert!(row.total > 0);
        assert!(row.frac_overdue <= 1.0);
        assert!(row.frac_gt_t <= row.frac_overdue);
        assert_eq!(report.total, schedule.len());
        assert!(
            (row.t_us - 12.0).abs() < 1e-9,
            "T must be 12us, got {}",
            row.t_us
        );
    }

    #[test]
    fn omniscient_is_perfect_on_i2() {
        let (row, _, _) = run_replay(
            TopoKind::I2(I2Variant::Default1g10g),
            &tiny(),
            0.6,
            SchedKind::Random,
            ReplayMode::Omniscient,
        );
        assert_eq!(row.frac_overdue, 0.0, "Appendix B violated");
    }
}
