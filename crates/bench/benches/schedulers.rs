//! Criterion micro-benchmarks of the per-port schedulers: enqueue +
//! dequeue throughput for each algorithm at a realistic queue depth.
//!
//! The paper's "real implementation" discussion (§5) argues LSTF is no
//! more complex than fine-grained priorities; these numbers quantify
//! that claim for software implementations (both are O(log n) ordered
//! queues here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ups_net::testutil::queued_full;
use ups_sched::SchedKind;
use ups_sim::DetRng;

/// Pre-generate a batch of queue entries with varied keys.
fn make_batch(n: usize) -> Vec<(u64, i64, i64, u64)> {
    let mut rng = DetRng::new(7);
    (0..n)
        .map(|i| {
            (
                rng.gen_range(16),               // flow
                rng.gen_range(2_000_000) as i64, // slack
                rng.gen_range(1_000) as i64,     // prio
                i as u64,                        // enq ns
            )
        })
        .collect()
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_enq_deq");
    group.sample_size(20);
    let batch = make_batch(1024);

    for kind in [
        SchedKind::Fifo,
        SchedKind::Lifo,
        SchedKind::Random,
        SchedKind::Sjf,
        SchedKind::Srpt,
        SchedKind::Fq,
        SchedKind::Drr,
        SchedKind::FifoPlus,
        SchedKind::Lstf,
        SchedKind::Edf,
    ] {
        group.bench_function(BenchmarkId::from_parameter(kind.label()), |b| {
            b.iter(|| {
                let mut s = kind.build(ups_net::LinkId(0), 1);
                for (i, &(flow, slack, prio, enq)) in batch.iter().enumerate() {
                    let mut q = queued_full(flow, i as u64, slack, prio, enq);
                    q.arrival_seq = i as u64;
                    s.enqueue(q);
                }
                let mut out = 0u64;
                while let Some(q) = s.dequeue() {
                    out += q.pkt.seq;
                }
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
