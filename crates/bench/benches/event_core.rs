//! Microbenchmarks of the event core: the hierarchical indexed event
//! wheel (`ups_sim::EventQueue`) against a reference `BinaryHeap`
//! implementation with the same `(time, class, seq)` ordering — the
//! structure the wheel replaced.
//!
//! Two workloads, both allocation-free in steady state:
//!
//! * **hold** — the classic event-list pattern: a fixed population of
//!   pending events; each iteration pops the earliest and reschedules it
//!   a pseudo-random delay into the future. This is what the simulation
//!   main loop does with `TxDone`/`Arrive` chains.
//! * **cascade** — bursts of same-instant events across the ordering
//!   classes (arrival settling before transmission starts), the other
//!   hot pattern in the network event loop.
//!
//! `BENCH_pr4.json` records the measured wheel-vs-heap ratio; the
//! acceptance bar for PR 4 is ≥ 2× on hold.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;
use ups_sim::{DetRng, Dur, EventQueue, Time, WHEEL_HORIZON};

/// The pre-wheel event queue: one global min-heap over the full key.
struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u8, u64, E)>>,
    seq: u64,
}

impl<E: Ord> HeapQueue<E> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    fn push(&mut self, time: Time, class: u8, event: E) {
        self.heap
            .push(Reverse((time.as_ps(), class, self.seq, event)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse((t, _, _, e))| (Time(t), e))
    }
}

/// Pending-event population for the hold model: large enough that the
/// heap's O(log n) with cache-missing sift chains actually bites, and in
/// the range a loaded fat-tree sweep cell reaches.
const HOLD_EVENTS: usize = 65_536;
/// Pop-push cycles per iteration.
const HOLD_OPS: u64 = 200_000;

/// Pseudo-random reschedule delay mirroring the simulator's event mix:
/// a quarter same-instant (deferred `StartTx` after each completion),
/// half short transmission/propagation hops (µs scale), a timer band in
/// the milliseconds (TCP RTO, flow interarrivals), and a 1-in-16 tail
/// past the wheel horizon to keep the far tier honest.
fn delay(rng: &mut DetRng) -> Dur {
    match rng.next_u64() % 16 {
        0 => Dur(WHEEL_HORIZON.as_ps() + rng.next_u64() % (2 * WHEEL_HORIZON.as_ps())), // far
        1..=4 => Dur::ZERO,                           // same instant
        5..=7 => Dur(rng.next_u64() % 8_000_000_000), // ms-scale timers
        _ => Dur(rng.next_u64() % 40_000_000),        // µs-scale hops
    }
}

fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_hold");
    group.sample_size(10);
    group.throughput(Throughput::Elements(HOLD_OPS));

    group.bench_function("wheel", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = DetRng::new(7);
            for i in 0..HOLD_EVENTS as u64 {
                q.push(Time(rng.next_u64() % 4_000_000_000), (i % 4) as u8, i);
            }
            for _ in 0..HOLD_OPS {
                let (t, id) = q.pop().expect("hold population never drains");
                q.push(t + delay(&mut rng), (id % 4) as u8, id);
            }
            black_box(q.len())
        })
    });

    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = HeapQueue::new();
            let mut rng = DetRng::new(7);
            for i in 0..HOLD_EVENTS as u64 {
                q.push(Time(rng.next_u64() % 4_000_000_000), (i % 4) as u8, i);
            }
            for _ in 0..HOLD_OPS {
                let (t, id) = q.pop().expect("hold population never drains");
                q.push(t + delay(&mut rng), (id % 4) as u8, id);
            }
            black_box(q.seq)
        })
    });
    group.finish();
}

/// Same-instant cascade: each burst schedules arrivals (class 0), a
/// timer (1), completions (2) and deferred starts (3) at one instant,
/// pops them all, then advances to the next instant.
const CASCADE_BURSTS: u64 = 20_000;
const CASCADE_FANOUT: u64 = 8;

fn bench_cascade(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_cascade");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CASCADE_BURSTS * CASCADE_FANOUT));

    group.bench_function("wheel", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut sum = 0u64;
            for burst in 0..CASCADE_BURSTS {
                let t = Time(burst * 12_000_000); // one tx-time apart
                for i in 0..CASCADE_FANOUT {
                    q.push(t, (i % 4) as u8, i);
                }
                for _ in 0..CASCADE_FANOUT {
                    sum += q.pop().expect("burst pending").1;
                }
            }
            black_box(sum)
        })
    });

    group.bench_function("heap", |b| {
        b.iter(|| {
            let mut q = HeapQueue::new();
            let mut sum = 0u64;
            for burst in 0..CASCADE_BURSTS {
                let t = Time(burst * 12_000_000);
                for i in 0..CASCADE_FANOUT {
                    q.push(t, (i % 4) as u8, i);
                }
                for _ in 0..CASCADE_FANOUT {
                    sum += q.pop().expect("burst pending").1;
                }
            }
            black_box(sum)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hold, bench_cascade);
criterion_main!(benches);
