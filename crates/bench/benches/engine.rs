//! Criterion benchmarks of the simulation engine itself: end-to-end
//! packet throughput (events/second) on a loaded dumbbell, and a full
//! record+replay cycle on a small Internet2 — the unit of work every
//! Table 1 cell pays.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use ups_core::replay::{record_original, replay_schedule, ReplayMode};
use ups_core::workload::default_udp_workload;
use ups_net::TraceLevel;
use ups_sched::SchedKind;
use ups_sim::{Bandwidth, Dur};
use ups_topo::internet2::{build, I2Config, I2Variant};
use ups_topo::simple::dumbbell;

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(15);

    // How many packets does one workload push?
    let topo = dumbbell(
        4,
        Bandwidth::gbps(10),
        Bandwidth::gbps(1),
        Dur::from_micros(10),
        TraceLevel::Off,
    );
    let flows = default_udp_workload(&topo, 0.8, Dur::from_millis(10), 3);
    let pkts: u64 = flows.iter().map(|f| f.pkts).sum();
    drop(topo);

    group.throughput(Throughput::Elements(pkts));
    group.bench_function("dumbbell_udp_forwarding", |b| {
        b.iter(|| {
            let mut topo = dumbbell(
                4,
                Bandwidth::gbps(10),
                Bandwidth::gbps(1),
                Dur::from_micros(10),
                TraceLevel::Off,
            );
            let mut stamper = ups_transport::HeaderStamper::zero();
            ups_transport::inject_udp_flows(
                &mut topo.net,
                &std::sync::Arc::clone(&topo.routes),
                &flows,
                1500,
                &mut stamper,
            );
            topo.net.run_to_completion();
            black_box(topo.net.telemetry.counters.delivered)
        })
    });
    group.finish();
}

fn bench_replay_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay");
    group.sample_size(10);

    let factory = || {
        build(
            &I2Config {
                variant: I2Variant::Default1g10g,
                edges_per_core: 3,
                ..Default::default()
            },
            TraceLevel::Hops,
        )
    };
    let topo = factory();
    let flows = default_udp_workload(&topo, 0.7, Dur::from_millis(3), 1);
    drop(topo);

    group.bench_function("i2_record_plus_lstf_replay", |b| {
        b.iter(|| {
            let mut orig = factory();
            let schedule = record_original(&mut orig, &flows, SchedKind::Random, 1, 1500);
            drop(orig);
            let mut rep = factory();
            let report = replay_schedule(&mut rep, &schedule, ReplayMode::lstf());
            black_box(report.overdue)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_forwarding, bench_replay_cycle);
criterion_main!(benches);
