//! Criterion benchmarks at the registry's large-topology scale: does
//! the PR 4 allocation-free event core hold up on a fat-tree k=8 (128
//! hosts, 80 switches, 768 links) with thousands of concurrent flows?
//!
//! Three measurements isolate the layers:
//!
//! * `fattree_k8_build_routes` — topology construction plus the
//!   all-pairs route computation every sweep cell pays twice;
//! * `fattree_k8_web_forwarding` — end-to-end packet forwarding under
//!   the Poisson web workload (events/s through slab + wheel);
//! * `fattree_k8_incast_forwarding` — the same engine under the incast
//!   fan-in workload, whose synchronized bursts produce the deepest
//!   queues the registry can generate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use ups_core::workload::WorkloadKind;
use ups_net::TraceLevel;
use ups_sim::Dur;
use ups_topo::fattree::{build, FatTreeConfig};

fn k8(level: TraceLevel) -> ups_topo::Topology {
    build(&FatTreeConfig::for_k(8), level)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("large_topo");
    group.sample_size(10);
    group.bench_function("fattree_k8_build_routes", |b| {
        b.iter(|| {
            let topo = k8(TraceLevel::Off);
            black_box(topo.net.links.len())
        })
    });
    group.finish();
}

fn bench_forwarding(kind: WorkloadKind, name: &str, c: &mut Criterion) {
    let mut group = c.benchmark_group("large_topo");
    group.sample_size(10);

    let horizon = Dur::from_millis(2);
    let topo = k8(TraceLevel::Off);
    let flows = kind.build(&topo, 0.7, horizon, 3);
    let pkts: u64 = flows.iter().map(|f| f.pkts).sum();
    drop(topo);

    group.throughput(Throughput::Elements(pkts));
    group.bench_function(name, |b| {
        b.iter(|| {
            let mut topo = k8(TraceLevel::Off);
            let mut stamper = ups_transport::HeaderStamper::zero();
            let routes = std::sync::Arc::clone(&topo.routes);
            ups_transport::inject_udp_flows(&mut topo.net, &routes, &flows, 1500, &mut stamper);
            topo.net.run_to_completion();
            black_box(topo.net.telemetry.counters.delivered)
        })
    });
    group.finish();
}

fn bench_web(c: &mut Criterion) {
    bench_forwarding(WorkloadKind::Web, "fattree_k8_web_forwarding", c);
}

fn bench_incast(c: &mut Criterion) {
    bench_forwarding(WorkloadKind::Incast, "fattree_k8_incast_forwarding", c);
}

criterion_group!(benches, bench_build, bench_web, bench_incast);
criterion_main!(benches);
