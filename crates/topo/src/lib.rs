//! `ups-topo` — the paper's evaluation topologies.
//!
//! Builders produce a [`Topology`]: a wired [`Network`] plus the node/link
//! classification the workload generator and the experiment harness need
//! (host list, tiered link sets). Four families:
//!
//! * [`internet2`] — the simplified Internet-2 WAN of §2.3 (10 core
//!   routers / 16 core links), with the paper's three bandwidth variants;
//! * [`rocketfuel`] — a seeded synthetic stand-in for the RocketFuel ISP
//!   map (83 core routers / 131 core links; the real trace files are not
//!   redistributable — see DESIGN.md for the substitution argument).
//!   `RocketFuelConfig::full()` is the paper's default scenario: 10 edge
//!   routers per core, 830 hosts;
//! * [`fattree`] — a k-ary full-bisection datacenter fat-tree as in
//!   pFabric, 10 Gbps everywhere, valid for any even `k` (k=4 is the
//!   test size, k=8 the paper-scale 128-host build);
//! * [`simple`] — dumbbell / line / star fixtures for tests and examples.
//!
//! Every builder returns a validated [`Topology`]:
//!
//! ```
//! use ups_net::TraceLevel;
//! use ups_topo::fattree::{build, FatTreeConfig};
//!
//! let topo = build(&FatTreeConfig::for_k(4), TraceLevel::Off);
//! assert_eq!(topo.hosts.len(), 16);
//! assert_eq!(topo.core_links.len() + topo.access_links.len()
//!     + topo.host_links.len(), topo.net.links.len());
//! ```

#![forbid(unsafe_code)]

pub mod fattree;
pub mod internet2;
pub mod rocketfuel;
pub mod simple;

use std::sync::Arc;
use ups_net::{LinkId, Network, NodeId, RoutingTable, TraceLevel};
use ups_sim::Bandwidth;

/// Which tier a link belongs to (both directions classified the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkTier {
    /// Router-to-router core link.
    Core,
    /// Edge-router to core-router access link.
    Access,
    /// Host NIC link.
    Host,
}

/// A built topology: the network plus classification metadata.
#[derive(Debug)]
pub struct Topology {
    /// The wired network with routes computed (schedulers still FIFO).
    pub net: Network,
    /// The frozen routing table from the builder's `compute_routes()` —
    /// injection and workload calibration resolve paths through this.
    pub routes: Arc<RoutingTable>,
    /// Human-readable name, e.g. `"I2:1Gbps-10Gbps"`.
    pub name: String,
    /// All end hosts.
    pub hosts: Vec<NodeId>,
    /// Core links (both directions).
    pub core_links: Vec<LinkId>,
    /// Access (edge↔core) links.
    pub access_links: Vec<LinkId>,
    /// Host NIC links.
    pub host_links: Vec<LinkId>,
}

impl Topology {
    /// The slowest core-link bandwidth — the paper's bottleneck, whose
    /// single-MTU transmission time is the overdue threshold `T`.
    pub fn bottleneck_core_bw(&self) -> Bandwidth {
        self.core_links
            .iter()
            .map(|&l| self.net.links[l.0 as usize].bw)
            .min()
            .expect("topology has no core links")
    }

    /// Tier of a given link.
    pub fn tier(&self, l: LinkId) -> LinkTier {
        if self.core_links.contains(&l) {
            LinkTier::Core
        } else if self.access_links.contains(&l) {
            LinkTier::Access
        } else {
            LinkTier::Host
        }
    }

    /// Sanity checks every builder runs before returning: the topology
    /// has hosts, all hosts are mutually reachable, and every link is
    /// classified exactly once.
    pub fn validate(&self) {
        assert!(!self.hosts.is_empty(), "topology has no hosts");
        let total = self.core_links.len() + self.access_links.len() + self.host_links.len();
        assert_eq!(total, self.net.links.len(), "links missing a tier");
        // Reachability spot check: first host can reach every other host.
        if let (Some(&a), true) = (self.hosts.first(), self.hosts.len() > 1) {
            for &b in &self.hosts[1..] {
                let p = self.routes.resolve_path(a, b, ups_net::FlowId(0));
                assert!(p.hops() >= 2, "degenerate path {a:?}->{b:?}");
            }
        }
    }
}

/// Shared helper: attach `edges_per_core` edge routers to each core
/// router, and one host to each edge router. Returns (hosts, access
/// links, host links). This is the paper's access pattern: "We connect
/// each core router to 10 edge routers using 1 Gbps links and each edge
/// router is attached to an end host via a 10 Gbps link."
pub(crate) fn attach_edges_and_hosts(
    net: &mut Network,
    cores: &[NodeId],
    edges_per_core: usize,
    edge_core_bw: Bandwidth,
    host_edge_bw: Bandwidth,
    edge_prop: ups_sim::Dur,
    host_prop: ups_sim::Dur,
) -> (Vec<NodeId>, Vec<LinkId>, Vec<LinkId>) {
    let mut hosts = Vec::new();
    let mut access = Vec::new();
    let mut host_links = Vec::new();
    for (ci, &core) in cores.iter().enumerate() {
        for e in 0..edges_per_core {
            let edge = net.add_router(format!("edge:{ci}.{e}"));
            let (a, b) = net.add_duplex(edge, core, edge_core_bw, edge_prop);
            access.push(a);
            access.push(b);
            let host = net.add_host(format!("host:{ci}.{e}"));
            let (c, d) = net.add_duplex(host, edge, host_edge_bw, host_prop);
            host_links.push(c);
            host_links.push(d);
            hosts.push(host);
        }
    }
    (hosts, access, host_links)
}

/// Default trace level for built topologies.
pub fn default_level() -> TraceLevel {
    TraceLevel::Hops
}
