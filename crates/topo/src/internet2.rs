//! The simplified Internet-2 topology of §2.3.
//!
//! "We use a simplified Internet-2 topology, identical to the one used in
//! \[21\] (consisting of 10 routers and 16 links in the core). We connect
//! each core router to 10 edge routers using 1 Gbps links and each edge
//! router is attached to an end host via a 10 Gbps link."
//!
//! The RC3 paper's exact adjacency isn't published machine-readably, so
//! we encode a continental 10-node / 16-edge graph over the historical
//! Internet2/Abilene city set with roughly geographic propagation delays.
//! What matters for the replay results is the *tiering*: which of the
//! host / access / core bandwidths is the bottleneck, which the three
//! named variants control:
//!
//! | Variant | edge→core | host→edge | paper label |
//! |---|---|---|---|
//! | [`I2Variant::Default1g10g`] | 1 Gbps | 10 Gbps | I2:1Gbps-10Gbps |
//! | [`I2Variant::Access1g1g`] | 1 Gbps | 1 Gbps | I2:1Gbps-1Gbps |
//! | [`I2Variant::Access10g10g`] | 10 Gbps | 10 Gbps | I2:10Gbps-10Gbps |
//!
//! Core links are 1 Gbps in every variant (T = 12 µs for 1500 B), which
//! reproduces the property the paper leans on: in the 10G-10G variant
//! "both the access and edge links have a higher bandwidth than most core
//! links".

use crate::{attach_edges_and_hosts, Topology};
use ups_net::{Network, TraceLevel};
use ups_sim::{Bandwidth, Dur};

/// The ten core cities.
const CITIES: [&str; 10] = [
    "SEAT", "SUNN", "LOSA", "DENV", "KANS", "HOUS", "CHIC", "ATLA", "WASH", "NEWY",
];

/// The sixteen core edges as (city index, city index, propagation delay in
/// microseconds — roughly geographic at ~5 µs/km, scaled down 10× to keep
/// simulated horizons short, as the paper itself does for fairness runs).
const CORE_EDGES: [(usize, usize, u64); 16] = [
    (0, 1, 570), // SEAT-SUNN
    (0, 3, 530), // SEAT-DENV
    (0, 6, 920), // SEAT-CHIC
    (1, 2, 250), // SUNN-LOSA
    (1, 3, 500), // SUNN-DENV
    (2, 5, 690), // LOSA-HOUS
    (3, 4, 300), // DENV-KANS
    (3, 6, 480), // DENV-CHIC
    (4, 5, 370), // KANS-HOUS
    (4, 6, 220), // KANS-CHIC
    (5, 7, 350), // HOUS-ATLA
    (6, 7, 330), // CHIC-ATLA
    (6, 9, 360), // CHIC-NEWY
    (7, 8, 290), // ATLA-WASH
    (8, 9, 110), // WASH-NEWY
    (2, 7, 980), // LOSA-ATLA (southern long-haul)
];

/// Bandwidth variants from Table 1 row 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum I2Variant {
    /// The default scenario: 1 Gbps edge→core, 10 Gbps host→edge
    /// ("higher than usual access bandwidths ... to increase the stress
    /// on the schedulers in the routers").
    Default1g10g,
    /// 1 Gbps everywhere below the core: hosts are paced by their NIC.
    Access1g1g,
    /// 10 Gbps access and edge: core links become the only bottleneck.
    Access10g10g,
}

impl I2Variant {
    /// (edge→core, host→edge) bandwidths.
    pub fn tier_bw(self) -> (Bandwidth, Bandwidth) {
        match self {
            I2Variant::Default1g10g => (Bandwidth::gbps(1), Bandwidth::gbps(10)),
            I2Variant::Access1g1g => (Bandwidth::gbps(1), Bandwidth::gbps(1)),
            I2Variant::Access10g10g => (Bandwidth::gbps(10), Bandwidth::gbps(10)),
        }
    }

    /// The paper's label for this variant.
    pub fn label(self) -> &'static str {
        match self {
            I2Variant::Default1g10g => "I2:1Gbps-10Gbps",
            I2Variant::Access1g1g => "I2:1Gbps-1Gbps",
            I2Variant::Access10g10g => "I2:10Gbps-10Gbps",
        }
    }
}

/// Full parameter set for an Internet-2 build.
#[derive(Debug, Clone)]
pub struct I2Config {
    /// Bandwidth variant.
    pub variant: I2Variant,
    /// Core link bandwidth (default 1 Gbps).
    pub core_bw: Bandwidth,
    /// Edge routers (and thus hosts) per core router (paper: 10).
    pub edges_per_core: usize,
    /// Propagation delay of access links.
    pub edge_prop: Dur,
    /// Propagation delay of host NIC links.
    pub host_prop: Dur,
    /// Scale factor applied to the geographic core delays (1 = table
    /// values; the fairness experiment shrinks these further).
    pub core_prop_scale_percent: u64,
}

impl Default for I2Config {
    fn default() -> Self {
        I2Config {
            variant: I2Variant::Default1g10g,
            core_bw: Bandwidth::gbps(1),
            edges_per_core: 10,
            edge_prop: Dur::from_micros(20),
            host_prop: Dur::from_micros(5),
            core_prop_scale_percent: 100,
        }
    }
}

/// Build the Internet-2 topology.
pub fn build(cfg: &I2Config, level: TraceLevel) -> Topology {
    let mut net = Network::new(level);
    let cores: Vec<_> = CITIES
        .iter()
        .map(|c| net.add_router(format!("core:{c}")))
        .collect();

    let mut core_links = Vec::new();
    for &(a, b, prop_us) in &CORE_EDGES {
        let prop = Dur::from_micros(prop_us * cfg.core_prop_scale_percent / 100);
        let (l1, l2) = net.add_duplex(cores[a], cores[b], cfg.core_bw, prop);
        core_links.push(l1);
        core_links.push(l2);
    }

    let (edge_core_bw, host_edge_bw) = cfg.variant.tier_bw();
    let (hosts, access_links, host_links) = attach_edges_and_hosts(
        &mut net,
        &cores,
        cfg.edges_per_core,
        edge_core_bw,
        host_edge_bw,
        cfg.edge_prop,
        cfg.host_prop,
    );

    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: cfg.variant.label().to_string(),
        hosts,
        core_links,
        access_links,
        host_links,
    };
    topo.validate();
    topo
}

/// The default scenario of §2.3 (I2:1Gbps-10Gbps, 10 edges per core).
pub fn default_topology(level: TraceLevel) -> Topology {
    build(&I2Config::default(), level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;

    fn small(variant: I2Variant) -> Topology {
        build(
            &I2Config {
                variant,
                edges_per_core: 2,
                ..Default::default()
            },
            TraceLevel::Delivery,
        )
    }

    #[test]
    fn counts_match_paper() {
        let t = small(I2Variant::Default1g10g);
        // 10 core routers and 16 duplex core links (32 unidirectional).
        assert_eq!(t.core_links.len(), 32);
        assert_eq!(t.hosts.len(), 20); // 2 per core here
                                       // Full build: 10 hosts per core.
        let full = build(&I2Config::default(), TraceLevel::Off);
        assert_eq!(full.hosts.len(), 100);
    }

    #[test]
    fn hop_counts_in_paper_range() {
        // "The number of hops per packet is in the range of 4 to 7,
        // excluding the end hosts" — with the host NIC links included our
        // path lengths are paper_hops + 1, so expect 4..=8 links and
        // at least 2 router-hops beyond the two stub chains.
        let t = small(I2Variant::Default1g10g);
        let mut lens = Vec::new();
        for &a in &t.hosts {
            for &b in &t.hosts {
                if a != b {
                    lens.push(t.routes.resolve_path(a, b, FlowId(1)).hops());
                }
            }
        }
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(min >= 4, "min hops {min}");
        assert!(max <= 9, "max hops {max}");
    }

    #[test]
    fn variants_set_tier_bandwidths() {
        let t = small(I2Variant::Access10g10g);
        for &l in &t.access_links {
            assert_eq!(t.net.links[l.0 as usize].bw, Bandwidth::gbps(10));
        }
        let t = small(I2Variant::Access1g1g);
        for &l in &t.host_links {
            assert_eq!(t.net.links[l.0 as usize].bw, Bandwidth::gbps(1));
        }
    }

    #[test]
    fn bottleneck_is_core_1gbps() {
        let t = small(I2Variant::Default1g10g);
        assert_eq!(t.bottleneck_core_bw(), Bandwidth::gbps(1));
        // T = 12us for 1500B at 1Gbps — the paper's threshold.
        assert_eq!(t.bottleneck_core_bw().tx_time(1500), Dur::from_micros(12));
    }
}
