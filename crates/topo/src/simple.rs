//! Small fixture topologies for tests, examples, and theory
//! counterexamples: dumbbell, line, and star.

use crate::Topology;
use ups_net::{Network, TraceLevel};
use ups_sim::{Bandwidth, Dur};

/// Dumbbell: `n` source hosts and `n` sink hosts joined by one
/// bottleneck link between two routers.
///
/// ```text
/// s0 ─┐                     ┌─ d0
/// s1 ─┼─ rL ══bottleneck══ rR ┼─ d1
/// s2 ─┘                     └─ d2
/// ```
pub fn dumbbell(
    n: usize,
    access_bw: Bandwidth,
    bottleneck_bw: Bandwidth,
    prop: Dur,
    level: TraceLevel,
) -> Topology {
    let mut net = Network::new(level);
    let rl = net.add_router("rL");
    let rr = net.add_router("rR");
    let (c1, c2) = net.add_duplex(rl, rr, bottleneck_bw, prop);

    let mut hosts = Vec::new();
    let mut host_links = Vec::new();
    for i in 0..n {
        let s = net.add_host(format!("src{i}"));
        let (l1, l2) = net.add_duplex(s, rl, access_bw, prop);
        host_links.extend([l1, l2]);
        hosts.push(s);
    }
    for i in 0..n {
        let d = net.add_host(format!("dst{i}"));
        let (l1, l2) = net.add_duplex(d, rr, access_bw, prop);
        host_links.extend([l1, l2]);
        hosts.push(d);
    }
    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: format!("Dumbbell(n={n})"),
        hosts,
        core_links: vec![c1, c2],
        access_links: Vec::new(),
        host_links,
    };
    topo.validate();
    topo
}

/// Line of `routers` routers with one host at each end.
pub fn line(routers: usize, bw: Bandwidth, prop: Dur, level: TraceLevel) -> Topology {
    assert!(routers >= 1);
    let mut net = Network::new(level);
    let h0 = net.add_host("h0");
    let rs: Vec<_> = (0..routers)
        .map(|i| net.add_router(format!("r{i}")))
        .collect();
    let h1 = net.add_host("h1");

    let mut host_links = Vec::new();
    let mut core_links = Vec::new();
    let (l1, l2) = net.add_duplex(h0, rs[0], bw, prop);
    host_links.extend([l1, l2]);
    for w in rs.windows(2) {
        let (l1, l2) = net.add_duplex(w[0], w[1], bw, prop);
        core_links.extend([l1, l2]);
    }
    let (l1, l2) = net.add_duplex(*rs.last().unwrap(), h1, bw, prop);
    host_links.extend([l1, l2]);

    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: format!("Line(r={routers})"),
        hosts: vec![h0, h1],
        core_links: if core_links.is_empty() {
            // Single-router line: classify the host links as core so the
            // bottleneck query still works.
            host_links.clone()
        } else {
            core_links
        },
        access_links: Vec::new(),
        host_links,
    };
    topo
}

/// Star: `n` leaf hosts around one router; every pair communicates
/// through the hub (single congestion point per packet).
pub fn star(n: usize, bw: Bandwidth, prop: Dur, level: TraceLevel) -> Topology {
    let mut net = Network::new(level);
    let hub = net.add_router("hub");
    let mut hosts = Vec::new();
    let mut host_links = Vec::new();
    for i in 0..n {
        let h = net.add_host(format!("leaf{i}"));
        let (l1, l2) = net.add_duplex(h, hub, bw, prop);
        host_links.extend([l1, l2]);
        hosts.push(h);
    }
    let routes = net.compute_routes();
    Topology {
        net,
        routes,
        name: format!("Star(n={n})"),
        hosts,
        core_links: host_links.clone(),
        access_links: Vec::new(),
        host_links: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;

    #[test]
    fn dumbbell_paths_cross_bottleneck() {
        let t = dumbbell(
            3,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Off,
        );
        assert_eq!(t.hosts.len(), 6);
        let p = t.routes.resolve_path(t.hosts[0], t.hosts[3], FlowId(0));
        assert_eq!(p.hops(), 3);
        assert_eq!(p.bottleneck(), Bandwidth::gbps(1));
    }

    #[test]
    fn line_has_expected_length() {
        let t = line(4, Bandwidth::gbps(1), Dur::ZERO, TraceLevel::Off);
        let p = t.routes.resolve_path(t.hosts[0], t.hosts[1], FlowId(0));
        assert_eq!(p.hops(), 5);
    }

    #[test]
    fn star_pairs_are_two_hops() {
        let t = star(5, Bandwidth::gbps(1), Dur::ZERO, TraceLevel::Off);
        for &b in &t.hosts[1..] {
            let p = t.routes.resolve_path(t.hosts[0], b, FlowId(0));
            assert_eq!(p.hops(), 2);
        }
    }
}
