//! A seeded synthetic stand-in for the RocketFuel ISP topology of §2.3:
//! 83 core routers and 131 core links.
//!
//! The measured RocketFuel maps \[29\] are not redistributable, so we
//! generate a deterministic graph with the same size and the property the
//! paper attributes its replay behaviour to: "half of the core links in
//! the Rocketfuel topology are set to have bandwidths smaller than the
//! access links". Construction: a random spanning tree (guaranteeing
//! connectivity) plus preferential-attachment extra edges up to the link
//! budget — the standard recipe for ISP-like degree skew.

use crate::{attach_edges_and_hosts, Topology};
use ups_net::{Network, TraceLevel};
use ups_sim::{Bandwidth, DetRng, Dur};

/// Parameters for the synthetic RocketFuel-like build.
#[derive(Debug, Clone)]
pub struct RocketFuelConfig {
    /// Core routers (paper: 83).
    pub routers: usize,
    /// Core links (paper: 131).
    pub links: usize,
    /// RNG seed for the graph shape.
    pub seed: u64,
    /// Bandwidth of the slow half of the core ("smaller than the access
    /// links", which are 1 Gbps).
    pub slow_core_bw: Bandwidth,
    /// Bandwidth of the fast half of the core.
    pub fast_core_bw: Bandwidth,
    /// Edge routers per core router. The paper uses the default scenario
    /// (10); the default here is 2 to keep test runs small — benches
    /// raise it.
    pub edges_per_core: usize,
}

impl Default for RocketFuelConfig {
    fn default() -> Self {
        RocketFuelConfig {
            routers: 83,
            links: 131,
            seed: 0x0C0FFEE,
            slow_core_bw: Bandwidth::mbps(500),
            fast_core_bw: Bandwidth::mbps(2500),
            edges_per_core: 2,
        }
    }
}

impl RocketFuelConfig {
    /// The paper's default scenario at full scale: 83 core routers, 131
    /// core links, and **10** edge routers (each with a host) per core —
    /// 830 hosts. This is what §2.3 actually evaluates; [`Default`]
    /// keeps `edges_per_core: 2` so unit-test builds stay small.
    ///
    /// ```
    /// use ups_topo::rocketfuel::RocketFuelConfig;
    ///
    /// let full = RocketFuelConfig::full();
    /// assert_eq!(full.edges_per_core, 10);
    /// assert_eq!(full.expected_hosts(), 830);
    /// ```
    pub fn full() -> RocketFuelConfig {
        RocketFuelConfig {
            edges_per_core: 10,
            ..Default::default()
        }
    }

    /// Hosts the build will produce: one per edge router,
    /// `routers × edges_per_core`.
    pub fn expected_hosts(&self) -> usize {
        self.routers * self.edges_per_core
    }

    /// Unidirectional core links the build will produce (`links` duplex
    /// pairs).
    pub fn expected_core_links(&self) -> usize {
        self.links * 2
    }
}

/// Build the synthetic RocketFuel-like topology.
///
/// ```
/// use ups_net::TraceLevel;
/// use ups_topo::rocketfuel::{build, RocketFuelConfig};
///
/// let topo = build(&RocketFuelConfig::default(), TraceLevel::Off);
/// assert_eq!(topo.core_links.len(), 131 * 2);
/// assert_eq!(topo.hosts.len(), 83 * 2); // Default keeps 2 edges/core
/// ```
pub fn build(cfg: &RocketFuelConfig, level: TraceLevel) -> Topology {
    assert!(cfg.links >= cfg.routers - 1, "too few links for a tree");
    let mut rng = DetRng::new(cfg.seed);
    let mut net = Network::new(level);
    let cores: Vec<_> = (0..cfg.routers)
        .map(|i| net.add_router(format!("core:r{i}")))
        .collect();

    // Random spanning tree: attach node i to a uniformly random earlier
    // node; then extra edges with degree-proportional endpoint choice.
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(cfg.links);
    let mut degree = vec![0usize; cfg.routers];
    let connect = |edges: &mut Vec<(usize, usize)>, degree: &mut Vec<usize>, a: usize, b: usize| {
        edges.push((a.min(b), a.max(b)));
        degree[a] += 1;
        degree[b] += 1;
    };
    for i in 1..cfg.routers {
        let j = rng.gen_index(i);
        connect(&mut edges, &mut degree, i, j);
    }
    // Degree-weighted endpoint sampling (preferential attachment).
    let pick_weighted = |rng: &mut DetRng, degree: &[usize]| -> usize {
        let total: usize = degree.iter().sum();
        let mut x = rng.gen_index(total.max(1));
        for (i, &d) in degree.iter().enumerate() {
            if x < d {
                return i;
            }
            x -= d;
        }
        degree.len() - 1
    };
    let mut guard = 0;
    while edges.len() < cfg.links {
        let a = pick_weighted(&mut rng, &degree);
        let b = rng.gen_index(cfg.routers);
        let e = (a.min(b), a.max(b));
        if a != b && !edges.contains(&e) {
            connect(&mut edges, &mut degree, a, b);
        }
        guard += 1;
        assert!(guard < 100_000, "edge sampling stalled");
    }

    // Half slow / half fast core links; propagation 100–1000 us.
    let mut core_links = Vec::new();
    for (k, &(a, b)) in edges.iter().enumerate() {
        let bw = if k % 2 == 0 {
            cfg.slow_core_bw
        } else {
            cfg.fast_core_bw
        };
        let prop = Dur::from_micros(100 + rng.gen_range(900));
        let (l1, l2) = net.add_duplex(cores[a], cores[b], bw, prop);
        core_links.push(l1);
        core_links.push(l2);
    }

    let (hosts, access_links, host_links) = attach_edges_and_hosts(
        &mut net,
        &cores,
        cfg.edges_per_core,
        Bandwidth::gbps(1),
        Bandwidth::gbps(10),
        Dur::from_micros(20),
        Dur::from_micros(5),
    );

    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: format!("RocketFuel({}r/{}l)", cfg.routers, cfg.links),
        hosts,
        core_links,
        access_links,
        host_links,
    };
    topo.validate();
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_scale() {
        let t = build(&RocketFuelConfig::default(), TraceLevel::Off);
        assert_eq!(t.core_links.len(), 131 * 2);
        assert_eq!(t.hosts.len(), 83 * 2);
    }

    #[test]
    fn half_the_core_is_slower_than_access() {
        let t = build(&RocketFuelConfig::default(), TraceLevel::Off);
        let slow = t
            .core_links
            .iter()
            .filter(|&&l| t.net.links[l.0 as usize].bw < Bandwidth::gbps(1))
            .count();
        // Links are duplex pairs, alternating slow/fast: ~half slow.
        let frac = slow as f64 / t.core_links.len() as f64;
        assert!((frac - 0.5).abs() < 0.05, "slow fraction {frac}");
    }

    #[test]
    fn full_scale_matches_the_paper_scenario() {
        let cfg = RocketFuelConfig::full();
        let t = build(&cfg, TraceLevel::Off);
        assert_eq!(t.hosts.len(), 830); // 83 cores x 10 edges
        assert_eq!(t.hosts.len(), cfg.expected_hosts());
        assert_eq!(t.core_links.len(), cfg.expected_core_links());
        assert_eq!(t.access_links.len(), 830 * 2);
        assert_eq!(t.host_links.len(), 830 * 2);
    }

    #[test]
    fn tier_bandwidths_are_ordered_slow_core_below_access_below_host() {
        let t = build(&RocketFuelConfig::full(), TraceLevel::Off);
        let bw = |l: &ups_net::LinkId| t.net.links[l.0 as usize].bw;
        // The paper's property: half the core is *slower* than the
        // 1 Gbps access tier, and hosts connect at 10 Gbps above both.
        assert_eq!(t.bottleneck_core_bw(), Bandwidth::mbps(500));
        assert!(t.access_links.iter().all(|l| bw(l) == Bandwidth::gbps(1)));
        assert!(t.host_links.iter().all(|l| bw(l) == Bandwidth::gbps(10)));
        assert!(t.core_links.iter().any(|l| bw(l) > Bandwidth::gbps(1)));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = build(&RocketFuelConfig::default(), TraceLevel::Off);
        let b = build(&RocketFuelConfig::default(), TraceLevel::Off);
        assert_eq!(a.net.links.len(), b.net.links.len());
        for (x, y) in a.net.links.iter().zip(&b.net.links) {
            assert_eq!((x.from, x.to, x.bw), (y.from, y.to, y.bw));
        }
    }

    #[test]
    fn different_seed_different_graph() {
        let a = build(&RocketFuelConfig::default(), TraceLevel::Off);
        let b = build(
            &RocketFuelConfig {
                seed: 999,
                ..Default::default()
            },
            TraceLevel::Off,
        );
        let same = a
            .net
            .links
            .iter()
            .zip(&b.net.links)
            .filter(|(x, y)| (x.from, x.to) == (y.from, y.to))
            .count();
        assert!(same < a.net.links.len(), "graphs identical across seeds");
    }
}
