//! k-ary full-bisection-bandwidth fat-tree (the pFabric datacenter
//! topology of §2.3 Table 1 row 4 and the FCT experiments' heritage \[3\]).
//!
//! Standard Al-Fares construction: `k` pods, each with `k/2` edge and
//! `k/2` aggregation switches; `(k/2)²` core switches; `k³/4` hosts; every
//! link 10 Gbps. All inter-tier links have equal cost, so the Dijkstra
//! ECMP sets in `ups-net` fan flows across the `(k/2)²` core paths by
//! flow hash, as real datacenters do.

use crate::Topology;
use ups_net::{Network, TraceLevel};
use ups_sim::{Bandwidth, Dur};

/// Parameters for the fat-tree build.
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// Pod arity; must be even. k=4 → 16 hosts, k=8 → 128 hosts.
    pub k: usize,
    /// Uniform link bandwidth (paper: 10 Gbps).
    pub bw: Bandwidth,
    /// Uniform link propagation delay (intra-DC: small).
    pub prop: Dur,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            k: 8,
            bw: Bandwidth::gbps(10),
            prop: Dur::from_nanos(500),
        }
    }
}

/// Build the fat-tree.
pub fn build(cfg: &FatTreeConfig, level: TraceLevel) -> Topology {
    assert!(cfg.k >= 2 && cfg.k % 2 == 0, "fat-tree k must be even");
    let k = cfg.k;
    let half = k / 2;
    let mut net = Network::new(level);

    // Core switches: (k/2)^2, indexed (i, j).
    let cores: Vec<_> = (0..half * half)
        .map(|i| net.add_router(format!("dc-core:{i}")))
        .collect();

    let mut core_links = Vec::new();
    let mut access_links = Vec::new();
    let mut host_links = Vec::new();
    let mut hosts = Vec::new();

    for pod in 0..k {
        let aggs: Vec<_> = (0..half)
            .map(|a| net.add_router(format!("agg:{pod}.{a}")))
            .collect();
        let edges: Vec<_> = (0..half)
            .map(|e| net.add_router(format!("tor:{pod}.{e}")))
            .collect();

        // Aggregation i connects to core switches [i*half, (i+1)*half).
        for (i, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let (l1, l2) = net.add_duplex(agg, cores[i * half + j], cfg.bw, cfg.prop);
                core_links.push(l1);
                core_links.push(l2);
            }
        }
        // Full bipartite agg <-> edge inside the pod.
        for &agg in &aggs {
            for &edge in &edges {
                let (l1, l2) = net.add_duplex(edge, agg, cfg.bw, cfg.prop);
                access_links.push(l1);
                access_links.push(l2);
            }
        }
        // k/2 hosts per edge switch.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = net.add_host(format!("dchost:{pod}.{e}.{h}"));
                let (l1, l2) = net.add_duplex(host, edge, cfg.bw, cfg.prop);
                host_links.push(l1);
                host_links.push(l2);
                hosts.push(host);
            }
        }
    }

    net.compute_routes();
    let topo = Topology {
        net,
        name: format!("FatTree(k={k})"),
        hosts,
        core_links,
        access_links,
        host_links,
    };
    topo.validate();
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;

    fn k4() -> Topology {
        build(
            &FatTreeConfig {
                k: 4,
                ..Default::default()
            },
            TraceLevel::Off,
        )
    }

    #[test]
    fn k4_has_canonical_counts() {
        let t = k4();
        assert_eq!(t.hosts.len(), 16); // k^3/4
                                       // Switches: 4 core + 8 agg + 8 edge = 20.
        let routers = t.net.nodes.iter().filter(|n| !n.is_host()).count();
        assert_eq!(routers, 20);
    }

    #[test]
    fn intra_pod_paths_avoid_core() {
        let t = k4();
        // Hosts 0 and 1 share a ToR: 2 hops.
        let p = t.net.resolve_path(t.hosts[0], t.hosts[1], FlowId(0));
        assert_eq!(p.hops(), 2);
        // Hosts 0 and 2 share a pod but not a ToR: 4 hops (via agg).
        let p = t.net.resolve_path(t.hosts[0], t.hosts[2], FlowId(0));
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn inter_pod_paths_use_core_with_ecmp_spread() {
        let t = k4();
        // Hosts in different pods: 6 hops via core.
        let mut used_cores = std::collections::HashSet::new();
        for f in 0..64 {
            let p = t.net.resolve_path(t.hosts[0], t.hosts[8], FlowId(f));
            assert_eq!(p.hops(), 6);
            // Middle link's endpoint is the core switch.
            let mid = p.links[2];
            used_cores.insert(t.net.links[mid.0 as usize].from);
        }
        assert!(
            used_cores.len() >= 2,
            "ECMP not spreading across cores: {used_cores:?}"
        );
    }

    #[test]
    fn uniform_10g_means_t_is_1_2us() {
        let t = k4();
        assert_eq!(t.bottleneck_core_bw(), Bandwidth::gbps(10));
        assert_eq!(t.bottleneck_core_bw().tx_time(1500), Dur::from_nanos(1200));
    }
}
