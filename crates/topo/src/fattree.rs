//! k-ary full-bisection-bandwidth fat-tree (the pFabric datacenter
//! topology of §2.3 Table 1 row 4 and the FCT experiments' heritage \[3\]).
//!
//! Standard Al-Fares construction: `k` pods, each with `k/2` edge and
//! `k/2` aggregation switches; `(k/2)²` core switches; `k³/4` hosts; every
//! link 10 Gbps. All inter-tier links have equal cost, so the Dijkstra
//! ECMP sets in `ups-net` fan flows across the `(k/2)²` core paths by
//! flow hash, as real datacenters do.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use crate::Topology;
use ups_net::{Network, TraceLevel};
use ups_sim::{Bandwidth, Dur};

/// Parameters for the fat-tree build. Valid for any even `k ≥ 2`
/// ([`FatTreeConfig::validate`]); the closed-form size helpers make the
/// k=8 (and beyond) scale explicit before paying for a build.
///
/// ```
/// use ups_topo::fattree::FatTreeConfig;
///
/// let k8 = FatTreeConfig::for_k(8);
/// assert_eq!(k8.expected_hosts(), 128);     // k^3/4
/// assert_eq!(k8.expected_switches(), 80);   // (k/2)^2 core + k^2 pod
/// assert!(k8.validate().is_ok());
/// assert!(FatTreeConfig::for_k(5).validate().is_err()); // odd k
/// ```
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// Pod arity; must be even. k=4 → 16 hosts, k=8 → 128 hosts.
    pub k: usize,
    /// Uniform link bandwidth (paper: 10 Gbps).
    pub bw: Bandwidth,
    /// Uniform link propagation delay (intra-DC: small).
    pub prop: Dur,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig::for_k(8)
    }
}

impl FatTreeConfig {
    /// Paper-standard parameters (10 Gbps everywhere, 500 ns links) at
    /// the given arity.
    pub fn for_k(k: usize) -> FatTreeConfig {
        FatTreeConfig {
            k,
            bw: Bandwidth::gbps(10),
            prop: Dur::from_nanos(500),
        }
    }

    /// Check the Al-Fares construction's structural requirement
    /// (`k` even and ≥ 2) without building anything.
    pub fn validate(&self) -> Result<(), String> {
        if self.k < 2 || self.k % 2 != 0 {
            return Err(format!("fat-tree k must be even and >= 2, got {}", self.k));
        }
        Ok(())
    }

    /// Hosts the build will produce: `k³/4`.
    pub fn expected_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    /// Switches the build will produce: `(k/2)²` core + `k²` pod
    /// (aggregation + edge).
    pub fn expected_switches(&self) -> usize {
        (self.k / 2) * (self.k / 2) + self.k * self.k
    }

    /// Unidirectional links per tier the build will produce — each of
    /// (core, access, host) is `k·(k/2)²` duplex pairs, i.e.
    /// `k³/2` unidirectional links.
    pub fn expected_links_per_tier(&self) -> usize {
        self.k * (self.k / 2) * (self.k / 2) * 2
    }
}

/// Build the fat-tree.
///
/// ```
/// use ups_net::TraceLevel;
/// use ups_topo::fattree::{build, FatTreeConfig};
///
/// let topo = build(&FatTreeConfig::for_k(4), TraceLevel::Off);
/// assert_eq!(topo.hosts.len(), 16);
/// assert_eq!(topo.name, "FatTree(k=4)");
/// ```
pub fn build(cfg: &FatTreeConfig, level: TraceLevel) -> Topology {
    if let Err(e) = cfg.validate() {
        panic!("{e}");
    }
    let k = cfg.k;
    let half = k / 2;
    let mut net = Network::new(level);

    // Core switches: (k/2)^2, indexed (i, j).
    let cores: Vec<_> = (0..half * half)
        .map(|i| net.add_router(format!("dc-core:{i}")))
        .collect();

    let mut core_links = Vec::new();
    let mut access_links = Vec::new();
    let mut host_links = Vec::new();
    let mut hosts = Vec::new();

    for pod in 0..k {
        let aggs: Vec<_> = (0..half)
            .map(|a| net.add_router(format!("agg:{pod}.{a}")))
            .collect();
        let edges: Vec<_> = (0..half)
            .map(|e| net.add_router(format!("tor:{pod}.{e}")))
            .collect();

        // Aggregation i connects to core switches [i*half, (i+1)*half).
        for (i, &agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let (l1, l2) = net.add_duplex(agg, cores[i * half + j], cfg.bw, cfg.prop);
                core_links.push(l1);
                core_links.push(l2);
            }
        }
        // Full bipartite agg <-> edge inside the pod.
        for &agg in &aggs {
            for &edge in &edges {
                let (l1, l2) = net.add_duplex(edge, agg, cfg.bw, cfg.prop);
                access_links.push(l1);
                access_links.push(l2);
            }
        }
        // k/2 hosts per edge switch.
        for (e, &edge) in edges.iter().enumerate() {
            for h in 0..half {
                let host = net.add_host(format!("dchost:{pod}.{e}.{h}"));
                let (l1, l2) = net.add_duplex(host, edge, cfg.bw, cfg.prop);
                host_links.push(l1);
                host_links.push(l2);
                hosts.push(host);
            }
        }
    }

    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: format!("FatTree(k={k})"),
        hosts,
        core_links,
        access_links,
        host_links,
    };
    // Closed-form size cross-check: the loops above must realize exactly
    // the Al-Fares counts the config promises.
    assert_eq!(topo.hosts.len(), cfg.expected_hosts());
    assert_eq!(topo.core_links.len(), cfg.expected_links_per_tier());
    assert_eq!(topo.access_links.len(), cfg.expected_links_per_tier());
    assert_eq!(topo.host_links.len(), cfg.expected_links_per_tier());
    topo.validate();
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_net::FlowId;

    fn k4() -> Topology {
        build(&FatTreeConfig::for_k(4), TraceLevel::Off)
    }

    #[test]
    fn k4_has_canonical_counts() {
        let t = k4();
        assert_eq!(t.hosts.len(), 16); // k^3/4
                                       // Switches: 4 core + 8 agg + 8 edge = 20.
        let routers = t.net.nodes.iter().filter(|n| !n.is_host()).count();
        assert_eq!(routers, 20);
    }

    #[test]
    fn intra_pod_paths_avoid_core() {
        let t = k4();
        // Hosts 0 and 1 share a ToR: 2 hops.
        let p = t.routes.resolve_path(t.hosts[0], t.hosts[1], FlowId(0));
        assert_eq!(p.hops(), 2);
        // Hosts 0 and 2 share a pod but not a ToR: 4 hops (via agg).
        let p = t.routes.resolve_path(t.hosts[0], t.hosts[2], FlowId(0));
        assert_eq!(p.hops(), 4);
    }

    #[test]
    fn inter_pod_paths_use_core_with_ecmp_spread() {
        let t = k4();
        // Hosts in different pods: 6 hops via core.
        let mut used_cores = std::collections::HashSet::new();
        for f in 0..64 {
            let p = t.routes.resolve_path(t.hosts[0], t.hosts[8], FlowId(f));
            assert_eq!(p.hops(), 6);
            // Middle link's endpoint is the core switch.
            let mid = p.links[2];
            used_cores.insert(t.net.links[mid.0 as usize].from);
        }
        assert!(
            used_cores.len() >= 2,
            "ECMP not spreading across cores: {used_cores:?}"
        );
    }

    #[test]
    fn k8_has_canonical_counts_and_uniform_bandwidth() {
        let cfg = FatTreeConfig::for_k(8);
        let t = build(&cfg, TraceLevel::Off);
        assert_eq!(t.hosts.len(), 128); // k^3/4
        let routers = t.net.nodes.iter().filter(|n| !n.is_host()).count();
        assert_eq!(routers, 80); // 16 core + 32 agg + 32 edge
        assert_eq!(t.core_links.len(), 256); // k(k/2)^2 duplex pairs
        assert_eq!(t.access_links.len(), 256);
        assert_eq!(t.host_links.len(), 256);
        // Full bisection: every tier runs at the same 10 Gbps.
        for l in &t.net.links {
            assert_eq!(l.bw, Bandwidth::gbps(10));
        }
    }

    #[test]
    fn k8_inter_pod_paths_spread_over_cores() {
        let t = build(&FatTreeConfig::for_k(8), TraceLevel::Off);
        let mut used_cores = std::collections::HashSet::new();
        for f in 0..256 {
            // Hosts 0 and 100 live in different pods (16 hosts per pod).
            let p = t.routes.resolve_path(t.hosts[0], t.hosts[100], FlowId(f));
            assert_eq!(p.hops(), 6);
            used_cores.insert(t.net.links[p.links[2].0 as usize].from);
        }
        // The flow hash is hop-invariant (same index at the ToR and agg
        // ECMP sets, both width k/2), so one src-dst pair reaches the
        // k/2 "diagonal" cores — 4 of 16 at k=8.
        assert_eq!(
            used_cores.len(),
            4,
            "expected the k/2 diagonal cores, got {used_cores:?}"
        );
    }

    #[test]
    fn odd_or_tiny_k_is_rejected() {
        assert!(FatTreeConfig::for_k(7).validate().is_err());
        assert!(FatTreeConfig::for_k(0).validate().is_err());
        for k in [2, 4, 6, 8, 10] {
            assert!(FatTreeConfig::for_k(k).validate().is_ok());
        }
    }

    #[test]
    fn uniform_10g_means_t_is_1_2us() {
        let t = k4();
        assert_eq!(t.bottleneck_core_bw(), Bandwidth::gbps(10));
        assert_eq!(t.bottleneck_core_bw().tx_time(1500), Dur::from_nanos(1200));
    }
}
