//! A small deterministic RNG for simulation.
//!
//! Every stochastic component of the simulator (Random scheduler, Poisson
//! flow arrivals, heavy-tailed size sampling, jittered start times) draws
//! from an explicitly seeded [`DetRng`]. We implement xoshiro256++ seeded
//! via SplitMix64 rather than pulling `rand`'s platform-entropy path into
//! the simulator crates: identical seeds must give identical schedules on
//! every platform, forever, because the replay experiments diff two runs
//! picosecond-for-picosecond.

/// Deterministic xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derive an independent child stream; used to give each host / each
    /// component its own stream so adding one component never perturbs the
    /// draws seen by another.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let mixed = self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        DetRng::new(mixed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift with rejection for exact uniformity.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform index in `[0, n)` for container access.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]`; safe as an argument to `ln`.
    pub fn gen_f64_open(&mut self) -> f64 {
        1.0 - self.gen_f64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Exponentially distributed sample with the given rate (events/sec),
    /// returned in seconds. Used for Poisson inter-arrival times.
    pub fn gen_exp_secs(&mut self, rate_per_sec: f64) -> f64 {
        debug_assert!(rate_per_sec > 0.0);
        -self.gen_f64_open().ln() / rate_per_sec
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut r = DetRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn exp_mean_roughly_inverse_rate() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen_exp_secs(100.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn forks_are_independent_of_later_parent_use() {
        let mut parent1 = DetRng::new(5);
        let mut parent2 = DetRng::new(5);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        // Parent 1 keeps drawing; child streams must stay identical.
        for _ in 0..10 {
            parent1.next_u64();
        }
        for _ in 0..100 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
