//! Simulation time in integer picoseconds.
//!
//! Replay experiments compare packet exit times for *exact* equality
//! (`o'(p) ≤ o(p)`), so simulation time must be free of floating-point
//! rounding. One picosecond resolves every rate used in the paper exactly:
//! one bit at 1 Gbps is 1000 ps, one byte at 10 Gbps is 800 ps.
//!
//! [`Time`] is an absolute instant (ps since simulation start), [`Dur`] is a
//! non-negative span, and slack values — which go negative when a packet is
//! overdue — are plain `i64` picoseconds (see `ups-net`'s slack header).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute simulation instant, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A non-negative span of simulation time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * PS_PER_SEC)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * PS_PER_MS)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * PS_PER_US)
    }
    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns * PS_PER_NS)
    }
    /// Construct from fractional seconds (workload-generation convenience;
    /// never used on the replay comparison path).
    pub fn from_secs_f64(s: f64) -> Time {
        debug_assert!(s >= 0.0 && s.is_finite());
        Time((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Convert to fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Convert to fractional microseconds (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// `self − earlier`, panicking in debug builds if `earlier` is later.
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(
            self >= earlier,
            "Time::since would underflow: {self:?} < {earlier:?}"
        );
        Dur(self.0 - earlier.0)
    }

    /// Signed difference `self − other` in picoseconds (slack arithmetic).
    pub fn signed_since(self, other: Time) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Saturating conversion of a signed picosecond offset into an instant.
    pub fn offset(self, ps: i64) -> Time {
        if ps >= 0 {
            Time(self.0.saturating_add(ps as u64))
        } else {
            Time(self.0.saturating_sub(ps.unsigned_abs()))
        }
    }
}

impl Dur {
    /// A zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * PS_PER_SEC)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * PS_PER_MS)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * PS_PER_US)
    }
    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns * PS_PER_NS)
    }
    /// Construct from fractional seconds (workload generation only).
    pub fn from_secs_f64(s: f64) -> Dur {
        debug_assert!(s >= 0.0 && s.is_finite());
        Dur((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Convert to fractional seconds (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Convert to fractional microseconds (reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Signed picoseconds (slack arithmetic).
    pub const fn as_i64(self) -> i64 {
        self.0 as i64
    }

    /// Integer multiply, checked in debug builds.
    pub fn times(self, n: u64) -> Dur {
        Dur(self.0.checked_mul(n).expect("Dur::times overflow"))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("Time + Dur overflow"))
    }
}
impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("Time - Dur underflow"))
    }
}
impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}
impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("Dur + Dur overflow"))
    }
}
impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}
impl Sub<Dur> for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("Dur - Dur underflow"))
    }
}
impl SubAssign<Dur> for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        self.times(rhs)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < PS_PER_US {
            write!(f, "{}ns", self.0 as f64 / PS_PER_NS as f64)
        } else if self.0 < PS_PER_SEC {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{:.6}s", self.as_secs_f64())
        }
    }
}

/// Link bandwidth in bits per second.
///
/// Transmission times are computed with integer arithmetic (u128
/// intermediate) and rounded *up*, so a byte never transmits in zero time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// An idealized infinite-rate link: serialization takes zero time.
    ///
    /// Used by the theory module's unit networks, where uncongested hops
    /// must be *exactly* free so that contention decisions land on the
    /// appendix tables' integer time grid. Never use for links that are
    /// meant to model real capacity.
    pub const INFINITE: Bandwidth = Bandwidth(u64::MAX);

    /// Construct from bits per second.
    pub const fn bps(b: u64) -> Bandwidth {
        Bandwidth(b)
    }
    /// Construct from megabits per second.
    pub const fn mbps(m: u64) -> Bandwidth {
        Bandwidth(m * 1_000_000)
    }
    /// Construct from gigabits per second.
    pub const fn gbps(g: u64) -> Bandwidth {
        Bandwidth(g * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` onto this link (ceiling division);
    /// zero for [`Bandwidth::INFINITE`].
    pub fn tx_time(self, bytes: u32) -> Dur {
        debug_assert!(self.0 > 0, "zero bandwidth");
        if self.0 == u64::MAX {
            return Dur::ZERO;
        }
        let bits = bytes as u128 * 8;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        Dur(ps as u64)
    }

    /// Bytes fully serialized in `d` (floor); used by the preemption model
    /// to account for bits already on the wire.
    pub fn bytes_in(self, d: Dur) -> u64 {
        let bits = d.0 as u128 * self.0 as u128 / PS_PER_SEC as u128;
        (bits / 8) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{}Gbps", self.0 as f64 / 1e9)
        } else {
            write!(f, "{}Mbps", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_is_exact_for_paper_rates() {
        // 1500 B at 1 Gbps = 12 us (the paper's T for the bottleneck link).
        assert_eq!(Bandwidth::gbps(1).tx_time(1500), Dur::from_micros(12));
        // 1500 B at 10 Gbps = 1.2 us.
        assert_eq!(Bandwidth::gbps(10).tx_time(1500), Dur::from_nanos(1200));
        // 1 B at 10 Gbps = 800 ps exactly.
        assert_eq!(Bandwidth::gbps(10).tx_time(1), Dur(800));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8 bits / 3 bps = 2.666..s -> ceil.
        let d = Bandwidth::bps(3).tx_time(1);
        assert_eq!(d.0, (8 * PS_PER_SEC as u128).div_ceil(3) as u64);
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = Time::from_micros(5);
        let d = Dur::from_nanos(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.signed_since(t + d), -(d.as_i64()));
    }

    #[test]
    fn offset_handles_signs() {
        let t = Time::from_nanos(10);
        assert_eq!(t.offset(-5_000), Time::from_nanos(5));
        assert_eq!(t.offset(5_000), Time::from_nanos(15));
        assert_eq!(Time::ZERO.offset(-1), Time::ZERO); // saturates
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let bw = Bandwidth::gbps(1);
        let d = bw.tx_time(700);
        assert_eq!(bw.bytes_in(d), 700);
        // Half the time -> half the bytes.
        assert_eq!(bw.bytes_in(d / 2), 350);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Bandwidth::gbps(10)), "10Gbps");
    }
}
