//! Deterministic future-event list.
//!
//! A binary min-heap keyed by `(time, class, sequence)`:
//!
//! * events at the same instant pop in ascending **class** — the network
//!   layer uses this to settle all packet arrivals (and cascaded
//!   zero-time forwarding) before any transmission-start decision at
//!   that instant, matching the formal model where a scheduler choosing
//!   at time `t` sees every packet that has arrived by `t`;
//! * within a class, insertion order (FIFO) breaks ties, which makes the
//!   whole simulation deterministic regardless of heap internals.

use crate::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    class: u8,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event list with class-then-FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Time of the most recently popped event; pushes earlier than this
    /// are a logic error (events may not be scheduled in the past).
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedule `event` at `time` in ordering class `class` (lower pops
    /// first among same-time events). Panics if `time` is in the past.
    pub fn push(&mut self, time: Time, class: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let key = Key {
            time,
            class,
            seq: self.seq,
        };
        self.seq += 1;
        self.heap.push(Reverse(Entry { key, event }));
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.key.time;
        Some((entry.key.time, entry.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), 0, "c");
        q.push(Time::from_nanos(10), 0, "a");
        q.push(Time::from_nanos(20), 0, "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo_within_class() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        for i in 0..100 {
            q.push(t, 0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn class_orders_same_time_events() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(5);
        q.push(t, 3, "start-tx");
        q.push(t, 0, "arrive-1");
        q.push(t, 2, "tx-done");
        q.push(t, 0, "arrive-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["arrive-1", "arrive-2", "tx-done", "start-tx"]);
    }

    #[test]
    fn late_push_of_lower_class_still_pops_first() {
        // A zero-duration transmission pushes its TxDone (class 2) while
        // StartTx events (class 3) are already pending at the same time:
        // the TxDone must still pop first.
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        q.push(t, 3, "start-a");
        q.push(t, 3, "start-b");
        assert_eq!(q.pop(), Some((t, "start-a")));
        q.push(t, 2, "done-a");
        assert_eq!(q.pop(), Some((t, "done-a")));
        assert_eq!(q.pop(), Some((t, "start-b")));
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(5), 0, ());
        q.push(Time::from_nanos(9), 0, ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(5));
        // Scheduling at exactly "now" is allowed.
        q.push(q.now(), 0, ());
        assert_eq!(q.pop().unwrap().0, Time::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), 0, ());
        q.pop();
        q.push(Time::from_micros(10) - Dur::from_nanos(1), 0, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(1), 0, 1u32);
        q.push(Time::from_nanos(100), 0, 100);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_nanos(50), 0, 50);
        q.push(Time::from_nanos(75), 0, 75);
        assert_eq!(q.pop().unwrap().1, 50);
        assert_eq!(q.pop().unwrap().1, 75);
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.scheduled_total(), 4);
    }
}
