//! Deterministic future-event list: a hierarchical indexed event wheel.
//!
//! Events pop in ascending `(time, class, sequence)` order:
//!
//! * events at the same instant pop in ascending **class** — the network
//!   layer uses this to settle all packet arrivals (and cascaded
//!   zero-time forwarding) before any transmission-start decision at
//!   that instant, matching the formal model where a scheduler choosing
//!   at time `t` sees every packet that has arrived by `t`;
//! * within a class, insertion order (FIFO) breaks ties, which makes the
//!   whole simulation deterministic regardless of queue internals.
//!
//! # Structure
//!
//! The queue is a three-tier hierarchy indexed by time slot
//! (`time / 2^SLOT_BITS ps`), replacing the former single global
//! `BinaryHeap`:
//!
//! 1. **Current slot** (`cur`) — every pending event of the slot being
//!    drained, kept sorted *descending* so the next event is a `Vec::pop`
//!    away. Same-instant pushes (the dominant case: event-class cascades
//!    at one simulation instant) binary-search into this buffer.
//! 2. **Wheel** (`buckets`) — `NUM_SLOTS` unsorted buckets for events
//!    within the wheel horizon ([`WHEEL_HORIZON`], ~17 ms), indexed by
//!    `slot % NUM_SLOTS` with a word-packed occupancy bitmap for
//!    O(words) next-slot scans.
//!    Push is O(1); each bucket is sorted once, when its slot becomes
//!    current.
//! 3. **Far heap** (`far`) — a `BinaryHeap` fallback for events beyond
//!    the horizon (long TCP retransmission timers, flow arrivals). As the
//!    wheel advances, far events whose slot becomes current are merged
//!    into the drain buffer before it is sorted.
//!
//! All three tiers reuse their allocations in steady state (bucket `Vec`s
//! are swapped, never freed), so pushing and popping events performs no
//! heap allocation once the simulation has warmed up.
//!
//! # Determinism invariant
//!
//! Pop order is **identical** to a min-`BinaryHeap` over the full key
//! `(time, class, seq)`: slots partition the time axis monotonically, the
//! drain buffer holds the complete pending set of the current slot in
//! sorted order, and late same-slot pushes insert at their sorted
//! position. `tests/wheel_properties.rs` checks this equivalence against
//! a reference heap model under random interleaved push/pop.

use crate::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the wheel slot width in picoseconds (2^23 ps ≈ 8.4 µs — a
/// handful of 1500 B transmission times at 1 Gbps, so events of the same
/// queueing burst usually share a slot and the per-slot sort runs over a
/// cache-resident handful of entries).
const SLOT_BITS: u32 = 23;
/// Number of wheel buckets; must be a power of two. Together with
/// [`SLOT_BITS`] this puts the wheel horizon at ~17 ms of simulated
/// time, past which events overflow to the far heap.
const NUM_SLOTS: usize = 2048;
const SLOT_MASK: u64 = NUM_SLOTS as u64 - 1;
const OCC_WORDS: usize = NUM_SLOTS / 64;

/// How far past the last popped event the wheel tiers reach; events
/// scheduled beyond this take the far-heap path. Exposed for benches and
/// property tests that want to exercise every tier.
pub const WHEEL_HORIZON: Dur = Dur((NUM_SLOTS as u64) << SLOT_BITS);

/// Ordering key, packed to 16 bytes: `tag` holds the same-instant class
/// in its top bits and the insertion sequence below, so deriving `Ord`
/// on `(time, tag)` is exactly the documented ascending
/// `(time, class, seq)` order. 2^56 events before sequence overflow is
/// ~20 000 years of the busiest simulation we have run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    tag: u64,
}

const CLASS_SHIFT: u32 = 56;

impl Key {
    fn new(time: Time, class: u8, seq: u64) -> Key {
        debug_assert!(seq < 1 << CLASS_SHIFT, "event sequence overflow");
        Key {
            time,
            tag: (class as u64) << CLASS_SHIFT | seq,
        }
    }
}

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event list with class-then-FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Pending events of `cur_slot`, sorted descending (next pop at the
    /// back).
    cur: Vec<(Key, E)>,
    /// Absolute slot number (`time >> SLOT_BITS`) being drained.
    cur_slot: u64,
    /// Unsorted buckets for slots in `(cur_slot, cur_slot + NUM_SLOTS)`.
    buckets: Vec<Vec<(Key, E)>>,
    /// One bit per bucket: does it hold any events?
    occ: [u64; OCC_WORDS],
    /// Total events across all buckets.
    wheel_len: usize,
    /// Events at slots at or beyond the wheel horizon.
    far: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Time of the most recently popped event; pushes earlier than this
    /// are a logic error (events may not be scheduled in the past).
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            cur: Vec::new(),
            cur_slot: 0,
            buckets: std::iter::repeat_with(Vec::new).take(NUM_SLOTS).collect(),
            occ: [0; OCC_WORDS],
            wheel_len: 0,
            far: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedule `event` at `time` in ordering class `class` (lower pops
    /// first among same-time events). Panics if `time` is in the past.
    pub fn push(&mut self, time: Time, class: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let key = Key::new(time, class, self.seq);
        self.seq += 1;
        let slot = time.as_ps() >> SLOT_BITS;
        if slot == self.cur_slot {
            // Same-slot push: insert at its sorted (descending) position.
            // `partition_point` returns the count of strictly-greater
            // keys, i.e. exactly where this one belongs.
            let pos = self.cur.partition_point(|(k, _)| *k > key);
            self.cur.insert(pos, (key, event));
        } else if slot - self.cur_slot < NUM_SLOTS as u64 {
            let idx = (slot & SLOT_MASK) as usize;
            self.buckets[idx].push((key, event));
            self.occ[idx >> 6] |= 1 << (idx & 63);
            self.wheel_len += 1;
        } else {
            self.far.push(Reverse(Entry { key, event }));
        }
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.cur.is_empty() {
            self.advance()?;
        }
        let (key, event) = self.cur.pop().expect("advance() fills the drain buffer");
        self.now = key.time;
        Some((key.time, event))
    }

    /// Move `cur_slot` to the next slot holding events and load them into
    /// the (empty) drain buffer, merging wheel and far-heap sources.
    /// Returns `None` when no events are pending anywhere.
    fn advance(&mut self) -> Option<()> {
        debug_assert!(self.cur.is_empty());
        let next_wheel = (self.wheel_len > 0).then(|| self.next_occupied_slot());
        let next_far = self.far.peek().map(|Reverse(e)| slot_of(e.key.time));
        self.cur_slot = match (next_wheel, next_far) {
            (Some(w), Some(f)) => w.min(f),
            (Some(w), None) => w,
            (None, Some(f)) => f,
            (None, None) => return None,
        };
        let idx = (self.cur_slot & SLOT_MASK) as usize;
        if self.occ[idx >> 6] & (1 << (idx & 63)) != 0 {
            // Swap, don't drain: the drained Vec becomes the bucket's new
            // (empty, capacity-preserving) storage.
            std::mem::swap(&mut self.cur, &mut self.buckets[idx]);
            self.occ[idx >> 6] &= !(1 << (idx & 63));
            self.wheel_len -= self.cur.len();
        }
        // Far events whose slot has come into range join the same drain
        // buffer; later far slots stay put until a later advance.
        while let Some(Reverse(top)) = self.far.peek() {
            if slot_of(top.key.time) != self.cur_slot {
                break;
            }
            let Reverse(e) = self.far.pop().expect("peeked entry");
            self.cur.push((e.key, e.event));
        }
        // Descending order: the next event to pop sits at the back. Keys
        // are unique (seq), so unstable sort is deterministic.
        self.cur.sort_unstable_by_key(|&(k, _)| Reverse(k));
        debug_assert!(!self.cur.is_empty(), "advanced to an empty slot");
        Some(())
    }

    /// The smallest occupied slot strictly after `cur_slot`. Scans the
    /// occupancy bitmap circularly starting at `cur_slot + 1`; bucket
    /// indices map back to absolute slots by their circular distance from
    /// the scan origin. Caller guarantees `wheel_len > 0`.
    fn next_occupied_slot(&self) -> u64 {
        let start = ((self.cur_slot + 1) & SLOT_MASK) as usize;
        for step in 0..=OCC_WORDS {
            // Word containing the scan position, masked to bits >= the
            // in-word offset on the first pass (and on the wrap pass).
            let word_idx = ((start >> 6) + step) % OCC_WORDS;
            let mut word = self.occ[word_idx];
            if step == 0 {
                word &= !0u64 << (start & 63);
            }
            if word != 0 {
                let idx = (word_idx << 6) | word.trailing_zeros() as usize;
                let delta = (idx + NUM_SLOTS - start) & SLOT_MASK as usize;
                return self.cur_slot + 1 + delta as u64;
            }
        }
        unreachable!("next_occupied_slot called on an empty wheel")
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        if let Some((key, _)) = self.cur.last() {
            return Some(key.time);
        }
        let wheel_min = (self.wheel_len > 0).then(|| {
            let idx = (self.next_occupied_slot() & SLOT_MASK) as usize;
            self.buckets[idx]
                .iter()
                .map(|(k, _)| k.time)
                .min()
                .expect("occupied bucket")
        });
        let far_min = self.far.peek().map(|Reverse(e)| e.key.time);
        // Earlier slots hold strictly earlier times, so a plain min over
        // the two tier heads is the global minimum.
        match (wheel_min, far_min) {
            (Some(w), Some(f)) => Some(w.min(f)),
            (Some(w), None) => Some(w),
            (None, f) => f,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.cur.len() + self.wheel_len + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

/// Wheel slot of an instant.
fn slot_of(t: Time) -> u64 {
    t.as_ps() >> SLOT_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), 0, "c");
        q.push(Time::from_nanos(10), 0, "a");
        q.push(Time::from_nanos(20), 0, "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo_within_class() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        for i in 0..100 {
            q.push(t, 0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn class_orders_same_time_events() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(5);
        q.push(t, 3, "start-tx");
        q.push(t, 0, "arrive-1");
        q.push(t, 2, "tx-done");
        q.push(t, 0, "arrive-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["arrive-1", "arrive-2", "tx-done", "start-tx"]);
    }

    #[test]
    fn late_push_of_lower_class_still_pops_first() {
        // A zero-duration transmission pushes its TxDone (class 2) while
        // StartTx events (class 3) are already pending at the same time:
        // the TxDone must still pop first.
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        q.push(t, 3, "start-a");
        q.push(t, 3, "start-b");
        assert_eq!(q.pop(), Some((t, "start-a")));
        q.push(t, 2, "done-a");
        assert_eq!(q.pop(), Some((t, "done-a")));
        assert_eq!(q.pop(), Some((t, "start-b")));
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(5), 0, ());
        q.push(Time::from_nanos(9), 0, ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(5));
        // Scheduling at exactly "now" is allowed.
        q.push(q.now(), 0, ());
        assert_eq!(q.pop().unwrap().0, Time::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), 0, ());
        q.pop();
        q.push(Time::from_micros(10) - Dur::from_nanos(1), 0, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(1), 0, 1u32);
        q.push(Time::from_nanos(100), 0, 100);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_nanos(50), 0, 50);
        q.push(Time::from_nanos(75), 0, 75);
        assert_eq!(q.pop().unwrap().1, 50);
        assert_eq!(q.pop().unwrap().1, 75);
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.scheduled_total(), 4);
    }

    /// Far-future events (beyond the wheel horizon) overflow to the
    /// heap tier and still pop in exact key order.
    #[test]
    fn far_future_events_round_trip_through_the_heap_tier() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_HORIZON;
        let far_a = Time::ZERO + horizon + Dur::from_millis(7);
        let far_b = Time::ZERO + horizon.times(3);
        q.push(far_b, 1, "far-b");
        q.push(far_a, 0, "far-a");
        q.push(Time::from_micros(3), 0, "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_micros(3)));
        assert_eq!(q.pop(), Some((Time::from_micros(3), "near")));
        assert_eq!(q.peek_time(), Some(far_a));
        assert_eq!(q.pop(), Some((far_a, "far-a")));
        assert_eq!(q.pop(), Some((far_b, "far-b")));
        assert_eq!(q.pop(), None);
    }

    /// A far event and a wheel event landing in the same slot after the
    /// wheel advances merge into one correctly ordered drain.
    #[test]
    fn far_and_wheel_events_merge_in_the_same_slot() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_HORIZON;
        let t = Time::ZERO + horizon + Dur::from_micros(1);
        q.push(t, 1, "was-far"); // beyond horizon: lands in the far heap
        q.push(Time::from_micros(1), 0, "near");
        assert_eq!(q.pop(), Some((Time::from_micros(1), "near")));
        // Now the wheel window covers t: this push goes to a bucket.
        q.push(t, 0, "now-near");
        assert_eq!(q.pop(), Some((t, "now-near")));
        assert_eq!(q.pop(), Some((t, "was-far")));
    }

    #[test]
    fn peek_time_sees_all_tiers() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(1), 0, 0); // far tier
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.push(Time::from_micros(100), 0, 1); // wheel tier
        assert_eq!(q.peek_time(), Some(Time::from_micros(100)));
        q.pop();
        q.push(q.now(), 0, 2); // current-slot tier
        assert_eq!(q.peek_time(), Some(Time::from_micros(100)));
    }

    /// Exhaustive cross-check against a sorted reference on a dense
    /// pattern spanning slot boundaries.
    #[test]
    fn matches_reference_order_across_slot_boundaries() {
        let slot = 1u64 << SLOT_BITS;
        let mut q = EventQueue::new();
        // (time, class, seq) triples in deliberately scrambled push order.
        let mut keyed: Vec<(u64, u8, u64)> = Vec::new();
        for k in 0..6u64 {
            for &off in &[0, 1, slot - 1, slot / 2] {
                for class in [3u8, 0, 2] {
                    let seq = keyed.len() as u64;
                    q.push(Time(k * slot + off), class, seq);
                    keyed.push((k * slot + off, class, seq));
                }
            }
        }
        keyed.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expect: Vec<u64> = keyed.iter().map(|&(_, _, s)| s).collect();
        assert_eq!(got, expect);
    }
}
