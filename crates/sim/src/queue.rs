//! Deterministic future-event list: a hierarchical indexed event wheel.
//!
//! Events pop in ascending `(time, class, sequence)` order:
//!
//! * events at the same instant pop in ascending **class** — the network
//!   layer uses this to settle all packet arrivals (and cascaded
//!   zero-time forwarding) before any transmission-start decision at
//!   that instant, matching the formal model where a scheduler choosing
//!   at time `t` sees every packet that has arrived by `t`;
//! * within a class, insertion order (FIFO) breaks ties, which makes the
//!   whole simulation deterministic regardless of queue internals.
//!
//! # Structure
//!
//! The queue is a three-tier hierarchy indexed by time slot
//! (`time / 2^SLOT_BITS ps`), replacing the former single global
//! `BinaryHeap`:
//!
//! 1. **Current slot** (`cur`) — every pending event of the slot being
//!    drained, kept in a small min-heap so both popping and same-slot
//!    pushes are O(log n) with a handful of 32-byte sifts. (An earlier
//!    design kept this tier as a sorted `Vec` with binary-search inserts;
//!    profiling the fat-tree k=8 bench showed those inserts memmoving
//!    ~90 entries on average, hundreds of thousands of times per run —
//!    the single largest cost in the event core.)
//! 2. **Wheel** (`buckets`) — `NUM_SLOTS` unsorted buckets for events
//!    within the wheel horizon ([`WHEEL_HORIZON`], ~17 ms), indexed by
//!    `slot % NUM_SLOTS` with a word-packed occupancy bitmap for
//!    O(words) next-slot scans.
//!    Push is O(1); each bucket is heapified once (O(n)), when its slot
//!    becomes current.
//! 3. **Far heap** (`far`) — a `BinaryHeap` fallback for events beyond
//!    the horizon (long TCP retransmission timers, flow arrivals). As the
//!    wheel advances, far events whose slot becomes current are merged
//!    into the drain heap.
//!
//! All three tiers reuse their allocations in steady state (bucket `Vec`s
//! are swapped with the drain heap's storage, never freed), so pushing
//! and popping events performs no heap allocation once the simulation has
//! warmed up.
//!
//! # Batch-slot API
//!
//! [`EventQueue::pop_if`] exposes the head of the queue to a caller-side
//! predicate, so the simulation loop can drain a run of same-instant
//! events destined for the same component as one batch without giving up
//! pop-order determinism (the network layer batches same-instant arrivals
//! per link this way).
//!
//! # Determinism invariant
//!
//! Pop order is **identical** to a min-`BinaryHeap` over the full key
//! `(time, class, seq)`: slots partition the time axis monotonically, the
//! drain heap holds the complete pending set of the current slot, keys
//! are unique (the sequence number), and a binary heap over unique keys
//! pops them in exact ascending order. `tests/wheel_properties.rs` checks
//! this equivalence against a reference heap model under random
//! interleaved push/pop.

use crate::time::{Dur, Time};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the wheel slot width in picoseconds (2^23 ps ≈ 8.4 µs — a
/// handful of 1500 B transmission times at 1 Gbps, so events of the same
/// queueing burst usually share a slot and the per-slot heap stays
/// cache-resident).
const SLOT_BITS: u32 = 23;
/// Number of wheel buckets; must be a power of two. Together with
/// [`SLOT_BITS`] this puts the wheel horizon at ~17 ms of simulated
/// time, past which events overflow to the far heap.
const NUM_SLOTS: usize = 2048;
const SLOT_MASK: u64 = NUM_SLOTS as u64 - 1;
const OCC_WORDS: usize = NUM_SLOTS / 64;

/// How far past the last popped event the wheel tiers reach; events
/// scheduled beyond this take the far-heap path. Exposed for benches and
/// property tests that want to exercise every tier.
pub const WHEEL_HORIZON: Dur = Dur((NUM_SLOTS as u64) << SLOT_BITS);

/// Ordering key, packed to 16 bytes: `tag` holds the same-instant class
/// in its top bits and the insertion sequence below, so deriving `Ord`
/// on `(time, tag)` is exactly the documented ascending
/// `(time, class, seq)` order. 2^56 events before sequence overflow is
/// ~20 000 years of the busiest simulation we have run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    tag: u64,
}

const CLASS_SHIFT: u32 = 56;

impl Key {
    fn new(time: Time, class: u8, seq: u64) -> Key {
        debug_assert!(seq < 1 << CLASS_SHIFT, "event sequence overflow");
        Key {
            time,
            tag: (class as u64) << CLASS_SHIFT | seq,
        }
    }
}

#[derive(Debug)]
struct Entry<E> {
    key: Key,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A future-event list with class-then-FIFO tie-breaking.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Pending events of `cur_slot`, as a min-heap (unique keys make heap
    /// order exact total order).
    cur: BinaryHeap<Reverse<Entry<E>>>,
    /// Absolute slot number (`time >> SLOT_BITS`) being drained.
    cur_slot: u64,
    /// Unsorted buckets for slots in `(cur_slot, cur_slot + NUM_SLOTS)`.
    buckets: Vec<Vec<Reverse<Entry<E>>>>,
    /// One bit per bucket: does it hold any events?
    occ: [u64; OCC_WORDS],
    /// Total events across all buckets.
    wheel_len: usize,
    /// Events at slots at or beyond the wheel horizon.
    far: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Time of the most recently popped event; pushes earlier than this
    /// are a logic error (events may not be scheduled in the past).
    now: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue positioned at t = 0.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            cur: BinaryHeap::new(),
            cur_slot: 0,
            buckets: std::iter::repeat_with(Vec::new).take(NUM_SLOTS).collect(),
            occ: [0; OCC_WORDS],
            wheel_len: 0,
            far: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
        }
    }

    /// Schedule `event` at `time` in ordering class `class` (lower pops
    /// first among same-time events). Panics if `time` is in the past.
    pub fn push(&mut self, time: Time, class: u8, event: E) {
        assert!(
            time >= self.now,
            "event scheduled in the past: {time} < now {}",
            self.now
        );
        let key = Key::new(time, class, self.seq);
        self.seq += 1;
        let slot = time.as_ps() >> SLOT_BITS;
        // At the current slot (pushes are never earlier: `time >= now`
        // and `now` lives in `cur_slot`): join the drain heap, keeping
        // the invariant that it holds every pending event of the slot.
        if slot <= self.cur_slot {
            self.cur.push(Reverse(Entry { key, event }));
        } else if slot - self.cur_slot < NUM_SLOTS as u64 {
            let idx = (slot & SLOT_MASK) as usize;
            let bucket = &mut self.buckets[idx];
            if bucket.capacity() == 0 {
                // First lifetime use of this bucket: skip the doubling
                // ladder — busy simulations put tens to hundreds of
                // events in every active slot, and bucket storage is
                // recycled, never freed.
                bucket.reserve(64);
            }
            bucket.push(Reverse(Entry { key, event }));
            self.occ[idx >> 6] |= 1 << (idx & 63);
            self.wheel_len += 1;
        } else {
            self.far.push(Reverse(Entry { key, event }));
        }
    }

    /// Pop the earliest event, advancing the queue's notion of "now".
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.cur.is_empty() {
            self.advance()?;
        }
        let Reverse(e) = self.cur.pop().expect("advance() fills the drain heap");
        self.now = e.key.time;
        Some((e.key.time, e.event))
    }

    /// Pop the earliest event only if the caller's predicate accepts it.
    ///
    /// This is the batch-drain primitive: the simulation loop peeks the
    /// head, decides whether it belongs to the batch being assembled
    /// (same instant, same target component), and either consumes it or
    /// leaves the queue untouched. Accepting an event advances "now"
    /// exactly as [`EventQueue::pop`] would.
    ///
    /// Only the drain heap is consulted — deliberately. Batches extend
    /// same-instant runs, and every event at the current instant is in
    /// the drain heap by construction (`push` routes anything at or
    /// before `cur_slot` there, and entering a slot merges its bucket
    /// and far events). Rejected probes therefore never advance the
    /// wheel; eagerly advancing here would heapify future slots early
    /// and redirect their pushes into the drain heap, degrading the
    /// wheel to a single binary heap.
    pub fn pop_if(&mut self, pred: impl FnOnce(Time, &E) -> bool) -> Option<(Time, E)> {
        {
            let Reverse(head) = self.cur.peek()?;
            if !pred(head.key.time, &head.event) {
                return None;
            }
        }
        let Reverse(e) = self.cur.pop().expect("peeked entry");
        self.now = e.key.time;
        Some((e.key.time, e.event))
    }

    /// Move `cur_slot` to the next slot holding events and load them into
    /// the (empty) drain heap, merging wheel and far-heap sources.
    /// Returns `None` when no events are pending anywhere.
    fn advance(&mut self) -> Option<()> {
        debug_assert!(self.cur.is_empty());
        let next_wheel = (self.wheel_len > 0).then(|| self.next_occupied_slot());
        let next_far = self.far.peek().map(|Reverse(e)| slot_of(e.key.time));
        self.cur_slot = match (next_wheel, next_far) {
            (Some(w), Some(f)) => w.min(f),
            (Some(w), None) => w,
            (None, Some(f)) => f,
            (None, None) => return None,
        };
        let idx = (self.cur_slot & SLOT_MASK) as usize;
        if self.occ[idx >> 6] & (1 << (idx & 63)) != 0 {
            // Heapify the bucket in place (O(n), no copy), and hand the
            // drained heap's storage back to the bucket slot so both
            // allocations stay in rotation.
            let bucket = std::mem::take(&mut self.buckets[idx]);
            let drained = std::mem::replace(&mut self.cur, BinaryHeap::from(bucket));
            self.buckets[idx] = drained.into_vec();
            debug_assert!(self.buckets[idx].is_empty());
            self.occ[idx >> 6] &= !(1 << (idx & 63));
            self.wheel_len -= self.cur.len();
        }
        // Far events whose slot has come into range join the same drain
        // heap; later far slots stay put until a later advance.
        while let Some(Reverse(top)) = self.far.peek() {
            if slot_of(top.key.time) != self.cur_slot {
                break;
            }
            let e = self.far.pop().expect("peeked entry");
            self.cur.push(e);
        }
        debug_assert!(!self.cur.is_empty(), "advanced to an empty slot");
        Some(())
    }

    /// The smallest occupied slot strictly after `cur_slot`. Scans the
    /// occupancy bitmap circularly starting at `cur_slot + 1`; bucket
    /// indices map back to absolute slots by their circular distance from
    /// the scan origin. Caller guarantees `wheel_len > 0`.
    fn next_occupied_slot(&self) -> u64 {
        let start = ((self.cur_slot + 1) & SLOT_MASK) as usize;
        for step in 0..=OCC_WORDS {
            // Word containing the scan position, masked to bits >= the
            // in-word offset on the first pass (and on the wrap pass).
            let word_idx = ((start >> 6) + step) % OCC_WORDS;
            let mut word = self.occ[word_idx];
            if step == 0 {
                word &= !0u64 << (start & 63);
            }
            if word != 0 {
                let idx = (word_idx << 6) | word.trailing_zeros() as usize;
                let delta = (idx + NUM_SLOTS - start) & SLOT_MASK as usize;
                return self.cur_slot + 1 + delta as u64;
            }
        }
        unreachable!("next_occupied_slot called on an empty wheel")
    }

    /// Time of the next event without removing it.
    /// Peek the head of the current drain heap without touching the
    /// wheel. `None` means no event is pending at or before the current
    /// slot — in particular, no event at the current instant (every
    /// same-instant event is in the drain heap by construction).
    pub fn peek_cur(&self) -> Option<(Time, &E)> {
        self.cur.peek().map(|Reverse(e)| (e.key.time, &e.event))
    }

    pub fn peek_time(&self) -> Option<Time> {
        if let Some(Reverse(e)) = self.cur.peek() {
            return Some(e.key.time);
        }
        let wheel_min = (self.wheel_len > 0).then(|| {
            let idx = (self.next_occupied_slot() & SLOT_MASK) as usize;
            self.buckets[idx]
                .iter()
                .map(|Reverse(e)| e.key.time)
                .min()
                .expect("occupied bucket")
        });
        let far_min = self.far.peek().map(|Reverse(e)| e.key.time);
        // Earlier slots hold strictly earlier times, so a plain min over
        // the two tier heads is the global minimum.
        match (wheel_min, far_min) {
            (Some(w), Some(f)) => Some(w.min(f)),
            (Some(w), None) => Some(w),
            (None, f) => f,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.cur.len() + self.wheel_len + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.seq
    }
}

/// Wheel slot of an instant.
fn slot_of(t: Time) -> u64 {
    t.as_ps() >> SLOT_BITS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), 0, "c");
        q.push(Time::from_nanos(10), 0, "a");
        q.push(Time::from_nanos(20), 0, "b");
        assert_eq!(q.pop(), Some((Time::from_nanos(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_nanos(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_fifo_within_class() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        for i in 0..100 {
            q.push(t, 0, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn class_orders_same_time_events() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(5);
        q.push(t, 3, "start-tx");
        q.push(t, 0, "arrive-1");
        q.push(t, 2, "tx-done");
        q.push(t, 0, "arrive-2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["arrive-1", "arrive-2", "tx-done", "start-tx"]);
    }

    #[test]
    fn late_push_of_lower_class_still_pops_first() {
        // A zero-duration transmission pushes its TxDone (class 2) while
        // StartTx events (class 3) are already pending at the same time:
        // the TxDone must still pop first.
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        q.push(t, 3, "start-a");
        q.push(t, 3, "start-b");
        assert_eq!(q.pop(), Some((t, "start-a")));
        q.push(t, 2, "done-a");
        assert_eq!(q.pop(), Some((t, "done-a")));
        assert_eq!(q.pop(), Some((t, "start-b")));
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(5), 0, ());
        q.push(Time::from_nanos(9), 0, ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_nanos(5));
        // Scheduling at exactly "now" is allowed.
        q.push(q.now(), 0, ());
        assert_eq!(q.pop().unwrap().0, Time::from_nanos(5));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), 0, ());
        q.pop();
        q.push(Time::from_micros(10) - Dur::from_nanos(1), 0, ());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(1), 0, 1u32);
        q.push(Time::from_nanos(100), 0, 100);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Time::from_nanos(50), 0, 50);
        q.push(Time::from_nanos(75), 0, 75);
        assert_eq!(q.pop().unwrap().1, 50);
        assert_eq!(q.pop().unwrap().1, 75);
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.scheduled_total(), 4);
    }

    #[test]
    fn pop_if_consumes_only_accepted_events() {
        let mut q = EventQueue::new();
        let t = Time::from_micros(1);
        q.push(t, 0, "a");
        q.push(t, 0, "b");
        q.push(Time::from_micros(2), 0, "later");
        // Accept same-instant events tagged 'a'/'b', refuse the rest.
        assert_eq!(q.pop_if(|pt, e| pt == t && *e == "a"), Some((t, "a")));
        // Head is "b": a predicate expecting "a" must leave it in place.
        assert_eq!(q.pop_if(|pt, e| pt == t && *e == "a"), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((t, "b")));
        // Cross-instant refusal: head is at 2us, batch instant was 1us.
        assert_eq!(q.pop_if(|pt, _| pt == t), None);
        assert_eq!(q.pop(), Some((Time::from_micros(2), "later")));
        // Empty queue: pop_if is None without calling the predicate.
        assert_eq!(q.pop_if(|_, _| true), None);
    }

    #[test]
    fn pop_if_never_advances_the_wheel() {
        // pop_if probes the drain heap only: with the pending event still
        // sitting in a future wheel slot, a probe returns None and leaves
        // the queue untouched, and pop still finds the event afterwards.
        // (Same-instant events are always in the drain heap, so a batch
        // probe has nothing to look for beyond it; advancing here would
        // pull future slots into the drain heap prematurely.)
        let mut q = EventQueue::new();
        let t = Time::from_millis(1);
        q.push(t, 0, 7u32);
        assert_eq!(q.pop_if(|_, _| true), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t, 7)));
        assert_eq!(q.now(), t);
        // Once the slot is current, a probe at the head succeeds.
        q.push(t, 1, 8u32);
        assert_eq!(q.pop_if(|_, _| true), Some((t, 8)));
    }

    /// Far-future events (beyond the wheel horizon) overflow to the
    /// heap tier and still pop in exact key order.
    #[test]
    fn far_future_events_round_trip_through_the_heap_tier() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_HORIZON;
        let far_a = Time::ZERO + horizon + Dur::from_millis(7);
        let far_b = Time::ZERO + horizon.times(3);
        q.push(far_b, 1, "far-b");
        q.push(far_a, 0, "far-a");
        q.push(Time::from_micros(3), 0, "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(Time::from_micros(3)));
        assert_eq!(q.pop(), Some((Time::from_micros(3), "near")));
        assert_eq!(q.peek_time(), Some(far_a));
        assert_eq!(q.pop(), Some((far_a, "far-a")));
        assert_eq!(q.pop(), Some((far_b, "far-b")));
        assert_eq!(q.pop(), None);
    }

    /// A far event and a wheel event landing in the same slot after the
    /// wheel advances merge into one correctly ordered drain.
    #[test]
    fn far_and_wheel_events_merge_in_the_same_slot() {
        let mut q = EventQueue::new();
        let horizon = WHEEL_HORIZON;
        let t = Time::ZERO + horizon + Dur::from_micros(1);
        q.push(t, 1, "was-far"); // beyond horizon: lands in the far heap
        q.push(Time::from_micros(1), 0, "near");
        assert_eq!(q.pop(), Some((Time::from_micros(1), "near")));
        // Now the wheel window covers t: this push goes to a bucket.
        q.push(t, 0, "now-near");
        assert_eq!(q.pop(), Some((t, "now-near")));
        assert_eq!(q.pop(), Some((t, "was-far")));
    }

    #[test]
    fn peek_time_sees_all_tiers() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_secs(1), 0, 0); // far tier
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.push(Time::from_micros(100), 0, 1); // wheel tier
        assert_eq!(q.peek_time(), Some(Time::from_micros(100)));
        q.pop();
        q.push(q.now(), 0, 2); // current-slot tier
        assert_eq!(q.peek_time(), Some(Time::from_micros(100)));
    }

    /// Exhaustive cross-check against a sorted reference on a dense
    /// pattern spanning slot boundaries.
    #[test]
    fn matches_reference_order_across_slot_boundaries() {
        let slot = 1u64 << SLOT_BITS;
        let mut q = EventQueue::new();
        // (time, class, seq) triples in deliberately scrambled push order.
        let mut keyed: Vec<(u64, u8, u64)> = Vec::new();
        for k in 0..6u64 {
            for &off in &[0, 1, slot - 1, slot / 2] {
                for class in [3u8, 0, 2] {
                    let seq = keyed.len() as u64;
                    q.push(Time(k * slot + off), class, seq);
                    keyed.push((k * slot + off, class, seq));
                }
            }
        }
        keyed.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expect: Vec<u64> = keyed.iter().map(|&(_, _, s)| s).collect();
        assert_eq!(got, expect);
    }
}
