//! `ups-sim` — deterministic discrete-event simulation primitives.
//!
//! This crate is the bottom layer of the Universal Packet Scheduling
//! reproduction: an integer-picosecond clock ([`Time`], [`Dur`],
//! [`Bandwidth`]), a deterministic future-event list ([`EventQueue`]) with
//! FIFO tie-breaking, and a portable seeded RNG ([`DetRng`]).
//!
//! Design goals (in the spirit of event-driven stacks like smoltcp):
//! *simplicity and robustness* — no clever type tricks, no floating point on
//! any path that feeds a replay comparison, and bit-for-bit reproducible
//! runs from a seed.

#![forbid(unsafe_code)]

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::{EventQueue, WHEEL_HORIZON};
pub use rng::DetRng;
pub use time::{Bandwidth, Dur, Time, PS_PER_MS, PS_PER_NS, PS_PER_SEC, PS_PER_US};
