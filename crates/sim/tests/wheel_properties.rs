//! Property test: the hierarchical event wheel pops in *exactly* the
//! order a reference min-heap over `(time, class, seq)` would, under
//! random interleaved push/pop — including same-instant class ties,
//! same-slot bursts, and far-future events that overflow the wheel
//! horizon into the heap tier. This is the determinism invariant every
//! replay artifact rests on: swap the queue implementation, keep the
//! event order bit-for-bit.

use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use ups_sim::{EventQueue, Time, WHEEL_HORIZON};

/// Reference model: the old implementation — one global min-heap keyed
/// by `(time, class, insertion seq)`.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u8, u64)>>,
    seq: u64,
}

impl HeapModel {
    fn push(&mut self, time_ps: u64, class: u8) -> u64 {
        let id = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((time_ps, class, id)));
        id
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((t, _, id))| (t, id))
    }
}

/// One scripted operation: `pop` when `is_pop`, otherwise push at
/// `now + dt` in `class`.
type Op = (bool, u64, u8);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let horizon = WHEEL_HORIZON.as_ps();
    let dt = prop_oneof![
        Just(0u64),            // same instant (class ties)
        0u64..8_000_000,       // same wheel slot
        0u64..50_000_000,      // nearby wheel buckets
        0u64..horizon * 5,     // spans the whole wheel + far heap
        horizon..horizon * 10, // strictly past the horizon
    ];
    prop::collection::vec(
        (
            prop_oneof![Just(true), Just(false), Just(false)],
            dt,
            0u8..5,
        ),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn wheel_pops_in_reference_heap_order(script in ops()) {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut model = HeapModel::default();
        let mut now = 0u64;

        for &(is_pop, dt, class) in &script {
            if is_pop {
                let got = wheel.pop();
                let want = model.pop();
                prop_assert_eq!(
                    got.map(|(t, id)| (t.as_ps(), id)),
                    want,
                    "mid-script pop diverged at now={now}"
                );
                if let Some((t, _)) = got {
                    now = t.as_ps();
                }
            } else {
                let t = now.saturating_add(dt);
                let id = model.push(t, class);
                wheel.push(Time(t), class, id);
            }
            prop_assert_eq!(wheel.len(), model.heap.len());
        }

        // Drain both to the end: every remaining event must agree too.
        loop {
            let got = wheel.pop().map(|(t, id)| (t.as_ps(), id));
            let want = model.pop();
            prop_assert_eq!(got, want, "drain diverged");
            if got.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
