//! `ups-net` — the store-and-forward network model (the ns-2 substitute).
//!
//! A [`Network`] is a set of [`Node`]s connected by unidirectional
//! [`Link`]s. Each link is an output port: a byte-accounted buffer ordered
//! by a pluggable [`Scheduler`], plus a (by default non-preemptive)
//! transmitter. Packets are source-routed along immutable [`Path`]s, which
//! mirrors the paper's formal model where `path(p)` is part of the input.
//!
//! What this crate deliberately does **not** contain: scheduling
//! algorithms beyond baseline FIFO (see `ups-sched`), topologies (see
//! `ups-topo`), transport protocols (see `ups-transport`), and the
//! replay/universality machinery (see `ups-core`).

pub mod chaos;
pub mod fifo;
pub mod link;
pub mod network;
pub mod node;
pub mod packet;
pub mod routing;
pub mod scheduler;
pub mod slab;
pub mod testutil;
pub mod trace;

pub use chaos::{ChaosPolicy, ChaosTotals, JamSpec};
pub use fifo::Fifo;
pub use link::{Link, LinkStats, PortActions};
pub use network::{App, LinkPolicy, Network};
pub use node::{NextHop, Node, NodeKind};
pub use packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketKind, Path, SchedHeader};
pub use routing::RoutingTable;
pub use scheduler::{EvictOutcome, Queued, Scheduler};
pub use slab::{PacketRef, PacketSlab};
pub use trace::{Counters, HopTimes, PacketRecord, Telemetry, TraceLevel};
