//! Nodes (hosts and routers) and their static routing state.
//!
//! Routing is computed once at build time ([`crate::network::Network::compute_routes`])
//! and then frozen: the paper's model takes `path(p)` as part of the input,
//! so packets are source-routed along paths resolved from these tables at
//! injection time. Equal-cost multipath is resolved per-flow by a
//! deterministic hash, which keeps a flow on one path (and keeps original
//! and replay runs on identical paths).

use crate::packet::{FlowId, LinkId, NodeId};

/// Whether a node sources/sinks traffic or only forwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// End host: packets originate and terminate here.
    Host,
    /// Store-and-forward router.
    Router,
}

/// Next-hop choice toward one destination.
#[derive(Debug, Clone, Default)]
pub enum NextHop {
    /// Destination unreachable (or is this node itself).
    #[default]
    None,
    /// Single shortest path.
    One(LinkId),
    /// Equal-cost set; a flow hash picks one member.
    Ecmp(Box<[LinkId]>),
}

impl NextHop {
    /// Resolve the next link for `flow`, deterministically.
    pub fn pick(&self, flow: FlowId) -> Option<LinkId> {
        match self {
            NextHop::None => None,
            NextHop::One(l) => Some(*l),
            NextHop::Ecmp(ls) => {
                // SplitMix-style avalanche of the flow id: consecutive flow
                // ids must spread across the ECMP set.
                let mut z = flow.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                Some(ls[(z % ls.len() as u64) as usize])
            }
        }
    }

    /// Number of equal-cost choices (0 if unreachable).
    pub fn width(&self) -> usize {
        match self {
            NextHop::None => 0,
            NextHop::One(_) => 1,
            NextHop::Ecmp(ls) => ls.len(),
        }
    }
}

/// A network node.
#[derive(Debug)]
pub struct Node {
    /// Dense id (index into `Network::nodes`).
    pub id: NodeId,
    /// Human-readable name (topology builders set e.g. `"core:CHIC"`).
    pub name: String,
    /// Host or router.
    pub kind: NodeKind,
    /// Outgoing links, in creation order.
    pub out_links: Vec<LinkId>,
    /// Next-hop table indexed by destination `NodeId`.
    pub routes: Vec<NextHop>,
}

impl Node {
    /// Create a node with empty routing state.
    pub fn new(id: NodeId, name: String, kind: NodeKind) -> Node {
        Node {
            id,
            name,
            kind,
            out_links: Vec::new(),
            routes: Vec::new(),
        }
    }

    /// True if this node is an end host.
    pub fn is_host(&self) -> bool {
        self.kind == NodeKind::Host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecmp_pick_is_deterministic_and_spreads() {
        let hop = NextHop::Ecmp(vec![LinkId(0), LinkId(1), LinkId(2), LinkId(3)].into());
        let mut counts = [0u32; 4];
        for f in 0..4000 {
            let a = hop.pick(FlowId(f)).unwrap();
            let b = hop.pick(FlowId(f)).unwrap();
            assert_eq!(a, b, "same flow must always take the same link");
            counts[a.0 as usize] += 1;
        }
        for c in counts {
            assert!(c > 700, "skewed ECMP spread: {counts:?}");
        }
    }

    #[test]
    fn none_and_one_behave() {
        assert_eq!(NextHop::None.pick(FlowId(1)), None);
        assert_eq!(NextHop::One(LinkId(7)).pick(FlowId(1)), Some(LinkId(7)));
        assert_eq!(NextHop::None.width(), 0);
        assert_eq!(NextHop::One(LinkId(7)).width(), 1);
    }
}
