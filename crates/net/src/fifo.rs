//! First-in-first-out scheduler — the baseline and the default for every
//! port until an experiment installs something else.

use crate::scheduler::{Queued, Scheduler};
use std::collections::VecDeque;

/// Drop-tail FIFO queue.
#[derive(Debug, Default)]
pub struct Fifo {
    q: VecDeque<Queued>,
}

impl Fifo {
    /// Create an empty FIFO queue.
    pub fn new() -> Fifo {
        Fifo::default()
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn enqueue(&mut self, q: Queued) {
        self.q.push_back(q);
    }

    fn dequeue(&mut self) -> Option<Queued> {
        self.q.pop_front()
    }

    fn len(&self) -> usize {
        self.q.len()
    }

    fn uses_tmin(&self) -> bool {
        false
    }

    fn is_fifo(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::EvictOutcome;
    use crate::testutil::queued_slack as queued;

    #[test]
    fn fifo_order() {
        let mut f = Fifo::new();
        for i in 0..5 {
            f.enqueue(queued(0, i, i));
        }
        for i in 0..5 {
            assert_eq!(f.dequeue().unwrap().pkt.seq, i);
        }
        assert!(f.dequeue().is_none());
    }

    #[test]
    fn fifo_is_drop_tail() {
        let mut f = Fifo::new();
        f.enqueue(queued(0, 0, 0));
        let incoming = queued(0, 1, 1);
        assert!(matches!(f.evict_for(&incoming), EvictOutcome::DropIncoming));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn fifo_never_preempts() {
        let f = Fifo::new();
        assert!(f.urgency(&queued(0, 0, 0)).is_none());
    }
}
