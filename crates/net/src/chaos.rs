//! Deterministic, seeded network perturbation ("chaos") policies.
//!
//! The simulator is otherwise a perfect world; this module lets an
//! experiment ask the robustness question the paper never measured: how
//! well does a replay hold up when the replayed network diverges from
//! the recorded one? A [`ChaosPolicy`] describes, per link, three kinds
//! of divergence:
//!
//! * **i.i.d. wire loss** — each completed transmission is lost on the
//!   wire with probability [`ChaosPolicy::drop_prob`], drawn from a
//!   dedicated per-link RNG stream (forked off the policy seed and the
//!   link id, so perturbing one link — or the workload — never shifts
//!   another link's draws);
//! * **scheduled link failures** — explicit or periodic down windows
//!   during which the in-service packet and the whole scheduler queue
//!   are dropped and arrivals are refused;
//! * **adversarial jamming** — windows (periodic, or RNG-scheduled with
//!   exponential gaps, per "On Packet Scheduling with Adversarial
//!   Jamming and Speedup") during which the link transmits nothing and
//!   the in-service packet is lost, but the queue survives.
//!
//! The idiom follows `rift_rust`'s `ChaosSocket`: the perturbation
//! layer *wraps* the existing link state machine rather than forking
//! it. Every window is compiled into explicit events at install time
//! ([`Network::install_chaos`](crate::Network::install_chaos)) in a
//! dedicated event class that pops before any same-instant data-plane
//! work, so runs are bit-identical for a given seed — and with no
//! policy installed the link code takes exactly the paths it does
//! today, keeping chaos-free artifacts byte-identical to the committed
//! baselines.

use crate::packet::LinkId;
use ups_sim::{DetRng, Dur, Time};

/// How a jamming-window schedule is generated (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JamSpec {
    /// A `burst`-long jam every `period`, the first starting at `start`.
    Periodic {
        start: Time,
        period: Dur,
        burst: Dur,
    },
    /// Adversarial RNG-scheduled jams: gaps between window starts are
    /// exponential with mean `mean_gap`, each window lasting `burst`.
    Random { mean_gap: Dur, burst: Dur },
}

/// A per-link perturbation policy (see the module docs). `seed` is the
/// chaos layer's own RNG root — deliberately separate from the workload
/// seed, so sweeping a drop rate never changes flow arrival times.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPolicy {
    /// Chaos RNG root; per-link streams are forked from `(seed, link)`.
    pub seed: u64,
    /// i.i.d. probability that a completed transmission is lost on the
    /// wire. Must be in `[0, 1]`.
    pub drop_prob: f64,
    /// Explicit `(down_at, up_at)` failure windows.
    pub failures: Vec<(Time, Time)>,
    /// Periodic failures: every `.0`, the link goes down for `.1`
    /// (expanded against the install horizon; first window at `.0`).
    pub fail_periodic: Option<(Dur, Dur)>,
    /// Jamming-window generator.
    pub jam: Option<JamSpec>,
}

impl ChaosPolicy {
    /// A policy rooted at `seed` that perturbs nothing yet.
    pub fn new(seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            ..ChaosPolicy::default()
        }
    }

    /// Set the i.i.d. wire-loss probability.
    pub fn drop_prob(mut self, p: f64) -> ChaosPolicy {
        assert!((0.0..=1.0).contains(&p), "drop_prob out of [0,1]: {p}");
        self.drop_prob = p;
        self
    }

    /// Add an explicit failure window: down at `from`, back up at `to`.
    pub fn fail(mut self, from: Time, to: Time) -> ChaosPolicy {
        assert!(from < to, "failure window must have positive length");
        self.failures.push((from, to));
        self
    }

    /// Fail periodically: every `period`, down for `down`.
    pub fn fail_periodic(mut self, period: Dur, down: Dur) -> ChaosPolicy {
        assert!(down < period, "down time must be shorter than the period");
        self.fail_periodic = Some((period, down));
        self
    }

    /// Install a jamming-window generator.
    pub fn jam(mut self, spec: JamSpec) -> ChaosPolicy {
        self.jam = Some(spec);
        self
    }

    /// True when the policy perturbs anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || !self.failures.is_empty()
            || self.fail_periodic.is_some()
            || self.jam.is_some()
    }
}

/// A chaos state transition, delivered through the event wheel in the
/// dedicated chaos event class (popped before any same-instant
/// data-plane event, so an instant's failures settle before its
/// arrivals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPhase {
    /// The link fails: kill the in-service packet, drain the queue,
    /// refuse arrivals.
    Down,
    /// The link recovers.
    Up,
    /// A jamming window opens: kill the in-service packet, keep the
    /// queue, transmit nothing.
    JamStart,
    /// The jamming window closes.
    JamEnd,
}

/// Aggregate chaos counters over a whole network (see
/// [`Network::chaos_totals`](crate::Network::chaos_totals)).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChaosTotals {
    /// Packets lost to the chaos layer (wire loss + failure kills/drains
    /// + arrivals refused while down).
    pub drops: u64,
    /// Failure windows entered, summed over links.
    pub downs: u64,
    /// Jamming windows entered, summed over links.
    pub jams: u64,
    /// Total down/jam wall time, summed over links.
    pub outage: Dur,
}

/// Per-link chaos runtime state, installed on [`crate::Link`] by
/// [`Network::install_chaos`](crate::Network::install_chaos).
#[derive(Debug)]
pub(crate) struct LinkChaos {
    /// Dedicated wire-loss stream (jam scheduling used a sibling fork,
    /// fully consumed at install — runtime draws never perturb it).
    pub(crate) rng: DetRng,
    pub(crate) drop_prob: f64,
    pub(crate) down: bool,
    pub(crate) jammed: bool,
    /// Start of the current outage (down and/or jammed) stretch.
    pub(crate) outage_since: Time,
}

impl LinkChaos {
    /// True while the transmitter must stay silent.
    #[inline]
    pub(crate) fn blocked(&self) -> bool {
        self.down || self.jammed
    }
}

/// Compile a policy for one link: the runtime state plus every phase
/// transition up to `horizon`, in schedule order. Deterministic in
/// `(policy, link, horizon)` alone.
pub(crate) fn compile(
    policy: &ChaosPolicy,
    link: LinkId,
    horizon: Time,
) -> (LinkChaos, Vec<(Time, ChaosPhase)>) {
    assert!(
        (0.0..=1.0).contains(&policy.drop_prob),
        "drop_prob out of [0,1]: {}",
        policy.drop_prob
    );
    let mut master = DetRng::new(policy.seed);
    let mut link_rng = master.fork(link.0 as u64);
    let mut jam_rng = link_rng.fork(1);
    let drop_rng = link_rng.fork(2);

    let mut events: Vec<(Time, ChaosPhase)> = Vec::new();
    for &(from, to) in &policy.failures {
        assert!(from < to, "failure window must have positive length");
        if from < horizon {
            events.push((from, ChaosPhase::Down));
            events.push((to, ChaosPhase::Up));
        }
    }
    if let Some((period, down)) = policy.fail_periodic {
        assert!(down < period, "down time must be shorter than the period");
        let mut t = Time::ZERO + period;
        while t < horizon {
            events.push((t, ChaosPhase::Down));
            events.push((t + down, ChaosPhase::Up));
            t += period;
        }
    }
    match policy.jam {
        Some(JamSpec::Periodic {
            start,
            period,
            burst,
        }) => {
            assert!(burst < period, "jam burst must be shorter than the period");
            let mut t = start;
            while t < horizon {
                events.push((t, ChaosPhase::JamStart));
                events.push((t + burst, ChaosPhase::JamEnd));
                t += period;
            }
        }
        Some(JamSpec::Random { mean_gap, burst }) => {
            assert!(mean_gap > Dur::ZERO, "mean jam gap must be positive");
            let rate = 1.0 / mean_gap.as_secs_f64();
            let mut t = Time::ZERO;
            loop {
                t += Dur::from_secs_f64(jam_rng.gen_exp_secs(rate));
                if t >= horizon {
                    break;
                }
                events.push((t, ChaosPhase::JamStart));
                events.push((t + burst, ChaosPhase::JamEnd));
            }
        }
        None => {}
    }
    // Schedule order; ties resolve transition-kind-stably so overlapping
    // windows compile deterministically.
    events.sort_by_key(|&(t, p)| (t, p as u8));

    (
        LinkChaos {
            rng: drop_rng,
            drop_prob: policy.drop_prob,
            down: false,
            jammed: false,
            outage_since: Time::ZERO,
        },
        events,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic_and_window_paired() {
        let p = ChaosPolicy::new(7)
            .drop_prob(0.01)
            .fail(Time::from_micros(10), Time::from_micros(20))
            .jam(JamSpec::Random {
                mean_gap: Dur::from_micros(50),
                burst: Dur::from_micros(5),
            });
        let horizon = Time::from_millis(2);
        let (_, a) = compile(&p, LinkId(3), horizon);
        let (_, b) = compile(&p, LinkId(3), horizon);
        assert_eq!(a, b, "same policy + link + horizon must compile equal");
        assert!(!a.is_empty());
        let starts = a.iter().filter(|e| e.1 == ChaosPhase::JamStart).count();
        let ends = a.iter().filter(|e| e.1 == ChaosPhase::JamEnd).count();
        assert_eq!(starts, ends, "every jam window must close");
        // A different link draws a different jam schedule.
        let (_, c) = compile(&p, LinkId(4), horizon);
        assert_ne!(a, c, "per-link streams must be independent");
    }

    #[test]
    fn periodic_windows_cover_the_horizon() {
        let p = ChaosPolicy::new(1).fail_periodic(Dur::from_micros(100), Dur::from_micros(10));
        let (_, ev) = compile(&p, LinkId(0), Time::from_micros(1000));
        let downs = ev.iter().filter(|e| e.1 == ChaosPhase::Down).count();
        assert_eq!(downs, 9, "one failure per period, first at t=period");
        assert!(ev.windows(2).all(|w| w[0].0 <= w[1].0), "schedule order");
    }

    #[test]
    fn inactive_policy_compiles_to_nothing() {
        let p = ChaosPolicy::new(5);
        assert!(!p.is_active());
        let (state, ev) = compile(&p, LinkId(0), Time::from_millis(1));
        assert!(ev.is_empty());
        assert_eq!(state.drop_prob, 0.0);
        assert!(!state.blocked());
    }
}
