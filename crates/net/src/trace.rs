//! Per-packet telemetry.
//!
//! The replay engine needs, for every packet of the *original* run: its
//! injection time `i(p)`, exit time `o(p)`, path, and — for congestion-point
//! analysis and the omniscient UPS — the per-hop arrival/transmission
//! times. Recording everything for every packet is memory-heavy
//! (24 bytes × hops × packets), so the level is configurable.

use crate::packet::{FlowId, NodeId, Packet, PacketId, Path};
use std::sync::Arc;
use ups_obs::{LifeEvent, LifeKind, LifecycleRing};
use ups_sim::{Dur, Time};

/// How much to record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Counters only.
    Off,
    /// Per-packet injection/delivery times (FCT, delay, fairness metrics).
    #[default]
    Delivery,
    /// Additionally record per-hop times (replay, congestion points,
    /// omniscient initialization, queueing-delay ratios).
    Hops,
}

/// Times for one hop of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopTimes {
    /// Full arrival at the transmitting node of this hop, `i(p, α)`.
    pub arrive: Time,
    /// Transmission start, the paper's "scheduling time" `o(p, α)`.
    pub tx_start: Time,
    /// Transmission end (last bit on the wire).
    pub tx_end: Time,
}

impl HopTimes {
    /// Queueing delay at this hop (wait before service).
    pub fn qdelay(&self) -> Dur {
        self.tx_start - self.arrive
    }

    /// Whether the packet was "forced to wait" here — the paper's
    /// congestion-point condition (§2.2).
    pub fn waited(&self) -> bool {
        self.tx_start > self.arrive
    }
}

/// Lifetime record of one packet.
#[derive(Debug, Clone)]
pub struct PacketRecord {
    /// Flow the packet belonged to.
    pub flow: FlowId,
    /// Sequence within the flow.
    pub seq: u64,
    /// Wire size in bytes.
    pub size: u32,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Injection time `i(p)`.
    pub created: Time,
    /// Exit time `o(p)` (full arrival at destination), if delivered.
    pub delivered: Option<Time>,
    /// True if dropped at some buffer.
    pub dropped: bool,
    /// The route; hop `k`'s times are `hops[k]`, over link `path.links[k]`.
    pub path: Arc<Path>,
    /// Per-hop times (only at [`TraceLevel::Hops`]).
    pub hops: Vec<HopTimes>,
}

impl PacketRecord {
    /// Uncongested transit time for this packet over its path.
    pub fn tmin(&self) -> Dur {
        self.path.tmin(self.size)
    }

    /// Total queueing delay across hops (requires hop tracing).
    pub fn total_qdelay(&self) -> Dur {
        self.hops.iter().fold(Dur::ZERO, |acc, h| acc + h.qdelay())
    }

    /// Number of congestion points this packet saw (requires hop tracing).
    pub fn congestion_points(&self) -> usize {
        self.hops.iter().filter(|h| h.waited()).count()
    }

    /// End-to-end delay, if delivered.
    pub fn delay(&self) -> Option<Dur> {
        self.delivered.map(|d| d - self.created)
    }

    /// Slack this packet would be assigned for a replay:
    /// `o(p) − i(p) − tmin(p, src, dest)` (§2.1). `None` if not delivered.
    pub fn replay_slack(&self) -> Option<i64> {
        let o = self.delivered?;
        Some(o.signed_since(self.created) - self.tmin().as_i64())
    }
}

/// Aggregate counters.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    /// Packets injected.
    pub injected: u64,
    /// Packets delivered to their destination.
    pub delivered: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Events processed by the main loop.
    pub events: u64,
}

/// Telemetry sink owned by the network.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Recording level.
    pub level: TraceLevel,
    /// Aggregate counters (always on).
    pub counters: Counters,
    /// Per-packet records, indexed by `PacketId` (dense).
    pub packets: Vec<PacketRecord>,
    /// Bounded lifecycle trace ring, when enabled (see
    /// [`Telemetry::enable_lifecycle`]). `None` — the default — keeps
    /// every hook below to a single branch.
    pub lifecycle: Option<LifecycleRing>,
    /// Absolute flow deadlines `(flow, deadline_ps)`, sorted by flow,
    /// consulted for deadline-miss lifecycle events. Only populated by
    /// [`Telemetry::set_flow_deadlines`].
    flow_deadlines: Vec<(u64, u64)>,
}

impl Telemetry {
    /// Create telemetry at the given level.
    pub fn new(level: TraceLevel) -> Telemetry {
        Telemetry {
            level,
            ..Default::default()
        }
    }

    /// Keep a bounded ring of the most recent `cap` packet lifecycle
    /// events (inject, enqueue, tx-start, deliver, drop, deadline-miss),
    /// exportable with [`LifecycleRing::to_jsonl`]. Off by default; the
    /// ring is pure observation and never changes simulation outcomes.
    pub fn enable_lifecycle(&mut self, cap: usize) {
        self.lifecycle = Some(LifecycleRing::new(cap));
    }

    /// Register absolute flow deadlines (`(flow, deadline_ps)`): a
    /// delivery after its flow's deadline additionally records a
    /// [`LifeKind::DeadlineMiss`] event in the lifecycle ring.
    pub fn set_flow_deadlines(&mut self, mut deadlines: Vec<(u64, u64)>) {
        deadlines.sort_unstable();
        self.flow_deadlines = deadlines;
    }

    #[inline]
    fn life(&mut self, t: Time, kind: LifeKind, pkt: &Packet, loc: u32) {
        if let Some(ring) = self.lifecycle.as_mut() {
            ring.push(LifeEvent {
                t,
                kind,
                flow: pkt.flow.0,
                seq: pkt.seq,
                loc,
            });
        }
    }

    /// Record a packet injection; id must be dense and sequential.
    pub fn on_inject(&mut self, pkt: &Packet) {
        self.counters.injected += 1;
        if self.lifecycle.is_some() {
            self.life(pkt.created, LifeKind::Inject, pkt, pkt.src.0);
        }
        if self.level == TraceLevel::Off {
            return;
        }
        debug_assert_eq!(pkt.id.0 as usize, self.packets.len());
        // At `Hops` level every hop will push one entry; sizing the vec
        // to the (known, fixed) path length up front means the per-hop
        // record append never reallocates.
        let hops = match self.level {
            TraceLevel::Hops => Vec::with_capacity(pkt.path.hops()),
            _ => Vec::new(),
        };
        self.packets.push(PacketRecord {
            flow: pkt.flow,
            seq: pkt.seq,
            size: pkt.size,
            src: pkt.src,
            dst: pkt.dst,
            created: pkt.created,
            delivered: None,
            dropped: false,
            path: Arc::clone(&pkt.path),
            hops,
        });
    }

    /// Record a completed hop.
    pub fn on_hop(&mut self, id: PacketId, times: HopTimes) {
        if self.level != TraceLevel::Hops {
            return;
        }
        self.packets[id.0 as usize].hops.push(times);
    }

    /// Record queue/wire lifecycle events for a completed hop. The hop's
    /// enqueue and tx-start become known only once it finishes, so both
    /// are recorded here carrying their true timestamps.
    pub fn on_hop_lifecycle(&mut self, pkt: &Packet, link: u32, times: HopTimes) {
        if self.lifecycle.is_some() {
            self.life(times.arrive, LifeKind::Enqueue, pkt, link);
            self.life(times.tx_start, LifeKind::TxStart, pkt, link);
        }
    }

    /// Record final delivery.
    pub fn on_deliver(&mut self, pkt: &Packet, now: Time) {
        self.counters.delivered += 1;
        self.counters.bytes_delivered += pkt.size as u64;
        if self.level != TraceLevel::Off {
            self.packets[pkt.id.0 as usize].delivered = Some(now);
        }
        if self.lifecycle.is_some() {
            self.life(now, LifeKind::Deliver, pkt, pkt.dst.0);
            let missed = self
                .flow_deadlines
                .binary_search_by_key(&pkt.flow.0, |&(f, _)| f)
                .is_ok_and(|i| now.as_ps() > self.flow_deadlines[i].1);
            if missed {
                self.life(now, LifeKind::DeadlineMiss, pkt, pkt.dst.0);
            }
        }
    }

    /// Record a drop at a link buffer.
    pub fn on_drop(&mut self, pkt: &Packet, now: Time, link: u32) {
        self.counters.dropped += 1;
        if self.level != TraceLevel::Off {
            self.packets[pkt.id.0 as usize].dropped = true;
        }
        if self.lifecycle.is_some() {
            self.life(now, LifeKind::Drop, pkt, link);
        }
    }

    /// Records of delivered packets.
    pub fn delivered(&self) -> impl Iterator<Item = &PacketRecord> {
        self.packets.iter().filter(|r| r.delivered.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::LinkId;
    use ups_sim::Bandwidth;

    fn rec() -> PacketRecord {
        PacketRecord {
            flow: FlowId(0),
            seq: 0,
            size: 1500,
            src: NodeId(0),
            dst: NodeId(1),
            created: Time::from_micros(10),
            delivered: Some(Time::from_micros(100)),
            dropped: false,
            path: Arc::new(Path {
                links: vec![LinkId(0)].into(),
                bw: vec![Bandwidth::gbps(1)].into(),
                prop: vec![Dur::from_micros(8)].into(),
            }),
            hops: vec![
                HopTimes {
                    arrive: Time::from_micros(10),
                    tx_start: Time::from_micros(30),
                    tx_end: Time::from_micros(42),
                },
                HopTimes {
                    arrive: Time::from_micros(50),
                    tx_start: Time::from_micros(50),
                    tx_end: Time::from_micros(62),
                },
            ],
        }
    }

    #[test]
    fn congestion_points_counts_waits_only() {
        let r = rec();
        assert_eq!(r.congestion_points(), 1);
        assert_eq!(r.total_qdelay(), Dur::from_micros(20));
    }

    #[test]
    fn replay_slack_formula() {
        let r = rec();
        // tmin = 12us tx + 8us prop = 20us; o - i = 90us; slack = 70us.
        assert_eq!(r.replay_slack(), Some(Dur::from_micros(70).as_i64()));
        assert_eq!(r.delay(), Some(Dur::from_micros(90)));
    }

    #[test]
    fn undelivered_has_no_slack() {
        let mut r = rec();
        r.delivered = None;
        assert_eq!(r.replay_slack(), None);
        assert_eq!(r.delay(), None);
    }
}
