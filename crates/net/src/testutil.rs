//! Test support: compact constructors for packets and queue entries.
//!
//! Public (not `cfg(test)`-gated) because the scheduler implementations in
//! `ups-sched` and the replay engine in `ups-core` reuse these builders in
//! their own unit tests. Not intended for production simulation code.

use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketKind, Path, SchedHeader};
use crate::scheduler::Queued;
use std::sync::Arc;
use ups_sim::{Bandwidth, Dur, Time};

/// A one-hop, 1 Gbps, zero-propagation path.
pub fn one_hop_path() -> Arc<Path> {
    Arc::new(Path {
        links: vec![LinkId(0)].into(),
        bw: vec![Bandwidth::gbps(1)].into(),
        prop: vec![Dur::ZERO].into(),
    })
}

/// Build a 1500-byte data packet with the given identity and header.
pub fn packet(id: u64, flow: u64, seq: u64, hdr: SchedHeader) -> Packet {
    Packet {
        id: PacketId(id),
        flow: FlowId(flow),
        seq,
        size: 1500,
        tx_left: None,
        src: NodeId(0),
        dst: NodeId(1),
        created: Time::ZERO,
        path: one_hop_path(),
        hops_done: 0,
        hdr,
        kind: PacketKind::Data { bytes: 1460 },
        qdelay: Dur::ZERO,
        hop_arrive: Time::ZERO,
        hop_first_tx: Time::ZERO,
    }
}

/// Build a queue entry: packet `seq` of `flow`, enqueued at `enq_ns`
/// nanoseconds with the given slack and priority header values.
pub fn queued_full(flow: u64, seq: u64, slack: i64, prio: i64, enq_ns: u64) -> Queued {
    let hdr = SchedHeader {
        slack,
        prio,
        hop_times: None,
    };
    Queued {
        pkt: Box::new(packet(seq, flow, seq, hdr)),
        enq_time: Time::from_nanos(enq_ns),
        tx_dur: Dur::from_micros(12),
        remaining_tmin: Dur::from_micros(12),
        arrival_seq: seq,
    }
}

/// Queue entry with only a slack header (LSTF-style tests).
pub fn queued_slack(slack: i64, enq_ns: u64, seq: u64) -> Queued {
    queued_full(0, seq, slack, 0, enq_ns)
}

/// Queue entry with only a priority header (Priority/SJF-style tests).
pub fn queued_prio(prio: i64, enq_ns: u64, seq: u64) -> Queued {
    queued_full(0, seq, 0, prio, enq_ns)
}

/// Queue entry for a given flow with a priority (FQ/SRPT-style tests).
pub fn queued_flow(flow: u64, prio: i64, enq_ns: u64, seq: u64) -> Queued {
    queued_full(flow, seq, 0, prio, enq_ns)
}
