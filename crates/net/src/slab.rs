//! The packet arena: slot-reusing storage for in-flight packets.
//!
//! The event loop used to box every packet into its `Arrive` event — one
//! heap allocation *per hop* of every packet, right on the hot path. The
//! [`PacketSlab`] replaces that: packets live in slots, events carry a
//! 4-byte [`PacketRef`] index, and freed slots go on a free list for
//! reuse. Packets are stored boxed — allocated once at injection — so a
//! slab insert or remove moves 8 bytes, not the ~180-byte `Packet`, and
//! the same box travels through queue entries and back untouched. In
//! steady state inserting and removing packets performs **zero** heap
//! allocation.
//!
//! A `PacketRef` is only as alive as the slot it names: removing a packet
//! invalidates its ref, and the slot may be handed to a different packet
//! by a later insert. The network is the only producer and consumer of
//! refs — it inserts at injection and at hop completion, and removes at
//! the matching `Arrive` — so every ref is used exactly once, enforced in
//! debug builds by poisoning empty slots.

use crate::packet::Packet;

/// Index of a live packet in the [`PacketSlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(u32);

/// A slot-reusing arena of in-flight packets.
#[derive(Debug, Default)]
pub struct PacketSlab {
    slots: Vec<Option<Box<Packet>>>,
    free: Vec<u32>,
    /// Peak simultaneously-live packet count (diagnostics: how much
    /// packet state the simulation actually keeps in flight).
    high_water: usize,
}

impl PacketSlab {
    /// An empty slab.
    pub fn new() -> PacketSlab {
        PacketSlab::default()
    }

    /// Store `pkt`, reusing a freed slot when one exists.
    pub fn insert(&mut self, pkt: Box<Packet>) -> PacketRef {
        let idx = match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none(), "free-listed live slot");
                self.slots[idx as usize] = Some(pkt);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("PacketSlab overflow");
                self.slots.push(Some(pkt));
                idx
            }
        };
        self.high_water = self.high_water.max(self.len());
        PacketRef(idx)
    }

    /// Remove and return the packet at `r`, freeing its slot. Panics if
    /// the ref was already consumed (a use-after-free in the event loop).
    pub fn remove(&mut self, r: PacketRef) -> Box<Packet> {
        let pkt = self.slots[r.0 as usize]
            .take()
            .expect("PacketRef used after removal");
        self.free.push(r.0);
        pkt
    }

    /// Borrow the packet at `r`.
    pub fn get(&self, r: PacketRef) -> &Packet {
        self.slots[r.0 as usize]
            .as_deref()
            .expect("PacketRef used after removal")
    }

    /// Mutably borrow the packet at `r`.
    pub fn get_mut(&mut self, r: PacketRef) -> &mut Packet {
        self.slots[r.0 as usize]
            .as_deref_mut()
            .expect("PacketRef used after removal")
    }

    /// Hint the CPU to pull the packet at `r` into cache. The event loop
    /// issues this for the *next* event's packet while the current one is
    /// being processed: packets are touched once per hop with microseconds
    /// of simulated (and thousands of events of real) distance between
    /// touches, so the first access of a hop otherwise eats a cache miss.
    /// No-op for a stale ref or on non-x86 targets.
    #[inline]
    pub fn prefetch(&self, r: PacketRef) {
        #[cfg(target_arch = "x86_64")]
        if let Some(Some(pkt)) = self.slots.get(r.0 as usize) {
            crate::packet::prefetch_packet(pkt);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = r;
    }

    /// Number of live packets.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True if no packets are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak simultaneously-live packet count over the slab's lifetime.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total slots ever allocated (live + reusable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::SchedHeader;
    use crate::testutil::packet;

    #[test]
    fn insert_get_remove_round_trips() {
        let mut slab = PacketSlab::new();
        let r0 = slab.insert(Box::new(packet(0, 0, 0, SchedHeader::default())));
        let r1 = slab.insert(Box::new(packet(1, 1, 0, SchedHeader::default())));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(r0).id.0, 0);
        assert_eq!(slab.get(r1).id.0, 1);
        slab.get_mut(r1).hops_done = 3;
        assert_eq!(slab.remove(r1).hops_done, 3);
        assert_eq!(slab.remove(r0).id.0, 0);
        assert!(slab.is_empty());
    }

    #[test]
    fn slots_are_reused_without_growth() {
        let mut slab = PacketSlab::new();
        // Steady state: two packets in flight, many hops each.
        let mut live = vec![
            slab.insert(Box::new(packet(0, 0, 0, SchedHeader::default()))),
            slab.insert(Box::new(packet(1, 0, 1, SchedHeader::default()))),
        ];
        for hop in 0..1000 {
            let pkt = slab.remove(live.remove(0));
            live.push(slab.insert(pkt));
            assert_eq!(slab.capacity(), 2, "slab grew at hop {hop}");
        }
        assert_eq!(slab.high_water(), 2);
    }

    #[test]
    #[should_panic(expected = "used after removal")]
    fn stale_ref_is_rejected() {
        let mut slab = PacketSlab::new();
        let r = slab.insert(Box::new(packet(0, 0, 0, SchedHeader::default())));
        slab.remove(r);
        slab.remove(r);
    }
}
