//! Packets and their scheduling headers.
//!
//! The paper's formal model fixes, for every packet `p`, its arrival time
//! `i(p)`, its `path(p)`, and (for replay) the target output time `o(p)`.
//! We mirror that exactly: packets are **source-routed** — each carries an
//! immutable, shared [`Path`] — and carry a small scheduling header with
//! the dynamic slack state used by LSTF plus a static priority field used
//! by the other schedulers.

use std::sync::Arc;
use ups_sim::{Bandwidth, Dur, Time};

/// Dense node identifier (index into `Network::nodes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Dense unidirectional-link identifier (index into `Network::links`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// Flow identifier; unique per five-tuple-equivalent in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// Globally unique packet identifier, assigned at injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// The fixed route of a packet: the ordered list of unidirectional links
/// from its source host to its destination host, plus the per-hop static
/// link properties needed to evaluate `tmin` suffixes (allowed UPS state:
/// "static information about the network topology, link bandwidths, and
/// propagation delays", §2.1 constraint 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Links in forwarding order; `links[k]` is taken at hop `k`.
    pub links: Box<[LinkId]>,
    /// Bandwidth of each link in `links`.
    pub bw: Box<[Bandwidth]>,
    /// Propagation delay of each link in `links`.
    pub prop: Box<[Dur]>,
}

impl Path {
    /// Number of hops (links) on the path.
    pub fn hops(&self) -> usize {
        self.links.len()
    }

    /// `tmin` from the *input of hop `k`* to full arrival at the
    /// destination, for a packet of `size` bytes: the sum over the
    /// remaining links of (transmission time + propagation delay).
    ///
    /// This matches the paper's store-and-forward `tmin(p, α, dest)` —
    /// it includes the transmission time at hop `k` itself.
    pub fn tmin_from(&self, k: usize, size: u32) -> Dur {
        let mut total = Dur::ZERO;
        for i in k..self.links.len() {
            total += self.bw[i].tx_time(size) + self.prop[i];
        }
        total
    }

    /// `tmin` over the whole path (ingress to egress), i.e. the
    /// uncongested network transit time for a packet of `size` bytes.
    pub fn tmin(&self, size: u32) -> Dur {
        self.tmin_from(0, size)
    }

    /// The minimum-bandwidth (bottleneck) link on this path.
    pub fn bottleneck(&self) -> Bandwidth {
        self.bw
            .iter()
            .copied()
            .min()
            .expect("empty path has no bottleneck")
    }
}

/// Transport-level payload classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Application data; `bytes` is the payload length (≤ wire size).
    Data { bytes: u32 },
    /// Cumulative TCP acknowledgement: "next expected" sequence in bytes.
    Ack { cum_ack: u64 },
}

/// The scheduling header a packet carries through the network.
///
/// Only one of these fields is meaningful for a given scheduler, but a
/// plain struct keeps the hot path free of enum matching:
/// * `slack` — LSTF dynamic packet state, signed picoseconds. Initialized
///   at the ingress, decremented by each router by the queueing delay the
///   packet experienced there (§2.1).
/// * `prio` — static priority for Priority/SJF/SRPT/EDF (lower = better).
/// * `hop_times` — per-hop output times `o(p, α_k)` for the omniscient
///   UPS of Appendix B.
#[derive(Debug, Clone, Default)]
pub struct SchedHeader {
    /// Remaining slack in picoseconds; may go negative when overdue.
    pub slack: i64,
    /// Static priority value; lower is served first.
    pub prio: i64,
    /// Omniscient per-hop schedule (Appendix B); indexed by hop number.
    pub hop_times: Option<Arc<[Time]>>,
}

/// A packet traversing the simulated network.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id, assigned by the network at injection.
    pub id: PacketId,
    /// Flow this packet belongs to.
    pub flow: FlowId,
    /// Zero-based sequence number within the flow.
    pub seq: u64,
    /// Wire size in bytes (headers + payload).
    pub size: u32,
    /// Remaining serialization time at the current hop, set only while a
    /// *preempted* transmission is suspended (fluid model used for the
    /// preemptive-LSTF ablation, §2.3(5)). `None` = not yet started here.
    /// Tracked as exact time, not bytes, so preemption never loses or
    /// fabricates link capacity.
    pub tx_left: Option<Dur>,
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Injection time at the source, `i(p)`.
    pub created: Time,
    /// Fixed route.
    pub path: Arc<Path>,
    /// Hops already fully traversed; indexes into `path.links`.
    pub hops_done: u16,
    /// Scheduling header.
    pub hdr: SchedHeader,
    /// Transport classification.
    pub kind: PacketKind,
    /// Total queueing delay accumulated so far (diagnostics + FIFO+).
    pub qdelay: Dur,
    /// Transient per-hop bookkeeping: full arrival time at the current
    /// hop's port (set by the network on arrival).
    pub hop_arrive: Time,
    /// Transient per-hop bookkeeping: first transmission start at the
    /// current hop — the paper's scheduling time `o(p, α)`.
    pub hop_first_tx: Time,
}

/// Hint the CPU to pull every cache line of `pkt` into cache. Issued by
/// the event loop for the *next* event's packet while the current one is
/// processed; a `Packet` spans multiple lines and a hop touches most of
/// them. No-op on non-x86 targets.
#[inline]
pub(crate) fn prefetch_packet(pkt: &Packet) {
    #[cfg(target_arch = "x86_64")]
    {
        let base = (pkt as *const Packet).cast::<u8>();
        let mut off = 0;
        while off < core::mem::size_of::<Packet>() {
            // SAFETY: `base + off` stays within (or one past) the Packet
            // borrowed by `pkt`; `_mm_prefetch` is a pure cache hint that
            // never dereferences, so even a dangling address is sound.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    base.add(off).cast(),
                );
            }
            off += 64;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = pkt;
}

impl Packet {
    /// The link this packet takes next, or `None` if it has arrived.
    pub fn next_link(&self) -> Option<LinkId> {
        self.path.links.get(self.hops_done as usize).copied()
    }

    /// True once the packet has traversed its full path.
    pub fn at_destination(&self) -> bool {
        self.hops_done as usize >= self.path.hops()
    }

    /// `tmin` from the current hop to the destination for this packet.
    pub fn remaining_tmin(&self) -> Dur {
        self.path.tmin_from(self.hops_done as usize, self.size)
    }

    /// Mark one hop fully traversed: bump the hop counter and clear the
    /// per-hop suspended-transmission state (a resumed transmission that
    /// completed must not carry `tx_left` to the next port).
    pub fn advance_hop(&mut self) {
        self.hops_done += 1;
        self.tx_left = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Path {
        Path {
            links: vec![LinkId(0), LinkId(1), LinkId(2)].into(),
            bw: vec![Bandwidth::gbps(10), Bandwidth::gbps(1), Bandwidth::gbps(10)].into(),
            prop: vec![
                Dur::from_micros(10),
                Dur::from_micros(20),
                Dur::from_micros(10),
            ]
            .into(),
        }
    }

    #[test]
    fn tmin_sums_tx_and_prop() {
        let p = path3();
        // 1500B: 1.2us + 12us + 1.2us tx, 40us prop.
        let want = Dur::from_nanos(1200 + 12000 + 1200) + Dur::from_micros(40);
        assert_eq!(p.tmin(1500), want);
    }

    #[test]
    fn tmin_from_is_a_suffix() {
        let p = path3();
        let full = p.tmin(1500);
        let hop0 = Bandwidth::gbps(10).tx_time(1500) + Dur::from_micros(10);
        assert_eq!(p.tmin_from(1, 1500), full - hop0);
        assert_eq!(p.tmin_from(3, 1500), Dur::ZERO);
    }

    #[test]
    fn bottleneck_is_min_bandwidth() {
        assert_eq!(path3().bottleneck(), Bandwidth::gbps(1));
    }

    #[test]
    fn packet_hop_progression() {
        let mut pkt = Packet {
            id: PacketId(0),
            flow: FlowId(0),
            seq: 0,
            size: 1500,
            tx_left: None,
            src: NodeId(0),
            dst: NodeId(3),
            created: Time::ZERO,
            path: Arc::new(path3()),
            hops_done: 0,
            hdr: SchedHeader::default(),
            kind: PacketKind::Data { bytes: 1460 },
            qdelay: Dur::ZERO,
            hop_arrive: Time::ZERO,
            hop_first_tx: Time::ZERO,
        };
        assert_eq!(pkt.next_link(), Some(LinkId(0)));
        pkt.hops_done = 2;
        assert_eq!(pkt.next_link(), Some(LinkId(2)));
        assert!(!pkt.at_destination());
        pkt.hops_done = 3;
        assert_eq!(pkt.next_link(), None);
        assert!(pkt.at_destination());
        assert_eq!(pkt.remaining_tmin(), Dur::ZERO);
    }
}
