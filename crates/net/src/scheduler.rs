//! The pluggable per-port scheduler interface.
//!
//! Every output port (unidirectional [`Link`](crate::link::Link)) owns one
//! `Box<dyn Scheduler>`. The paper's model allows each router to run
//! *different* scheduling logic (§2.1), which this maps to directly:
//! schedulers are assigned per link.
//!
//! The port, not the scheduler, is responsible for byte accounting, the
//! slack-header update on forward, and the transmission state machine; the
//! scheduler only orders packets, picks drop victims when the buffer is
//! full, and (optionally) exposes an urgency key used for preemption.

use crate::packet::Packet;
use ups_sim::{Dur, Time};

/// A packet waiting in an output queue, together with the per-queue state
/// the scheduler may key on.
#[derive(Debug)]
pub struct Queued {
    /// The packet itself, boxed so queue reorders and hand-offs move a
    /// pointer instead of the full packet.
    pub pkt: Box<Packet>,
    /// When it entered this queue.
    pub enq_time: Time,
    /// Its transmission time on this link (for the remaining bytes).
    pub tx_dur: Dur,
    /// `tmin` from this hop (inclusive) to the destination — static
    /// topology information the EDF scheduler is permitted to use.
    pub remaining_tmin: Dur,
    /// Arrival order at this queue; used for deterministic FCFS
    /// tie-breaking (paper footnote 14).
    pub arrival_seq: u64,
}

impl Queued {
    /// The instant at which this packet's remaining slack reaches zero,
    /// measured for its *last bit* at this port (Appendix D): the packet's
    /// header slack is the slack of its last bit net of local transmission,
    /// so the formal last-bit slack at enqueue is `hdr.slack + tx_dur` and
    /// it decreases at unit rate while the packet waits.
    ///
    /// Ordering by this deadline is exactly "least remaining slack first"
    /// at every instant, and equals the EDF priority of Appendix E.
    pub fn slack_deadline(&self) -> i64 {
        self.enq_time.as_ps() as i64 + self.pkt.hdr.slack + self.tx_dur.as_i64()
    }
}

/// Result of asking a scheduler for a drop victim on buffer overflow.
#[derive(Debug)]
pub enum EvictOutcome {
    /// No queued packet is worse than the incoming one: drop the arrival.
    DropIncoming,
    /// This queued packet was removed and should be dropped instead.
    Evicted(Queued),
}

/// A packet scheduler for one output port.
///
/// Invariants every implementation must uphold:
/// * `dequeue` returns `None` iff `len() == 0`;
/// * packets are neither duplicated nor silently discarded — everything
///   enqueued is eventually returned by `dequeue` or `evict_for`;
/// * ties are broken deterministically (usually FCFS via `arrival_seq`).
pub trait Scheduler: std::fmt::Debug + Send {
    /// Human-readable algorithm name (reports and traces).
    fn name(&self) -> &'static str;

    /// Admit a packet to the queue.
    fn enqueue(&mut self, q: Queued);

    /// Remove and return the next packet to transmit.
    fn dequeue(&mut self) -> Option<Queued>;

    /// Number of queued packets.
    fn len(&self) -> usize;

    /// True if no packets are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffer overflow policy: if some queued packet should be dropped in
    /// preference to `incoming`, remove and return it; otherwise report
    /// that the incoming packet is the victim. The default is drop-tail.
    ///
    /// The objective experiments (§3) rely on this: under LSTF "packets
    /// with the highest slack are dropped when the buffer is full".
    fn evict_for(&mut self, _incoming: &Queued) -> EvictOutcome {
        EvictOutcome::DropIncoming
    }

    /// Comparable urgency key (lower = more urgent), used by preemptive
    /// ports to decide whether an arrival should interrupt the packet
    /// currently being transmitted. `None` disables preemption for this
    /// scheduler regardless of the port setting.
    fn urgency(&self, _q: &Queued) -> Option<i64> {
        None
    }

    /// Whether this scheduler reads [`Queued::remaining_tmin`]. Computing
    /// it walks the packet's remaining path on every admit, so ports skip
    /// it for schedulers that never look (FIFO). Defaults to `true`; only
    /// override with `false` when no code path touches the field.
    fn uses_tmin(&self) -> bool {
        true
    }

    /// Whether this is the crate's drop-tail [`Fifo`](crate::fifo::Fifo).
    /// Ports route the (empty) default scheduler into a statically
    /// dispatched arm so the per-hop enqueue/dequeue pair inlines instead
    /// of going through the vtable. Only the FIFO impl overrides this.
    fn is_fifo(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use crate::testutil::queued_slack as queued;

    #[test]
    fn slack_deadline_formula() {
        let q = queued(5_000, 10, 0);
        // enq(10ns=10_000ps) + slack(5_000ps) + tx(12us).
        assert_eq!(q.slack_deadline(), 10_000 + 5_000 + 12_000_000);
    }

    #[test]
    fn slack_deadline_can_be_negative_dominated() {
        let q = queued(-50_000_000, 0, 0);
        assert!(q.slack_deadline() < 0);
    }
}
