//! Unidirectional links and their output-port state machine.
//!
//! A [`Link`] models the paper's scheduling locus: an output port with one
//! queue (ordered by a pluggable [`Scheduler`]), byte-accounted buffering,
//! and a non-preemptive transmitter. The transmitter can optionally run in
//! *preemptive* mode — a fluid approximation where an arriving, more
//! urgent packet suspends the in-flight one, which later resumes
//! transmitting only its remaining bytes. That mode exists solely for the
//! preemptive-LSTF ablation of §2.3(5); the default matches the paper's
//! non-preemptive simulations.
//!
//! The port also performs the LSTF dynamic-packet-state update: when a
//! packet is picked for transmission, its header slack is decremented by
//! the time it waited in this queue (§2.1).

use crate::chaos::LinkChaos;
use crate::packet::{LinkId, NodeId, Packet};
use crate::scheduler::{EvictOutcome, Queued, Scheduler};
use ups_sim::{Bandwidth, Dur, Time};

/// Per-link counters (diagnostics and utilization accounting).
#[derive(Debug, Default, Clone)]
pub struct LinkStats {
    /// Packets admitted to the queue.
    pub enqueued: u64,
    /// Packets dropped on buffer overflow (victim may be incoming or queued).
    pub dropped: u64,
    /// Transmissions completed.
    pub tx_done: u64,
    /// Bytes fully transmitted.
    pub bytes_tx: u64,
    /// Total time the transmitter was busy.
    pub busy: Dur,
    /// Transmissions preempted (preemptive mode only).
    pub preemptions: u64,
    /// High-water mark of queued packets.
    pub max_queue_pkts: usize,
    /// Packets lost to the chaos layer: i.i.d. wire loss, packets killed
    /// or drained by a failure or jam, and arrivals refused while down.
    /// Always also counted in [`LinkStats::dropped`].
    pub chaos_drops: u64,
    /// Failure (link-down) windows entered.
    pub chaos_downs: u64,
    /// Jamming windows entered.
    pub chaos_jams: u64,
    /// Total time spent down and/or jammed.
    pub chaos_outage: Dur,
}

/// The packet currently being serialized onto the wire.
#[derive(Debug)]
struct InFlight {
    q: Queued,
    tx_start: Time,
    tx_end: Time,
    /// Urgency of the in-flight packet at start, for preemption decisions.
    urgency: Option<i64>,
}

/// What the network must do after handing an event to a link.
///
/// Transmission starts are *deferred*: `admit`/`tx_done` never begin a
/// new transmission themselves; they set `want_start` and the network
/// schedules a `StartTx` event at the same instant in a later event
/// class. That way every packet arriving at time `t` — including ones
/// cascading through zero-time links — is queued before the port picks
/// what to send at `t`, exactly as the formal model's schedulers see it.
#[derive(Debug, Default)]
pub struct PortActions {
    /// The port is idle and has queued packets: schedule a `StartTx`.
    pub want_start: bool,
    /// Packets dropped by the buffer-overflow policy.
    pub dropped: Vec<Box<Packet>>,
    /// Packet whose transmission was fully completed (forward it).
    pub completed: Option<Box<Packet>>,
    /// `(tx_end, generation)` of a transmission the port started inline
    /// on the wire fast path — the caller schedules its completion
    /// exactly as it would for [`Link::try_start`]'s return.
    pub started: Option<(Time, u64)>,
}

/// Dispatch slot for the port's scheduler. The default drop-tail FIFO
/// gets a concrete arm so the ~5 scheduler calls per forwarded packet
/// (admit, start, and the idle checks around them) inline down to
/// `VecDeque` operations; any installed scheduler goes through the
/// vtable as before. [`Link::set_scheduler`] routes an incoming box
/// into the right arm via [`Scheduler::is_fifo`].
#[derive(Debug)]
enum SchedSlot {
    Fifo(crate::fifo::Fifo),
    Dyn(Box<dyn Scheduler>),
}

impl SchedSlot {
    #[inline]
    fn enqueue(&mut self, q: Queued) {
        match self {
            SchedSlot::Fifo(f) => f.enqueue(q),
            SchedSlot::Dyn(s) => s.enqueue(q),
        }
    }

    #[inline]
    fn dequeue(&mut self) -> Option<Queued> {
        match self {
            SchedSlot::Fifo(f) => f.dequeue(),
            SchedSlot::Dyn(s) => s.dequeue(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            SchedSlot::Fifo(f) => f.len(),
            SchedSlot::Dyn(s) => s.len(),
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn evict_for(&mut self, incoming: &Queued) -> crate::scheduler::EvictOutcome {
        match self {
            SchedSlot::Fifo(f) => f.evict_for(incoming),
            SchedSlot::Dyn(s) => s.evict_for(incoming),
        }
    }

    #[inline]
    fn urgency(&self, q: &Queued) -> Option<i64> {
        match self {
            SchedSlot::Fifo(f) => f.urgency(q),
            SchedSlot::Dyn(s) => s.urgency(q),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SchedSlot::Fifo(f) => f.name(),
            SchedSlot::Dyn(s) => s.name(),
        }
    }
}

/// A unidirectional link: `from`'s output port plus the wire to `to`.
#[derive(Debug)]
pub struct Link {
    /// Dense id of this link.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Serialization rate.
    pub bw: Bandwidth,
    /// Propagation delay.
    pub prop: Dur,
    /// Buffer capacity in bytes; `None` is unbounded ("large buffer sizes
    /// that ensure no packet drops", §2.3).
    pub buffer: Option<u64>,
    /// Whether an urgent arrival may suspend the in-flight transmission.
    pub preemptive: bool,
    sched: SchedSlot,
    /// Cached [`Scheduler::uses_tmin`] so the per-admit fast path skips
    /// both the virtual call and the remaining-path walk.
    sched_uses_tmin: bool,
    /// One-entry serialization-time memo: `(size, tx_time(size))`. Real
    /// workloads transmit runs of equal-size packets, so this turns the
    /// per-admit and per-start 128-bit division into a compare.
    tx_memo: (u32, Dur),
    queued_bytes: u64,
    arrival_seq: u64,
    inflight: Option<InFlight>,
    /// Generation counter; a stored `TxDone` event is valid only if its
    /// generation matches (preemption invalidates scheduled completions).
    tx_gen: u64,
    /// A `StartTx` event for this link is already scheduled at the
    /// current instant — the network uses this to keep at most one
    /// pending start decision per link.
    pub(crate) start_pending: bool,
    /// Chaos runtime state, present only once a [`crate::ChaosPolicy`]
    /// is installed (see [`crate::Network::install_chaos`]). Chaos-free
    /// links carry a null pointer and take exactly the pre-chaos paths.
    pub(crate) chaos: Option<Box<LinkChaos>>,
    /// Counters.
    pub stats: LinkStats,
}

impl Link {
    /// Create a link with a FIFO scheduler and unbounded buffer.
    pub fn new(id: LinkId, from: NodeId, to: NodeId, bw: Bandwidth, prop: Dur) -> Link {
        Link {
            id,
            from,
            to,
            bw,
            prop,
            buffer: None,
            preemptive: false,
            sched: SchedSlot::Fifo(crate::fifo::Fifo::new()),
            sched_uses_tmin: false,
            tx_memo: (0, Dur::ZERO),
            queued_bytes: 0,
            arrival_seq: 0,
            inflight: None,
            tx_gen: 0,
            start_pending: false,
            chaos: None,
            stats: LinkStats::default(),
        }
    }

    /// Replace the scheduler. Panics if packets are queued or in flight —
    /// schedulers are installed at experiment setup, not mid-run.
    pub fn set_scheduler(&mut self, sched: Box<dyn Scheduler>) {
        assert!(
            self.sched.is_empty() && self.inflight.is_none(),
            "cannot swap scheduler on a busy link"
        );
        self.sched_uses_tmin = sched.uses_tmin();
        self.sched = if sched.is_fifo() && sched.is_empty() {
            SchedSlot::Fifo(crate::fifo::Fifo::new())
        } else {
            SchedSlot::Dyn(sched)
        };
    }

    /// `tx_time` through the one-entry per-link memo.
    #[inline]
    fn tx_time_memo(&mut self, size: u32) -> Dur {
        if self.tx_memo.0 != size {
            self.tx_memo = (size, self.bw.tx_time(size));
        }
        self.tx_memo.1
    }

    /// Name of the installed scheduler.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Packets currently queued (excluding any in flight).
    pub fn queue_len(&self) -> usize {
        self.sched.len()
    }

    /// Bytes currently queued (excluding any in flight).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// True if the transmitter is serializing a packet.
    pub fn is_busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// A packet has fully arrived at this port and wants to be queued.
    ///
    /// Handles buffer admission (consulting the scheduler for a victim),
    /// requests a transmission start if the port is idle, and preempts the
    /// in-flight packet if this port is preemptive and the arrival is more
    /// urgent.
    pub fn admit(&mut self, pkt: Box<Packet>, now: Time) -> PortActions {
        let mut act = PortActions::default();
        self.admit_one(pkt, now, &mut act);
        act.want_start = self.inflight.is_none() && !self.sched.is_empty();
        act
    }

    /// Admit a same-instant run of packets as one batch (the network's
    /// batched drain hands over every consecutive arrival bound for this
    /// port). Packets are admitted in order with identical per-packet
    /// semantics to [`Link::admit`]; the single merged [`PortActions`]
    /// carries all drops (in admission order) and one start request.
    ///
    /// With `inline` set, the caller guarantees this run is the port's
    /// *complete* same-instant arrival group and that the start decision
    /// is taken right now rather than through a deferred `StartTx`. Under
    /// that guarantee a packet reaching an idle, empty, non-preemptive
    /// port goes straight to the wire: the scheduler cannot be asked to
    /// reorder a queue of one, so the enqueue/dequeue round trip (and its
    /// zero-wait slack bookkeeping) is skipped and the completion is
    /// returned in [`PortActions::started`].
    pub fn admit_batch(
        &mut self,
        pkts: &mut Vec<Box<Packet>>,
        now: Time,
        inline: bool,
    ) -> PortActions {
        let mut act = PortActions::default();
        let mut drain = pkts.drain(..);
        if inline {
            if let Some(pkt) = drain.next() {
                if let Some(pkt) = self.wire_fast_path(pkt, now, &mut act) {
                    self.admit_one(pkt, now, &mut act);
                }
            }
        }
        for pkt in drain {
            self.admit_one(pkt, now, &mut act);
        }
        act.want_start = self.inflight.is_none() && !self.sched.is_empty();
        act
    }

    /// Admit one packet outside any batch (the singleton case of
    /// [`Link::admit_batch`], without the drain machinery).
    pub fn admit_single(&mut self, pkt: Box<Packet>, now: Time, inline: bool) -> PortActions {
        let mut act = PortActions::default();
        let pkt = if inline {
            self.wire_fast_path(pkt, now, &mut act)
        } else {
            Some(pkt)
        };
        if let Some(pkt) = pkt {
            self.admit_one(pkt, now, &mut act);
        }
        act.want_start = self.inflight.is_none() && !self.sched.is_empty();
        act
    }

    /// The wire fast path behind `inline` admission (see
    /// [`Link::admit_batch`]): a packet reaching an idle, empty,
    /// non-preemptive FIFO port with room goes straight to the wire,
    /// skipping the scheduler round trip. Returns the packet back when
    /// the port does not qualify.
    ///
    /// Only the devirtualized drop-tail FIFO qualifies: for it,
    /// enqueue-then-immediate-dequeue of the only packet is provably a
    /// no-op. A boxed scheduler may mutate state on *every* dequeue even
    /// with one packet queued — `Random` consumes an RNG draw, DRR moves
    /// its deficit round — so skipping the round trip would change its
    /// later decisions.
    #[inline]
    fn wire_fast_path(
        &mut self,
        mut pkt: Box<Packet>,
        now: Time,
        act: &mut PortActions,
    ) -> Option<Box<Packet>> {
        if !matches!(self.sched, SchedSlot::Fifo(_))
            || self.inflight.is_some()
            || !self.sched.is_empty()
            || self.preemptive
            || self.chaos.is_some()
            || self.buffer.is_some_and(|cap| (pkt.size as u64) > cap)
        {
            return Some(pkt);
        }
        pkt.tx_left = None;
        let mut q = self.make_queued(pkt, now);
        self.stats.enqueued += 1;
        self.stats.max_queue_pkts = self.stats.max_queue_pkts.max(1);
        q.pkt.hop_first_tx = now;
        let tx_end = now + q.tx_dur;
        self.tx_gen += 1;
        self.inflight = Some(InFlight {
            q,
            tx_start: now,
            tx_end,
            urgency: None,
        });
        act.started = Some((tx_end, self.tx_gen));
        None
    }

    /// Admission core shared by [`Link::admit`] and [`Link::admit_batch`]:
    /// everything except the start-request decision, which depends on the
    /// port state after the whole batch.
    fn admit_one(&mut self, mut pkt: Box<Packet>, now: Time, act: &mut PortActions) {
        // A failed link refuses arrivals outright (no queue entry, no
        // arrival-sequence draw — the packet never reached the port).
        if self.chaos.as_ref().is_some_and(|c| c.down) {
            self.stats.dropped += 1;
            self.stats.chaos_drops += 1;
            act.dropped.push(pkt);
            return;
        }
        pkt.tx_left = None;
        let q = self.make_queued(pkt, now);

        // Buffer admission: evict strictly-worse packets until the arrival
        // fits, or drop the arrival if the scheduler prefers to keep what
        // it has (drop-tail default).
        if let Some(cap) = self.buffer {
            while self.queued_bytes + q.pkt.size as u64 > cap {
                // An arrival bigger than the whole buffer can never fit:
                // once the queue is empty no eviction can help, so drop
                // the arrival rather than spin on `evict_for` forever.
                if self.sched.is_empty() {
                    self.stats.dropped += 1;
                    act.dropped.push(q.pkt);
                    return;
                }
                match self.sched.evict_for(&q) {
                    EvictOutcome::Evicted(victim) => {
                        self.queued_bytes -= victim.pkt.size as u64;
                        self.stats.dropped += 1;
                        act.dropped.push(victim.pkt);
                    }
                    EvictOutcome::DropIncoming => {
                        self.stats.dropped += 1;
                        act.dropped.push(q.pkt);
                        return;
                    }
                }
            }
        }

        self.queued_bytes += q.pkt.size as u64;
        self.stats.enqueued += 1;

        // Preemption check (fluid model, ablation only). An arrival at
        // exactly the in-flight packet's completion instant is processed
        // before the completion event (arrivals settle first), so a
        // transmission with no remaining wire time must not be
        // "preempted" — it is already done.
        if self.preemptive {
            if let (Some(new_k), Some(fl)) = (self.sched.urgency(&q), self.inflight.as_ref()) {
                if fl.tx_end > now {
                    if let Some(cur_k) = fl.urgency {
                        if new_k < cur_k {
                            self.preempt(now);
                        }
                    }
                }
            }
        }

        self.sched.enqueue(q);
        self.stats.max_queue_pkts = self.stats.max_queue_pkts.max(self.sched.len());
    }

    /// The `TxDone` event for generation `gen` fired. Returns the completed
    /// packet (if the event is still valid) and possibly a new `TxDone`.
    pub fn tx_done(&mut self, gen: u64, now: Time) -> PortActions {
        let mut act = PortActions::default();
        if gen != self.tx_gen {
            return act; // stale completion from a preempted transmission
        }
        let fl = self
            .inflight
            .take()
            .expect("TxDone with matching generation but no in-flight packet");
        debug_assert_eq!(fl.tx_end, now, "TxDone fired at the wrong time");

        let mut pkt = fl.q.pkt;
        self.stats.tx_done += 1;
        self.stats.bytes_tx += pkt.size as u64;
        self.stats.busy += now - fl.tx_start;
        act.want_start = !self.sched.is_empty();
        // Chaos wire loss: the transmission consumed the wire normally,
        // but the packet is lost instead of forwarded. One draw per
        // completed transmission from this link's dedicated stream.
        if let Some(ch) = self.chaos.as_mut() {
            if ch.drop_prob > 0.0 && ch.rng.gen_bool(ch.drop_prob) {
                self.stats.dropped += 1;
                self.stats.chaos_drops += 1;
                act.dropped.push(pkt);
                return act;
            }
        }
        pkt.advance_hop();
        act.completed = Some(pkt);
        act
    }

    /// Process a same-instant run of `TxDone` events for this link as one
    /// batch. At most one generation can match (each transmission posts
    /// exactly one completion); the rest are stale completions from
    /// preempted transmissions and are skipped without a call.
    pub fn tx_done_batch(&mut self, gens: &[u64], now: Time) -> PortActions {
        let mut act = PortActions::default();
        for &gen in gens {
            if gen != self.tx_gen {
                continue; // stale completion from a preempted transmission
            }
            let mut a = self.tx_done(gen, now);
            debug_assert!(act.completed.is_none(), "two live completions in one batch");
            act.completed = a.completed;
            act.want_start = a.want_start;
            // A chaos wire loss surfaces as a drop instead of a completion.
            act.dropped.append(&mut a.dropped);
        }
        act
    }

    /// Begin transmitting the scheduler's next packet if the port is
    /// idle and packets are queued. Called from the network's deferred
    /// `StartTx` event; redundant calls are no-ops.
    /// Returns the `(tx_end, generation)` pair for the completion event.
    pub fn try_start(&mut self, now: Time) -> Option<(Time, u64)> {
        if self.inflight.is_some() || self.chaos.as_ref().is_some_and(|c| c.blocked()) {
            return None;
        }
        let mut q = self.sched.dequeue()?;
        self.queued_bytes -= q.pkt.size as u64;

        // LSTF dynamic packet state: charge the queueing wait against the
        // header slack. Harmless for schedulers that ignore the header.
        let wait = now - q.enq_time;
        q.pkt.hdr.slack -= wait.as_i64();
        q.pkt.qdelay += wait;
        // Restart the entry's wait clock: the (enq_time, slack) pair must
        // stay consistent so the urgency computed below is the packet's
        // true slack deadline. With the stale enq_time, a packet that
        // waited long before starting service would have its deadline
        // understated by exactly that wait, and arrivals that ought to
        // preempt it would lose the comparison.
        q.enq_time = now;

        let tx_dur = match q.pkt.tx_left {
            Some(left) => left,
            None => {
                // Fresh (non-resumed) transmission: this is the paper's
                // per-hop scheduling time o(p, α).
                q.pkt.hop_first_tx = now;
                self.tx_time_memo(q.pkt.size)
            }
        };
        // Urgency only ever feeds the preemption comparison, so on
        // non-preemptive ports (the default) the call is skipped.
        let urgency = if self.preemptive {
            self.sched.urgency(&q)
        } else {
            None
        };
        let tx_end = now + tx_dur;
        self.tx_gen += 1;
        self.inflight = Some(InFlight {
            q,
            tx_start: now,
            tx_end,
            urgency,
        });
        Some((tx_end, self.tx_gen))
    }

    /// Suspend the in-flight transmission: the serialization time already
    /// spent stays spent (fluid model); the packet re-queues with its
    /// exact remaining wire time and waits again. Time-based tracking
    /// means repeated preemption neither loses nor fabricates capacity.
    fn preempt(&mut self, now: Time) {
        let fl = self.inflight.take().expect("preempt with idle port");
        debug_assert!(fl.tx_end > now, "preempting a finished transmission");
        self.tx_gen += 1; // invalidate the scheduled TxDone
        self.stats.preemptions += 1;
        self.stats.busy += now - fl.tx_start;

        let mut pkt = fl.q.pkt;
        pkt.tx_left = Some(fl.tx_end - now);
        // Re-queue: a fresh wait period begins now. Buffer accounting
        // deliberately re-admits without a capacity check — a preempted
        // packet is never dropped. The caller's `want_start` (set on the
        // preempting arrival's admit) restarts the port.
        let q = self.make_queued(pkt, now);
        self.queued_bytes += q.pkt.size as u64;
        self.sched.enqueue(q);
        // The suspended packet is back in the queue: the depth high-water
        // mark must see it, like every other enqueue path does.
        self.stats.max_queue_pkts = self.stats.max_queue_pkts.max(self.sched.len());
    }

    /// True once a chaos policy is installed on this link.
    pub fn chaos_installed(&self) -> bool {
        self.chaos.is_some()
    }

    /// Kill the in-service transmission, if any, accounting the wire
    /// time already spent and surfacing the packet as a chaos drop. The
    /// scheduled `TxDone` is invalidated through the generation counter,
    /// exactly like a preemption.
    fn chaos_kill_inflight(&mut self, now: Time, act: &mut PortActions) {
        if let Some(fl) = self.inflight.take() {
            self.tx_gen += 1; // the stale TxDone will miss the generation
            self.stats.busy += now - fl.tx_start;
            self.stats.dropped += 1;
            self.stats.chaos_drops += 1;
            act.dropped.push(fl.q.pkt);
        }
    }

    /// The link fails: the in-service packet and the whole scheduler
    /// queue are lost (every [`Scheduler`] drains through its own
    /// `dequeue`, so internal state stays consistent), and arrivals are
    /// refused until [`Link::chaos_recover`].
    pub(crate) fn chaos_fail(&mut self, now: Time) -> PortActions {
        let mut act = PortActions::default();
        self.chaos_kill_inflight(now, &mut act);
        while let Some(q) = self.sched.dequeue() {
            self.queued_bytes -= q.pkt.size as u64;
            self.stats.dropped += 1;
            self.stats.chaos_drops += 1;
            act.dropped.push(q.pkt);
        }
        debug_assert_eq!(self.queued_bytes, 0, "drained queue must hold 0 bytes");
        let ch = self.chaos.as_mut().expect("chaos_fail without a policy");
        if !ch.blocked() {
            ch.outage_since = now;
        }
        ch.down = true;
        self.stats.chaos_downs += 1;
        act
    }

    /// The link comes back up; service resumes if packets are queued
    /// (they can only have arrived while merely jammed, not down).
    pub(crate) fn chaos_recover(&mut self, now: Time) -> PortActions {
        let mut act = PortActions::default();
        let ch = self.chaos.as_mut().expect("chaos_recover without a policy");
        if ch.down {
            ch.down = false;
            if !ch.jammed {
                self.stats.chaos_outage += now - ch.outage_since;
            }
        }
        act.want_start = self.inflight.is_none()
            && !self.sched.is_empty()
            && !self.chaos.as_ref().is_some_and(|c| c.blocked());
        act
    }

    /// A jamming window opens: the in-service packet is lost and the
    /// transmitter stays silent, but — unlike a failure — the queue
    /// survives and keeps accepting arrivals.
    pub(crate) fn chaos_jam_start(&mut self, now: Time) -> PortActions {
        let mut act = PortActions::default();
        self.chaos_kill_inflight(now, &mut act);
        let ch = self
            .chaos
            .as_mut()
            .expect("chaos_jam_start without a policy");
        if !ch.blocked() {
            ch.outage_since = now;
        }
        ch.jammed = true;
        self.stats.chaos_jams += 1;
        act
    }

    /// The jamming window closes; service resumes on the surviving queue.
    pub(crate) fn chaos_jam_end(&mut self, now: Time) -> PortActions {
        let mut act = PortActions::default();
        let ch = self.chaos.as_mut().expect("chaos_jam_end without a policy");
        if ch.jammed {
            ch.jammed = false;
            if !ch.down {
                self.stats.chaos_outage += now - ch.outage_since;
            }
        }
        act.want_start = self.inflight.is_none()
            && !self.sched.is_empty()
            && !self.chaos.as_ref().is_some_and(|c| c.blocked());
        act
    }

    /// Wrap a packet in its queue entry, computing the static per-hop
    /// quantities schedulers may key on.
    fn make_queued(&mut self, pkt: Box<Packet>, now: Time) -> Queued {
        let tx_dur = match pkt.tx_left {
            Some(left) => left,
            None => self.tx_time_memo(pkt.size),
        };
        let remaining_tmin = if self.sched_uses_tmin {
            pkt.remaining_tmin()
        } else {
            Dur::ZERO
        };
        let seq = self.arrival_seq;
        self.arrival_seq += 1;
        Queued {
            pkt,
            enq_time: now,
            tx_dur,
            remaining_tmin,
            arrival_seq: seq,
        }
    }

    /// Cache-warm what a `TxDone` for this link is about to touch: the
    /// in-flight packet, last accessed a full transmission time (often
    /// thousands of events) ago. Issued by the event loop for the *next*
    /// pending event while the current one is processed.
    #[inline]
    pub(crate) fn prefetch_inflight(&self) {
        #[cfg(target_arch = "x86_64")]
        if let Some(fl) = &self.inflight {
            crate::packet::prefetch_packet(&fl.q.pkt);
        }
    }

    /// Utilization of this link over `elapsed` (busy fraction).
    pub fn utilization(&self, elapsed: Dur) -> f64 {
        if elapsed == Dur::ZERO {
            return 0.0;
        }
        self.stats.busy.as_ps() as f64 / elapsed.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketId, PacketKind, Path, SchedHeader};
    use std::sync::Arc;

    fn mk_link() -> Link {
        Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
        )
    }

    fn box_pkt(id: u64, size: u32) -> Box<Packet> {
        Box::new(mk_pkt(id, size))
    }

    fn mk_pkt(id: u64, size: u32) -> Packet {
        let path = Arc::new(Path {
            links: vec![LinkId(0)].into(),
            bw: vec![Bandwidth::gbps(1)].into(),
            prop: vec![Dur::from_micros(5)].into(),
        });
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            seq: id,
            size,
            tx_left: None,
            src: NodeId(0),
            dst: NodeId(1),
            created: Time::ZERO,
            path,
            hops_done: 0,
            hdr: SchedHeader::default(),
            kind: PacketKind::Data { bytes: size },
            qdelay: Dur::ZERO,
            hop_arrive: Time::ZERO,
            hop_first_tx: Time::ZERO,
        }
    }

    #[test]
    fn admit_requests_start_on_idle_port() {
        let mut l = mk_link();
        let act = l.admit(box_pkt(0, 1500), Time::ZERO);
        assert!(act.want_start, "idle port must request a start");
        assert!(!l.is_busy());
        let (end, gen) = l.try_start(Time::ZERO).expect("start");
        assert_eq!(end, Time::from_micros(12)); // 1500B at 1Gbps
        assert!(l.is_busy());
        let done = l.tx_done(gen, end);
        let pkt = done.completed.unwrap();
        assert_eq!(pkt.hops_done, 1);
        assert!(!done.want_start, "queue empty: no further start");
        assert!(!l.is_busy());
        assert_eq!(l.stats.tx_done, 1);
    }

    #[test]
    fn redundant_start_requests_are_noops() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::ZERO);
        l.admit(box_pkt(1, 1500), Time::ZERO);
        assert!(l.try_start(Time::ZERO).is_some());
        // Busy port: second deferred start does nothing.
        assert!(l.try_start(Time::ZERO).is_none());
        // Idle port with empty queue: also a no-op.
        let mut empty = mk_link();
        assert!(empty.try_start(Time::ZERO).is_none());
    }

    #[test]
    fn busy_port_queues_and_chains() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::ZERO);
        let (end0, gen0) = l.try_start(Time::ZERO).unwrap();
        let b = l.admit(box_pkt(1, 1500), Time::from_micros(1));
        assert!(!b.want_start, "busy port must not request a start");
        assert_eq!(l.queue_len(), 1);

        let done = l.tx_done(gen0, end0);
        assert!(done.want_start, "queued packet needs a start");
        let (end1, _) = l.try_start(end0).unwrap();
        assert_eq!(end1, Time::from_micros(24)); // back-to-back
    }

    #[test]
    fn wait_is_charged_to_slack_and_qdelay() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::ZERO);
        let (end0, gen0) = l.try_start(Time::ZERO).unwrap();
        l.admit(box_pkt(1, 1500), Time::from_micros(2));
        l.tx_done(gen0, end0);
        // Second packet waited from 2us until 12us = 10us.
        let (end1, gen1) = l.try_start(end0).unwrap();
        let p = l.tx_done(gen1, end1).completed.unwrap();
        assert_eq!(p.qdelay, Dur::from_micros(10));
        assert_eq!(p.hdr.slack, -(Dur::from_micros(10).as_i64()));
    }

    #[test]
    fn first_packet_has_zero_wait() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::from_micros(7));
        let (end, gen) = l.try_start(Time::from_micros(7)).unwrap();
        let p = l.tx_done(gen, end).completed.unwrap();
        assert_eq!(p.qdelay, Dur::ZERO);
        assert_eq!(p.hdr.slack, 0);
    }

    /// Minimal preemption-capable scheduler (urgency = header slack,
    /// FIFO service): `ups-net` cannot use `ups-sched`'s LSTF here
    /// without a dependency cycle.
    #[derive(Debug, Default)]
    struct SlackUrgency {
        q: std::collections::VecDeque<Queued>,
    }
    impl Scheduler for SlackUrgency {
        fn name(&self) -> &'static str {
            "test-slack"
        }
        fn enqueue(&mut self, q: Queued) {
            self.q.push_back(q);
        }
        fn dequeue(&mut self) -> Option<Queued> {
            self.q.pop_front()
        }
        fn len(&self) -> usize {
            self.q.len()
        }
        fn urgency(&self, q: &Queued) -> Option<i64> {
            Some(q.pkt.hdr.slack)
        }
    }

    #[test]
    fn preempt_updates_queue_depth_high_water_mark() {
        let mut l = mk_link();
        l.preemptive = true;
        l.set_scheduler(Box::new(SlackUrgency::default()));

        let mut lazy = mk_pkt(0, 1500);
        lazy.hdr.slack = 1_000_000_000; // plenty of slack: preemptible
        l.admit(Box::new(lazy), Time::ZERO);
        l.try_start(Time::ZERO).unwrap(); // in flight, queue empty
        assert_eq!(l.stats.max_queue_pkts, 1);

        let mut urgent = mk_pkt(1, 1500);
        urgent.hdr.slack = -1; // more urgent than the in-flight packet
        l.admit(Box::new(urgent), Time::from_micros(1));
        assert_eq!(l.stats.preemptions, 1, "urgent arrival must preempt");
        // Both the re-queued (suspended) packet and the arrival are in
        // the queue now; the high-water mark must count them both.
        assert_eq!(l.queue_len(), 2);
        assert_eq!(
            l.stats.max_queue_pkts, 2,
            "suspended packet missing from the depth high-water mark"
        );
    }

    #[test]
    fn oversized_arrival_on_empty_queue_is_dropped_not_looped() {
        let mut l = mk_link();
        l.buffer = Some(1000); // smaller than one 1500 B packet
        let act = l.admit(box_pkt(0, 1500), Time::ZERO);
        assert_eq!(act.dropped.len(), 1);
        assert_eq!(act.dropped[0].id, PacketId(0));
        assert!(!act.want_start, "nothing admitted, nothing to start");
        assert_eq!(l.stats.dropped, 1);
        assert_eq!(l.stats.enqueued, 0);
        assert_eq!(l.queue_len(), 0);
    }

    #[test]
    fn drop_tail_on_overflow() {
        let mut l = mk_link();
        l.buffer = Some(3000); // room for two 1500B packets in queue
        l.admit(box_pkt(0, 1500), Time::ZERO);
        l.try_start(Time::ZERO).unwrap(); // packet 0 goes in flight
                                          // Two fit in the buffer while one transmits...
        assert!(l.admit(box_pkt(1, 1500), Time::ZERO).dropped.is_empty());
        assert!(l.admit(box_pkt(2, 1500), Time::ZERO).dropped.is_empty());
        // ...the fourth overflows and FIFO drops the arrival.
        let act = l.admit(box_pkt(3, 1500), Time::ZERO);
        assert_eq!(act.dropped.len(), 1);
        assert_eq!(act.dropped[0].id, PacketId(3));
        assert_eq!(l.stats.dropped, 1);
    }

    #[test]
    fn stale_tx_done_is_ignored() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::ZERO);
        let (_end, gen) = l.try_start(Time::ZERO).unwrap();
        let stale = l.tx_done(gen + 17, Time::from_micros(1));
        assert!(stale.completed.is_none());
        assert!(l.is_busy());
    }

    #[test]
    fn zero_tx_time_on_infinite_bandwidth() {
        let mut l = Link::new(
            LinkId(0),
            NodeId(0),
            NodeId(1),
            Bandwidth::INFINITE,
            Dur::ZERO,
        );
        l.admit(box_pkt(0, 1500), Time::from_micros(3));
        let (end, gen) = l.try_start(Time::from_micros(3)).unwrap();
        assert_eq!(
            end,
            Time::from_micros(3),
            "infinite bw serializes instantly"
        );
        let done = l.tx_done(gen, end);
        assert!(done.completed.is_some());
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut l = mk_link();
        l.admit(box_pkt(0, 1500), Time::ZERO);
        let (end, gen) = l.try_start(Time::ZERO).unwrap();
        l.tx_done(gen, end);
        // Busy 12us out of 24us elapsed = 50%.
        let u = l.utilization(Dur::from_micros(24));
        assert!((u - 0.5).abs() < 1e-9);
    }
}
