//! The frozen forwarding table: a flat next-hop cache plus path resolution.
//!
//! [`crate::Network::compute_routes`] runs its all-destinations Dijkstra
//! and then freezes the result into a [`RoutingTable`]: a dense CSR-style
//! `(destination, node) → [next-hop links]` array. Resolving one hop is
//! two array indexes — an offset lookup and an ECMP member pick — instead
//! of walking the per-node `NextHop` enum vec and matching its variants.
//! The table also snapshots each link's `(to, bw, prop)` so a full
//! source-route ([`RoutingTable::resolve_path`]) needs no access to the
//! `Network` at all.
//!
//! The handle doubles as the API's proof of route finalization: packet
//! injection ([`crate::Network::inject`]) takes `&RoutingTable`, so
//! "inject before routing" fails to compile instead of panicking at run
//! time (the old design tracked readiness with a hidden bool and a
//! runtime assert).
//!
//! ECMP determinism: a flow's hash depends only on the flow id, so it is
//! computed **once** per resolve and reused at every hop. This picks
//! byte-identical paths to the legacy per-hop [`crate::NextHop::pick`]
//! (which recomputes the same hash at each hop) — a property the routing
//! proptest checks on random connected topologies.

use crate::network::Network;
use crate::packet::{FlowId, LinkId, NodeId, Path};
use std::sync::Arc;
use ups_sim::{Bandwidth, Dur};

/// Immutable, flat forwarding state frozen from a routed [`Network`].
#[derive(Debug)]
pub struct RoutingTable {
    /// Number of nodes (the table is dense over `n × n` pairs).
    n: usize,
    /// CSR offsets, destination-major: the equal-cost next hops of
    /// `(node, dest)` are `hops[off[dest·n + node] .. off[dest·n + node + 1]]`.
    /// An empty range means unreachable (or `node == dest`).
    off: Box<[u32]>,
    /// Concatenated ECMP member links for every `(node, dest)` pair.
    hops: Box<[LinkId]>,
    /// Per-link receiving node, indexed by `LinkId`.
    link_to: Box<[NodeId]>,
    /// Per-link serialization rate, indexed by `LinkId`.
    link_bw: Box<[Bandwidth]>,
    /// Per-link propagation delay, indexed by `LinkId`.
    link_prop: Box<[Dur]>,
}

impl RoutingTable {
    /// Freeze the network's per-node `NextHop` tables into flat arrays.
    /// Called by [`Network::compute_routes`] after the Dijkstra pass.
    pub(crate) fn freeze(net: &Network) -> RoutingTable {
        let n = net.nodes.len();
        let mut off = Vec::with_capacity(n * n + 1);
        let mut hops = Vec::new();
        off.push(0u32);
        for dest in 0..n {
            for node in net.nodes.iter() {
                match &node.routes[dest] {
                    crate::node::NextHop::None => {}
                    crate::node::NextHop::One(l) => hops.push(*l),
                    crate::node::NextHop::Ecmp(ls) => hops.extend_from_slice(ls),
                }
                off.push(hops.len() as u32);
            }
        }
        RoutingTable {
            n,
            off: off.into(),
            hops: hops.into(),
            link_to: net.links.iter().map(|l| l.to).collect(),
            link_bw: net.links.iter().map(|l| l.bw).collect(),
            link_prop: net.links.iter().map(|l| l.prop).collect(),
        }
    }

    /// The deterministic ECMP hash of a flow id (SplitMix-style
    /// avalanche, identical to [`crate::NextHop::pick`]'s). Hop-invariant
    /// by construction, so callers hash once per path resolution.
    pub fn flow_hash(flow: FlowId) -> u64 {
        let mut z = flow.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next link from `node` toward `dest` for a flow with the given
    /// precomputed [`flow_hash`](RoutingTable::flow_hash). Two array
    /// indexes: the CSR offset pair, then the hash-picked ECMP member.
    /// `None` if unreachable (or `node == dest`).
    #[inline]
    pub fn next_hop(&self, node: NodeId, dest: NodeId, hash: u64) -> Option<LinkId> {
        let idx = dest.0 as usize * self.n + node.0 as usize;
        let (lo, hi) = (self.off[idx] as usize, self.off[idx + 1] as usize);
        match hi - lo {
            0 => None,
            1 => Some(self.hops[lo]),
            w => Some(self.hops[lo + (hash % w as u64) as usize]),
        }
    }

    /// Number of equal-cost next hops from `node` toward `dest`
    /// (0 = unreachable).
    pub fn ecmp_width(&self, node: NodeId, dest: NodeId) -> usize {
        let idx = dest.0 as usize * self.n + node.0 as usize;
        (self.off[idx + 1] - self.off[idx]) as usize
    }

    /// Resolve the full source route for `flow` from `src` to `dst`.
    /// Panics if no route exists; paths longer than 64 hops are treated
    /// as routing loops.
    pub fn resolve_path(&self, src: NodeId, dst: NodeId, flow: FlowId) -> Arc<Path> {
        let hash = Self::flow_hash(flow);
        let mut links = Vec::new();
        let mut bw = Vec::new();
        let mut prop = Vec::new();
        let mut at = src;
        while at != dst {
            let hop = self
                .next_hop(at, dst, hash)
                .unwrap_or_else(|| panic!("no route {at:?} -> {dst:?}"));
            links.push(hop);
            bw.push(self.link_bw[hop.0 as usize]);
            prop.push(self.link_prop[hop.0 as usize]);
            at = self.link_to[hop.0 as usize];
            assert!(links.len() <= 64, "routing loop {src:?} -> {dst:?}");
        }
        Arc::new(Path {
            links: links.into(),
            bw: bw.into(),
            prop: prop.into(),
        })
    }
}
