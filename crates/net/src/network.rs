//! The network: nodes, links, the event loop, and the application hook.
//!
//! This is the ns-2 replacement. A [`Network`] owns every node and link,
//! a deterministic future-event list, and per-packet telemetry. Four
//! event kinds drive everything, ordered by class within an instant:
//!
//! * `Arrive` — a packet has fully arrived at a node (store-and-forward:
//!   forwarding decisions happen only on complete packets);
//! * `Timer` — an application timer (TCP retransmission, flow arrivals);
//! * `TxDone` — a link finished serializing a packet;
//! * `StartTx` — a deferred transmission-start decision, processed after
//!   every same-instant arrival has settled so the port's scheduler sees
//!   the complete queue (the formal model's semantics).
//!
//! Applications ([`App`]) attach to host nodes and may inject packets and
//! set timers; the replay experiments instead pre-schedule open-loop UDP
//! injections directly.
//!
//! # Hot-path batching
//!
//! Two hot-path optimizations are provably order-identical to the naive
//! one-event-at-a-time loop and are on by default:
//!
//! * **Batched same-instant drain.** When the event wheel's current slot
//!   holds a run of same-instant events for the same link — arrivals
//!   fanning into one output port, or transmission completions —
//!   [`Network::step`] drains the run as one batch
//!   ([`Link::admit_batch`] / [`Link::tx_done_batch`]), paying the event
//!   dispatch and scheduler virtual-call overhead once per run instead of
//!   once per packet. Batch members are processed in exactly their pop
//!   order, and admitting a packet never touches the event queue, so the
//!   sequence of link-state mutations is identical to single stepping
//!   (the batch proptest cross-checks this). [`Network::set_batched_drain`]
//!   selects the reference single-event mode.
//! * **`StartTx` elision.** At most one `StartTx` is kept pending per
//!   link (a per-link flag dedups the redundant requests that same-instant
//!   arrivals used to push), and on networks where every link has finite
//!   bandwidth and positive propagation delay, a completion whose queue
//!   is non-empty starts the next transmission inline rather than through
//!   a deferred event. Inline starts are safe exactly then: all
//!   same-instant arrivals pop (class 1) before any completion (class 3),
//!   and with positive delays no *new* same-instant arrival can be
//!   created once completions are being processed — so the scheduler
//!   state seen inline equals what the deferred `StartTx` would have
//!   seen. Networks with infinite-bandwidth or zero-delay "theory" links
//!   keep full deferral automatically, as do networks with a chaos
//!   policy installed ([`Network::install_chaos`]).

use crate::chaos::{self, ChaosPhase, ChaosPolicy, ChaosTotals};
use crate::link::Link;
use crate::node::{NextHop, Node, NodeKind};
use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketKind, Path, SchedHeader};
use crate::routing::RoutingTable;
use crate::scheduler::Scheduler;
use crate::slab::{PacketRef, PacketSlab};
use crate::trace::{HopTimes, Telemetry, TraceLevel};
use std::sync::Arc;
use ups_obs::{NetSeries, SamplePoint};
use ups_sim::{Bandwidth, Dur, EventQueue, Time};

/// Simulation events, in same-instant ordering-class order: chaos
/// transitions settle first (class 0), then arrivals (1), application
/// timers (2), transmission completions (3), and transmission-start
/// decisions last — so a port choosing what to send at time `t` sees
/// every packet that has arrived by `t`, as the paper's formal model
/// assumes, and a failure at `t` is in force before anything else
/// happens at `t`.
///
/// `Arrive` carries a [`PacketRef`] into the network's [`PacketSlab`],
/// not the packet itself: the event is 16 bytes and scheduling a hop
/// allocates nothing (the old representation boxed every packet into its
/// event — one heap allocation per packet-hop).
#[derive(Debug)]
enum Ev {
    /// Packet fully arrived at `node` (injection or store-and-forward hop).
    Arrive { node: NodeId, pkt: PacketRef },
    /// Application timer at `node`.
    Timer { node: NodeId, id: u64 },
    /// Link `link` finished the transmission tagged `gen`.
    TxDone { link: LinkId, gen: u64 },
    /// Deferred transmission-start decision for `link`.
    StartTx { link: LinkId },
    /// Chaos-layer state transition for `link` (see [`crate::chaos`];
    /// exists only when [`Network::install_chaos`] compiled a policy).
    Chaos { link: LinkId, phase: ChaosPhase },
    /// Telemetry sampling tick (see [`Network::enable_sampling`]).
    Observe,
}

/// Event ordering classes (see [`Ev`]). Infinite-bandwidth "wire" links
/// start eagerly (class 4, before scheduler decisions at class 5) so a
/// packet cascading through zero-time hops reaches its next real queue
/// within the same instant, before any port there picks what to send.
mod class {
    /// Chaos-layer transitions settle before any same-instant data-plane
    /// event, so a failure or jam at `t` is in force for every arrival
    /// and completion at `t`. Chaos events exist only when a policy is
    /// installed; the class shift below is uniform, so chaos-free runs
    /// pop in exactly the pre-chaos relative order.
    pub const CHAOS: u8 = 0;
    pub const ARRIVE: u8 = 1;
    pub const TIMER: u8 = 2;
    pub const TX_DONE: u8 = 3;
    pub const START_WIRE: u8 = 4;
    pub const START_TX: u8 = 5;
    /// Telemetry sampling pops *after every data-plane class* at an
    /// instant, so an observation sees the settled state of time `t`
    /// and can never reorder data-plane pops — the invariant that keeps
    /// artifacts byte-identical with sampling on.
    pub const OBSERVE: u8 = 6;
}

/// An application endpoint attached to a host node.
///
/// Methods receive `&mut Network` so they can inject packets and arm
/// timers; the app itself is temporarily detached during the callback, so
/// it cannot reentrantly reach its own slot.
pub trait App: std::fmt::Debug + Send {
    /// A packet addressed to this host arrived.
    fn on_deliver(&mut self, net: &mut Network, node: NodeId, pkt: &Packet);
    /// A timer armed with [`Network::set_timer`] fired.
    fn on_timer(&mut self, net: &mut Network, node: NodeId, id: u64);
}

/// Declarative per-link configuration, applied through
/// [`Network::configure_links`]. Every field defaults to "keep the
/// link's current setting"; builder methods opt individual knobs in.
///
/// This replaces the former mutator sprawl (`set_scheduler`,
/// `set_all_schedulers`, `set_all_buffers`, `set_all_preemptive`) with
/// one composable value, so an experiment states its whole port policy in
/// a single closure:
///
/// ```ignore
/// net.configure_links(|l| {
///     LinkPolicy::keep()
///         .scheduler(make_sched(l.id))
///         .buffer(None)
///         .preemptive(true)
/// });
/// ```
#[derive(Debug, Default)]
pub struct LinkPolicy {
    scheduler: Option<Box<dyn Scheduler>>,
    buffer: Option<Option<u64>>,
    preemptive: Option<bool>,
}

impl LinkPolicy {
    /// A policy that changes nothing (the identity element).
    pub fn keep() -> LinkPolicy {
        LinkPolicy::default()
    }

    /// Install this scheduler (panics later if the link is busy, as
    /// [`Link::set_scheduler`] does).
    pub fn scheduler(mut self, sched: Box<dyn Scheduler>) -> LinkPolicy {
        self.scheduler = Some(sched);
        self
    }

    /// Set the buffer capacity in bytes; `None` = unbounded.
    pub fn buffer(mut self, bytes: Option<u64>) -> LinkPolicy {
        self.buffer = Some(bytes);
        self
    }

    /// Enable or disable preemptive transmission.
    pub fn preemptive(mut self, on: bool) -> LinkPolicy {
        self.preemptive = Some(on);
        self
    }
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    /// All nodes; `NodeId` indexes this vector.
    pub nodes: Vec<Node>,
    /// All unidirectional links; `LinkId` indexes this vector.
    pub links: Vec<Link>,
    /// Telemetry sink.
    pub telemetry: Telemetry,
    queue: EventQueue<Ev>,
    /// Arena for packets travelling between events (see [`PacketSlab`]).
    slab: PacketSlab,
    apps: Vec<Option<Box<dyn App>>>,
    /// Number of attached applications. Zero means no callback can
    /// inject packets or arm timers mid-instant, which is one of the
    /// preconditions for starting transmissions inline from an arrival
    /// batch (see the module docs).
    napps: usize,
    next_pkt_id: u64,
    /// Frozen forwarding state; `Some` once `compute_routes` has run.
    routing: Option<Arc<RoutingTable>>,
    /// Every link so far has finite bandwidth and positive propagation
    /// delay — the precondition for starting a queued transmission inline
    /// from a completion instead of deferring through a `StartTx` event.
    eager_ok: bool,
    /// Batched same-instant drain (default). Off = reference mode: one
    /// event per [`Network::step`], for equivalence tests.
    batch: bool,
    /// Scratch for the arrivals of one same-instant batch.
    arrive_scratch: Vec<(NodeId, PacketRef)>,
    /// Scratch for one same-link run of packets handed to `admit_batch`.
    /// Packets live their whole life as `Box<Packet>` (slab slots, link
    /// queues), so the run must carry the boxes, not unboxed copies.
    #[allow(clippy::vec_box)]
    run_scratch: Vec<Box<Packet>>,
    /// Scratch for one same-link run of `TxDone` generations.
    gen_scratch: Vec<u64>,
    /// Scratch marking arrivals already claimed by an earlier run.
    used_scratch: Vec<bool>,
    /// Deterministic state sampler, when enabled (see
    /// [`Network::enable_sampling`]). Sampling is read-only over links
    /// and the packet arena — it mutates no data-plane state and is not
    /// counted in [`Counters::events`](crate::Counters).
    sampler: Option<NetSeries>,
}

impl Network {
    /// Create an empty network recording at the given level.
    ///
    /// If a process-wide sampling cadence is set
    /// ([`ups_obs::set_sample_interval`]), sampling starts enabled at
    /// that cadence — this is how the sweep engine's pooled workers pick
    /// up `--telemetry` without any runner plumbing.
    pub fn new(level: TraceLevel) -> Network {
        let mut net = Network {
            nodes: Vec::new(),
            links: Vec::new(),
            telemetry: Telemetry::new(level),
            queue: EventQueue::new(),
            slab: PacketSlab::new(),
            apps: Vec::new(),
            napps: 0,
            next_pkt_id: 0,
            routing: None,
            eager_ok: true,
            batch: true,
            arrive_scratch: Vec::new(),
            run_scratch: Vec::new(),
            gen_scratch: Vec::new(),
            used_scratch: Vec::new(),
            sampler: None,
        };
        if let Some(interval) = ups_obs::sample_interval() {
            net.enable_sampling(interval);
        }
        net
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, name.into(), kind));
        self.apps.push(None);
        self.routing = None;
        id
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a router node.
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    /// Add a unidirectional link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, bw: Bandwidth, prop: Dur) -> LinkId {
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, bw, prop));
        self.nodes[from.0 as usize].out_links.push(id);
        self.routing = None;
        // "Theory" links (instant serialization or zero-delay wires) can
        // cascade new same-instant arrivals while completions are being
        // processed, so they force fully deferred transmission starts.
        if bw == Bandwidth::INFINITE || prop == Dur::ZERO {
            self.eager_ok = false;
        }
        id
    }

    /// Add a bidirectional link (two unidirectional links).
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        bw: Bandwidth,
        prop: Dur,
    ) -> (LinkId, LinkId) {
        (self.add_link(a, b, bw, prop), self.add_link(b, a, bw, prop))
    }

    /// Apply a [`LinkPolicy`] to every link. The closure sees each link
    /// (id, endpoints, current settings) and returns what to change;
    /// [`LinkPolicy::keep`] leaves a link untouched.
    pub fn configure_links(&mut self, mut policy: impl FnMut(&Link) -> LinkPolicy) {
        for i in 0..self.links.len() {
            let p = policy(&self.links[i]);
            let l = &mut self.links[i];
            if let Some(sched) = p.scheduler {
                l.set_scheduler(sched);
            }
            if let Some(bytes) = p.buffer {
                l.buffer = bytes;
            }
            if let Some(on) = p.preemptive {
                l.preemptive = on;
            }
        }
    }

    /// Install a scheduler on one link.
    #[deprecated(note = "use configure_links with LinkPolicy::keep().scheduler(..)")]
    pub fn set_scheduler(&mut self, link: LinkId, sched: Box<dyn Scheduler>) {
        self.links[link.0 as usize].set_scheduler(sched);
    }

    /// Install schedulers on every link from a factory.
    #[deprecated(note = "use configure_links with LinkPolicy::keep().scheduler(..)")]
    pub fn set_all_schedulers(&mut self, mut make: impl FnMut(&Link) -> Box<dyn Scheduler>) {
        self.configure_links(|l| LinkPolicy::keep().scheduler(make(l)));
    }

    /// Set every link's buffer capacity (bytes); `None` = unbounded.
    #[deprecated(note = "use configure_links with LinkPolicy::keep().buffer(..)")]
    pub fn set_all_buffers(&mut self, bytes: Option<u64>) {
        self.configure_links(|_| LinkPolicy::keep().buffer(bytes));
    }

    /// Enable or disable preemptive transmission on every link.
    #[deprecated(note = "use configure_links with LinkPolicy::keep().preemptive(..)")]
    pub fn set_all_preemptive(&mut self, on: bool) {
        self.configure_links(|_| LinkPolicy::keep().preemptive(on));
    }

    /// Install a chaos perturbation layer (see [`crate::chaos`]): the
    /// closure is consulted once per link, in link-id order, and returns
    /// the [`ChaosPolicy`] to compile for that link — or `None` to leave
    /// it untouched. Every failure and jamming window up to `horizon` is
    /// compiled into explicit events in the dedicated chaos class right
    /// here, so the run is a pure function of `(topology, workload,
    /// policy, horizon)`; the i.i.d. wire-loss stream is forked per link
    /// from the policy seed, independent of every workload RNG.
    ///
    /// Installing any policy disables the inline-start elision: chaos
    /// transitions mutate port state mid-instant, so chaotic runs keep
    /// the fully deferred reference semantics (correctness never
    /// depended on the elision — only chaos-free speed does).
    pub fn install_chaos(
        &mut self,
        horizon: Time,
        mut policy: impl FnMut(&Link) -> Option<ChaosPolicy>,
    ) {
        for i in 0..self.links.len() {
            let Some(p) = policy(&self.links[i]) else {
                continue;
            };
            let lid = self.links[i].id;
            let (state, events) = chaos::compile(&p, lid, horizon);
            for (t, phase) in events {
                self.queue
                    .push(t, class::CHAOS, Ev::Chaos { link: lid, phase });
            }
            self.links[i].chaos = Some(Box::new(state));
            self.eager_ok = false;
        }
    }

    /// Attach an application to a host node.
    pub fn attach_app(&mut self, node: NodeId, app: Box<dyn App>) {
        assert!(
            self.nodes[node.0 as usize].is_host(),
            "apps attach to hosts only"
        );
        if self.apps[node.0 as usize].replace(app).is_none() {
            self.napps += 1;
        }
    }

    /// Detach and return the application at `node`, if any. Used after a
    /// run to harvest application-level results (e.g. flow completions).
    pub fn take_app(&mut self, node: NodeId) -> Option<Box<dyn App>> {
        let app = self.apps[node.0 as usize].take();
        self.napps -= app.is_some() as usize;
        app
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Compute shortest-path next-hop tables for every (node, destination)
    /// pair and freeze them into a [`RoutingTable`]. Link cost =
    /// propagation delay + transmission time of a 1500-byte packet;
    /// equal-cost next hops form a deterministic ECMP set.
    ///
    /// The returned handle is the injection API's proof that routes
    /// exist: [`Network::inject`] takes `&RoutingTable`, so injecting
    /// before routing is a compile-time error. The handle is also kept
    /// internally (see [`Network::routing`]) for applications that
    /// resolve paths at run time.
    #[must_use = "injection consumes the routing handle"]
    pub fn compute_routes(&mut self) -> Arc<RoutingTable> {
        let n = self.nodes.len();
        // in_links[v] = links arriving at v (for the reverse Dijkstra).
        let mut in_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_links[l.to.0 as usize].push(l.id);
        }
        for node in &mut self.nodes {
            node.routes = vec![NextHop::None; n];
        }

        // Per-link cost, computed once: `tx_time` is a 128-bit division,
        // and the relaxation loops below would otherwise repeat it for
        // every (destination, edge) pair — the dominant cost of routing
        // a few-hundred-node topology.
        let cost: Vec<u64> = self
            .links
            .iter()
            .map(|l| (l.prop + l.bw.tx_time(1500)).as_ps())
            .collect();

        // One reverse-Dijkstra per destination. The scratch vectors are
        // reused across destinations so the whole pass allocates only
        // for the ECMP sets it actually stores.
        let mut dist: Vec<u64> = Vec::new();
        let mut heap = std::collections::BinaryHeap::new();
        let mut best: Vec<LinkId> = Vec::new();
        for dest in 0..n {
            dist.clear();
            dist.resize(n, u64::MAX);
            dist[dest] = 0;
            heap.clear();
            heap.push(std::cmp::Reverse((0u64, dest as u32)));
            while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                for &lid in &in_links[v as usize] {
                    let l = &self.links[lid.0 as usize];
                    let u = l.from.0 as usize;
                    let nd = d + cost[lid.0 as usize];
                    if nd < dist[u] {
                        dist[u] = nd;
                        heap.push(std::cmp::Reverse((nd, u as u32)));
                    }
                }
            }
            // Collect, per node, all outgoing links on a shortest path.
            for u in 0..n {
                if u == dest || dist[u] == u64::MAX {
                    continue;
                }
                best.clear();
                for &lid in &self.nodes[u].out_links {
                    let l = &self.links[lid.0 as usize];
                    if dist[l.to.0 as usize] != u64::MAX
                        && cost[lid.0 as usize] + dist[l.to.0 as usize] == dist[u]
                    {
                        best.push(lid);
                    }
                }
                self.nodes[u].routes[dest] = match best.len() {
                    0 => NextHop::None,
                    1 => NextHop::One(best[0]),
                    _ => NextHop::Ecmp(best.as_slice().into()),
                };
            }
        }
        let table = Arc::new(RoutingTable::freeze(self));
        self.routing = Some(Arc::clone(&table));
        table
    }

    /// The frozen routing table. Panics if [`Network::compute_routes`]
    /// has not run (or the topology changed since): run-time path
    /// resolution (e.g. a transport opening a reverse path) goes through
    /// this accessor.
    pub fn routing(&self) -> &Arc<RoutingTable> {
        self.routing
            .as_ref()
            .expect("compute_routes() before routing()")
    }

    // ------------------------------------------------------------------
    // Injection and timers
    // ------------------------------------------------------------------

    /// Inject a packet at `at` (≥ now) on an explicit path.
    /// Returns the assigned packet id.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_on_path(
        &mut self,
        at: Time,
        flow: FlowId,
        seq: u64,
        size: u32,
        src: NodeId,
        dst: NodeId,
        path: Arc<Path>,
        hdr: SchedHeader,
        kind: PacketKind,
    ) -> PacketId {
        let id = PacketId(self.next_pkt_id);
        self.next_pkt_id += 1;
        let pkt = Box::new(Packet {
            id,
            flow,
            seq,
            size,
            tx_left: None,
            src,
            dst,
            created: at,
            path,
            hops_done: 0,
            hdr,
            kind,
            qdelay: Dur::ZERO,
            hop_arrive: at,
            hop_first_tx: at,
        });
        self.telemetry.on_inject(&pkt);
        let pkt = self.slab.insert(pkt);
        self.queue
            .push(at, class::ARRIVE, Ev::Arrive { node: src, pkt });
        id
    }

    /// Inject a packet at `at`, resolving its source route from the
    /// routing table returned by [`Network::compute_routes`].
    #[allow(clippy::too_many_arguments)]
    pub fn inject(
        &mut self,
        routes: &RoutingTable,
        at: Time,
        flow: FlowId,
        seq: u64,
        size: u32,
        src: NodeId,
        dst: NodeId,
        hdr: SchedHeader,
        kind: PacketKind,
    ) -> PacketId {
        let path = routes.resolve_path(src, dst, flow);
        self.inject_on_path(at, flow, seq, size, src, dst, path, hdr, kind)
    }

    /// Arm an application timer at `node` to fire at `at`.
    pub fn set_timer(&mut self, node: NodeId, at: Time, id: u64) {
        self.queue.push(at, class::TIMER, Ev::Timer { node, id });
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pending event count.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Packets currently travelling between events (injected or
    /// propagating toward their next hop; excludes packets sitting in
    /// link queues).
    pub fn packets_in_flight(&self) -> usize {
        self.slab.len()
    }

    /// Peak simultaneous [`packets_in_flight`](Network::packets_in_flight)
    /// count — the packet arena's high-water mark (capacity diagnostics).
    pub fn peak_packets_in_flight(&self) -> usize {
        self.slab.high_water()
    }

    /// Select batched (default) or single-event reference stepping. The
    /// two are bit-identical in outcome — the reference mode exists so
    /// the equivalence proptest has something to compare against.
    pub fn set_batched_drain(&mut self, on: bool) {
        self.batch = on;
    }

    /// Process the next pending work item: one event, or — in batched
    /// mode — one same-instant run of arrivals or completions for a
    /// single link. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.queue.pop() else {
            return false;
        };
        if matches!(ev, Ev::Observe) {
            // Pure observation: sample, maybe reschedule, and leave the
            // data plane — including the event counter — untouched.
            self.observe(now);
            return true;
        }
        self.telemetry.counters.events += 1;
        match ev {
            Ev::Arrive { node, pkt } => {
                if self.batch {
                    self.arrive_scratch.clear();
                    self.slab.prefetch(pkt);
                    self.arrive_scratch.push((node, pkt));
                    while let Some((_, ev)) = self
                        .queue
                        .pop_if(|t, e| t == now && matches!(e, Ev::Arrive { .. }))
                    {
                        self.telemetry.counters.events += 1;
                        let Ev::Arrive { node, pkt } = ev else {
                            unreachable!("predicate admits arrivals only")
                        };
                        // Warm later batch members while earlier ones are
                        // grouped and admitted.
                        self.slab.prefetch(pkt);
                        self.arrive_scratch.push((node, pkt));
                    }
                    // The scratch now holds *every* arrival at this
                    // instant. If nothing can add more work at `now` —
                    // network is eager-safe, no app callbacks, and no
                    // same-instant timer pending — each port may start
                    // transmitting inline once its whole group is
                    // admitted, eliding the deferred `StartTx` event.
                    let inline_ok = self.eager_ok
                        && self.napps == 0
                        && !matches!(
                            self.queue.peek_cur(),
                            Some((t, Ev::Timer { .. })) if t == now
                        );
                    if self.arrive_scratch.len() == 1 {
                        // Singleton instant (the common case): no grouping
                        // to do, skip the batch scratch machinery.
                        self.arrive_scratch.clear();
                        self.handle_arrive_single(node, pkt, now, inline_ok);
                    } else {
                        self.handle_arrive_batch(now, inline_ok);
                    }
                } else {
                    self.handle_arrive(node, pkt, now);
                }
            }
            Ev::TxDone { link, gen } => {
                if self.batch {
                    self.gen_scratch.clear();
                    self.gen_scratch.push(gen);
                    while let Some((_, ev)) = self.queue.pop_if(|t, e| {
                        t == now && matches!(e, Ev::TxDone { link: l, .. } if *l == link)
                    }) {
                        self.telemetry.counters.events += 1;
                        let Ev::TxDone { gen, .. } = ev else {
                            unreachable!("predicate admits completions only")
                        };
                        self.gen_scratch.push(gen);
                    }
                    if self.gen_scratch.len() == 1 {
                        self.handle_tx_done(link, gen, now);
                    } else {
                        let gens = std::mem::take(&mut self.gen_scratch);
                        let actions = self.links[link.0 as usize].tx_done_batch(&gens, now);
                        self.gen_scratch = gens;
                        self.apply_port_actions(link, actions, now, true);
                    }
                } else {
                    self.handle_tx_done(link, gen, now);
                }
            }
            Ev::Timer { node, id } => self.dispatch_timer(node, id),
            Ev::StartTx { link } => self.handle_start_tx(link, now),
            Ev::Chaos { link, phase } => self.handle_chaos(link, phase, now),
            Ev::Observe => unreachable!("handled before dispatch"),
        }
        // Cache-warm the state the *next* pending event will touch while
        // this step's stores are still retiring: packets are accessed
        // once per hop with thousands of events between touches, so the
        // first access of each hop otherwise pays a full cache miss.
        if let Some((_, ev)) = self.queue.peek_cur() {
            match ev {
                Ev::Arrive { pkt, .. } => self.slab.prefetch(*pkt),
                Ev::TxDone { link, .. } => self.links[link.0 as usize].prefetch_inflight(),
                _ => {}
            }
        }
        true
    }

    /// Enable deterministic state sampling at the given cadence
    /// (`interval > 0`): every `interval` of simulated time an
    /// observation event — ordered *after* every data-plane event class
    /// at its instant — records aggregate queue depth, link busy time,
    /// and in-flight population into a [`NetSeries`]. Sampling is
    /// strictly read-only, so all simulation outcomes are bit-identical
    /// with it on or off; it self-terminates when the event queue
    /// drains, so `run_to_completion` still ends. No-op when `ups-obs`
    /// is compiled with its `off` feature.
    pub fn enable_sampling(&mut self, interval: Dur) {
        assert!(interval > Dur::ZERO, "sampling interval must be positive");
        if !ups_obs::COMPILED {
            return;
        }
        if self.sampler.is_none() {
            self.queue
                .push(self.queue.now() + interval, class::OBSERVE, Ev::Observe);
        }
        self.sampler = Some(NetSeries::new(interval, 0));
    }

    /// Harvest the sampled series and disable further sampling. `None`
    /// when sampling was never enabled.
    pub fn take_series(&mut self) -> Option<NetSeries> {
        self.sampler.take().map(|mut s| {
            s.links = self.links.len() as u64;
            s
        })
    }

    /// Handle one observation tick: sample aggregate network state and
    /// reschedule while any data-plane work remains.
    fn observe(&mut self, now: Time) {
        let Some(series) = self.sampler.as_mut() else {
            // Sampling was disabled (series harvested) with a tick still
            // in flight: let the chain die.
            return;
        };
        let mut queued_pkts = 0u64;
        let mut queued_bytes = 0u64;
        let mut max_queue_pkts = 0u64;
        let mut busy_links = 0u64;
        let mut busy_ps_total = 0u64;
        for l in &self.links {
            let q = l.queue_len() as u64;
            queued_pkts += q;
            queued_bytes += l.queued_bytes();
            max_queue_pkts = max_queue_pkts.max(q);
            busy_links += l.is_busy() as u64;
            busy_ps_total += l.stats.busy.as_ps();
        }
        series.samples.push(SamplePoint {
            t: now,
            queued_pkts,
            queued_bytes,
            max_queue_pkts,
            busy_links,
            in_flight: self.slab.len() as u64,
            busy_ps_total,
        });
        // Reschedule only while other events remain: the sampler must
        // never keep an otherwise-finished simulation alive.
        if !self.queue.is_empty() {
            let interval = series.interval;
            self.queue.push(now + interval, class::OBSERVE, Ev::Observe);
        }
    }

    /// Run until the event queue drains or the next event is after
    /// `deadline`. Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.queue.now()
    }

    /// Run until the event queue is fully drained.
    pub fn run_to_completion(&mut self) -> Time {
        while self.step() {}
        self.queue.now()
    }

    fn handle_arrive(&mut self, node: NodeId, pkt: PacketRef, now: Time) {
        let mut pkt = self.slab.remove(pkt);
        if node == pkt.dst && pkt.at_destination() {
            self.telemetry.on_deliver(&pkt, now);
            self.dispatch_deliver(node, pkt, now);
            return;
        }
        let lid = pkt
            .next_link()
            .unwrap_or_else(|| panic!("packet {:?} stranded at {node:?}", pkt.id));
        debug_assert_eq!(
            self.links[lid.0 as usize].from, node,
            "path inconsistent with arrival node"
        );
        pkt.hop_arrive = now;
        let actions = self.links[lid.0 as usize].admit(pkt, now);
        self.apply_port_actions(lid, actions, now, false);
    }

    /// Process an instant whose complete arrival set is one packet — the
    /// common case — without the batch grouping machinery. Identical
    /// per-packet semantics to [`Network::handle_arrive_batch`].
    fn handle_arrive_single(&mut self, node: NodeId, pref: PacketRef, now: Time, inline_ok: bool) {
        let mut pkt = self.slab.remove(pref);
        if node == pkt.dst && pkt.at_destination() {
            self.telemetry.on_deliver(&pkt, now);
            self.dispatch_deliver(node, pkt, now);
            return;
        }
        let lid = pkt
            .next_link()
            .unwrap_or_else(|| panic!("packet {:?} stranded at {node:?}", pkt.id));
        debug_assert_eq!(
            self.links[lid.0 as usize].from, node,
            "path inconsistent with arrival node"
        );
        pkt.hop_arrive = now;
        let actions = self.links[lid.0 as usize].admit_single(pkt, now, inline_ok);
        self.apply_port_actions(lid, actions, now, inline_ok);
    }

    /// Process one same-instant batch of arrivals (`arrive_scratch`, in
    /// pop order): deliveries dispatch singly; forwards bound for the
    /// same output port are admitted as one run.
    ///
    /// With `inline_ok` (no app callbacks, eager-safe network, no
    /// same-instant timer) the batch is the instant's *complete* arrival
    /// set, so each port's group — consecutive or not — is gathered into
    /// one run and the port starts transmitting inline right after, with
    /// no deferred `StartTx` event. Admissions to different ports touch
    /// disjoint state and per-port admission order is preserved, so the
    /// outcome is identical to deferred stepping. Without `inline_ok`
    /// only consecutive runs batch and starts stay deferred, keeping app
    /// callbacks interleaved exactly as single stepping would.
    fn handle_arrive_batch(&mut self, now: Time, inline_ok: bool) {
        let scratch = std::mem::take(&mut self.arrive_scratch);
        let mut run = std::mem::take(&mut self.run_scratch);
        let mut used = std::mem::take(&mut self.used_scratch);
        used.clear();
        used.resize(scratch.len(), false);
        let mut i = 0;
        while i < scratch.len() {
            if used[i] {
                i += 1;
                continue;
            }
            let (node, pref) = scratch[i];
            i += 1;
            let mut pkt = self.slab.remove(pref);
            if node == pkt.dst && pkt.at_destination() {
                self.telemetry.on_deliver(&pkt, now);
                self.dispatch_deliver(node, pkt, now);
                continue;
            }
            let lid = pkt
                .next_link()
                .unwrap_or_else(|| panic!("packet {:?} stranded at {node:?}", pkt.id));
            debug_assert_eq!(
                self.links[lid.0 as usize].from, node,
                "path inconsistent with arrival node"
            );
            pkt.hop_arrive = now;
            run.clear();
            run.push(pkt);
            // In deferred mode every joined packet is the consecutive
            // head, so the outer index can skip past them afterward.
            let mut consumed = 0;
            for j in i..scratch.len() {
                if used[j] {
                    continue;
                }
                let (_, p2) = scratch[j];
                let peek = self.slab.get(p2);
                if peek.at_destination() || peek.next_link() != Some(lid) {
                    if inline_ok {
                        continue; // full grouping: keep scanning the instant
                    }
                    break; // deferred mode: consecutive runs only
                }
                let mut pkt2 = self.slab.remove(p2);
                pkt2.hop_arrive = now;
                run.push(pkt2);
                used[j] = true;
                if !inline_ok {
                    consumed += 1;
                }
            }
            i += consumed;
            let actions = self.links[lid.0 as usize].admit_batch(&mut run, now, inline_ok);
            self.apply_port_actions(lid, actions, now, inline_ok);
        }
        self.run_scratch = run;
        self.arrive_scratch = scratch;
        self.used_scratch = used;
    }

    fn handle_tx_done(&mut self, lid: LinkId, gen: u64, now: Time) {
        let actions = self.links[lid.0 as usize].tx_done(gen, now);
        self.apply_port_actions(lid, actions, now, true);
    }

    /// Apply one chaos transition to its link and route the fallout
    /// (killed/drained packets, restart requests) through the normal
    /// port-action plumbing, so chaos drops hit [`Telemetry::on_drop`]
    /// like any buffer drop.
    fn handle_chaos(&mut self, lid: LinkId, phase: ChaosPhase, now: Time) {
        let link = &mut self.links[lid.0 as usize];
        let actions = match phase {
            ChaosPhase::Down => link.chaos_fail(now),
            ChaosPhase::Up => link.chaos_recover(now),
            ChaosPhase::JamStart => link.chaos_jam_start(now),
            ChaosPhase::JamEnd => link.chaos_jam_end(now),
        };
        self.apply_port_actions(lid, actions, now, false);
    }

    fn handle_start_tx(&mut self, lid: LinkId, now: Time) {
        self.links[lid.0 as usize].start_pending = false;
        if let Some((end, gen)) = self.links[lid.0 as usize].try_start(now) {
            self.queue
                .push(end, class::TX_DONE, Ev::TxDone { link: lid, gen });
        }
    }

    /// The port at `lid` is idle with packets queued: start a
    /// transmission, either inline (`inline` set, on an eager-safe
    /// network — see the module docs) or via a deduplicated deferred
    /// `StartTx` event.
    fn request_start(&mut self, lid: LinkId, now: Time, inline: bool) {
        if inline && self.eager_ok {
            self.handle_start_tx(lid, now);
        } else if !self.links[lid.0 as usize].start_pending {
            self.links[lid.0 as usize].start_pending = true;
            let cls = if self.links[lid.0 as usize].bw == Bandwidth::INFINITE {
                class::START_WIRE
            } else {
                class::START_TX
            };
            self.queue.push(now, cls, Ev::StartTx { link: lid });
        }
    }

    fn apply_port_actions(
        &mut self,
        lid: LinkId,
        actions: crate::link::PortActions,
        now: Time,
        inline: bool,
    ) {
        for dropped in actions.dropped {
            self.telemetry.on_drop(&dropped, now, lid.0);
        }
        if let Some(pkt) = actions.completed {
            let times = HopTimes {
                arrive: pkt.hop_arrive,
                tx_start: pkt.hop_first_tx,
                tx_end: now,
            };
            self.telemetry.on_hop(pkt.id, times);
            self.telemetry.on_hop_lifecycle(&pkt, lid.0, times);
            let to = self.links[lid.0 as usize].to;
            let prop = self.links[lid.0 as usize].prop;
            let pkt = self.slab.insert(pkt);
            self.queue
                .push(now + prop, class::ARRIVE, Ev::Arrive { node: to, pkt });
        }
        if let Some((end, gen)) = actions.started {
            self.queue
                .push(end, class::TX_DONE, Ev::TxDone { link: lid, gen });
        }
        if actions.want_start {
            self.request_start(lid, now, inline);
        }
    }

    fn dispatch_deliver(&mut self, node: NodeId, pkt: Box<Packet>, _now: Time) {
        if let Some(mut app) = self.apps[node.0 as usize].take() {
            app.on_deliver(self, node, &pkt);
            debug_assert!(
                self.apps[node.0 as usize].is_none(),
                "app slot refilled during callback"
            );
            self.apps[node.0 as usize] = Some(app);
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, id: u64) {
        if let Some(mut app) = self.apps[node.0 as usize].take() {
            app.on_timer(self, node, id);
            self.apps[node.0 as usize] = Some(app);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All host node ids, in creation order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_host())
            .map(|n| n.id)
            .collect()
    }

    /// All link ids.
    pub fn link_ids(&self) -> Vec<LinkId> {
        (0..self.links.len() as u32).map(LinkId).collect()
    }

    /// Aggregate chaos-layer counters over every link (all zero when no
    /// policy is installed).
    pub fn chaos_totals(&self) -> ChaosTotals {
        let mut t = ChaosTotals::default();
        for l in &self.links {
            t.drops += l.stats.chaos_drops;
            t.downs += l.stats.chaos_downs;
            t.jams += l.stats.chaos_jams;
            t.outage += l.stats.chaos_outage;
        }
        t
    }

    /// Accumulate the chaos counters into an [`ups_obs::Registry`]:
    /// `chaos_drops`, `chaos_link_downs`, `chaos_jam_windows`, and
    /// `chaos_outage_us` (total down/jam time, µs).
    pub fn export_chaos_metrics(&self, reg: &mut ups_obs::Registry) {
        let t = self.chaos_totals();
        let id = reg.counter("chaos_drops");
        reg.add(id, t.drops);
        let id = reg.counter("chaos_link_downs");
        reg.add(id, t.downs);
        let id = reg.counter("chaos_jam_windows");
        reg.add(id, t.jams);
        let id = reg.counter("chaos_outage_us");
        reg.add(id, t.outage.as_ps() / ups_sim::PS_PER_US);
    }

    /// The slowest link bandwidth in the network (paper's threshold `T` is
    /// one transmission time on this bottleneck).
    pub fn bottleneck_bw(&self) -> Bandwidth {
        self.links
            .iter()
            .map(|l| l.bw)
            .min()
            .expect("network has no links")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two hosts, one router, 1 Gbps everywhere, 5 us propagation.
    fn line() -> (Network, Arc<RoutingTable>, NodeId, NodeId) {
        let mut net = Network::new(TraceLevel::Hops);
        let h0 = net.add_host("h0");
        let r = net.add_router("r");
        let h1 = net.add_host("h1");
        net.add_duplex(h0, r, Bandwidth::gbps(1), Dur::from_micros(5));
        net.add_duplex(r, h1, Bandwidth::gbps(1), Dur::from_micros(5));
        let rt = net.compute_routes();
        (net, rt, h0, h1)
    }

    #[test]
    fn single_packet_end_to_end_latency_is_tmin() {
        let (mut net, rt, h0, h1) = line();
        net.inject(
            &rt,
            Time::ZERO,
            FlowId(0),
            0,
            1500,
            h0,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.run_to_completion();
        let rec = &net.telemetry.packets[0];
        // 2 hops: 12us tx + 5us prop each = 34us.
        assert_eq!(rec.delivered, Some(Time::from_micros(34)));
        assert_eq!(rec.tmin(), Dur::from_micros(34));
        assert_eq!(rec.congestion_points(), 0);
        assert_eq!(net.telemetry.counters.delivered, 1);
    }

    #[test]
    fn back_to_back_packets_queue_at_source() {
        let (mut net, rt, h0, h1) = line();
        for s in 0..3 {
            net.inject(
                &rt,
                Time::ZERO,
                FlowId(0),
                s,
                1500,
                h0,
                h1,
                SchedHeader::default(),
                PacketKind::Data { bytes: 1460 },
            );
        }
        net.run_to_completion();
        // Packet k leaves the host NIC at 12(k+1) us; delivery at +22us more.
        for (k, rec) in net.telemetry.packets.iter().enumerate() {
            let want = Time::from_micros(34 + 12 * k as u64);
            assert_eq!(rec.delivered, Some(want), "packet {k}");
        }
        // Packets 1,2 waited at the host NIC: exactly one congestion point.
        assert_eq!(net.telemetry.packets[0].congestion_points(), 0);
        assert_eq!(net.telemetry.packets[1].congestion_points(), 1);
        assert_eq!(net.telemetry.packets[2].congestion_points(), 1);
        // And their recorded queueing delays are 12us and 24us.
        assert_eq!(
            net.telemetry.packets[1].total_qdelay(),
            Dur::from_micros(12)
        );
        assert_eq!(
            net.telemetry.packets[2].total_qdelay(),
            Dur::from_micros(24)
        );
    }

    #[test]
    fn cross_traffic_congests_shared_link() {
        // h0 and h2 both send to h1 through r at the same instant: the
        // r->h1 link is a congestion point for whoever loses the toss.
        let mut net = Network::new(TraceLevel::Hops);
        let h0 = net.add_host("h0");
        let h2 = net.add_host("h2");
        let r = net.add_router("r");
        let h1 = net.add_host("h1");
        for h in [h0, h2] {
            net.add_duplex(h, r, Bandwidth::gbps(1), Dur::from_micros(5));
        }
        net.add_duplex(r, h1, Bandwidth::gbps(1), Dur::from_micros(5));
        let rt = net.compute_routes();
        net.inject(
            &rt,
            Time::ZERO,
            FlowId(0),
            0,
            1500,
            h0,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.inject(
            &rt,
            Time::ZERO,
            FlowId(1),
            0,
            1500,
            h2,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.run_to_completion();
        let cps: Vec<usize> = net
            .telemetry
            .packets
            .iter()
            .map(|r| r.congestion_points())
            .collect();
        cps.iter().for_each(|&c| assert!(c <= 1));
        assert_eq!(cps.iter().sum::<usize>(), 1, "exactly one packet waits");
        // The loser is delayed by exactly one transmission time.
        let d: Vec<Time> = net
            .telemetry
            .packets
            .iter()
            .map(|r| r.delivered.unwrap())
            .collect();
        assert_eq!(d[0].max(d[1]) - d[0].min(d[1]), Dur::from_micros(12));
    }

    #[test]
    fn routes_prefer_fewer_slow_hops() {
        // h0 -> r0 -> h1 direct (fast) vs h0 -> r0 -> r1 -> h1: Dijkstra
        // must pick the 2-hop route.
        let mut net = Network::new(TraceLevel::Delivery);
        let h0 = net.add_host("h0");
        let r0 = net.add_router("r0");
        let r1 = net.add_router("r1");
        let h1 = net.add_host("h1");
        net.add_duplex(h0, r0, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r0, r1, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r0, h1, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r1, h1, Bandwidth::gbps(10), Dur::from_micros(1));
        let rt = net.compute_routes();
        let p = rt.resolve_path(h0, h1, FlowId(0));
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let (mut net, rt, h0, h1) = line();
            for s in 0..50 {
                net.inject(
                    &rt,
                    Time::from_nanos(137 * s),
                    FlowId(s % 3),
                    s,
                    1500,
                    h0,
                    h1,
                    SchedHeader::default(),
                    PacketKind::Data { bytes: 1460 },
                );
            }
            net.run_to_completion();
            net.telemetry
                .packets
                .iter()
                .map(|r| r.delivered.unwrap().as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_and_single_event_stepping_agree() {
        // Same 60-packet fan-in run in batched and reference mode:
        // delivery times, qdelay, and drop counts must be bit-identical.
        let run = |batched: bool| {
            let mut net = Network::new(TraceLevel::Hops);
            let hs: Vec<NodeId> = (0..4).map(|i| net.add_host(format!("h{i}"))).collect();
            let r = net.add_router("r");
            let sink = net.add_host("sink");
            for &h in &hs {
                net.add_duplex(h, r, Bandwidth::gbps(1), Dur::from_micros(2));
            }
            net.add_duplex(r, sink, Bandwidth::gbps(1), Dur::from_micros(2));
            let rt = net.compute_routes();
            net.set_batched_drain(batched);
            for s in 0..60u64 {
                net.inject(
                    &rt,
                    Time::from_nanos(500 * (s % 5)),
                    FlowId(s % 4),
                    s,
                    1500,
                    hs[(s % 4) as usize],
                    sink,
                    SchedHeader::default(),
                    PacketKind::Data { bytes: 1460 },
                );
            }
            net.run_to_completion();
            net.telemetry
                .packets
                .iter()
                .map(|p| (p.delivered.map(|t| t.as_ps()), p.total_qdelay().as_ps()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(true), run(false));
    }

    /// Sampling is pure observation: enabling it changes no delivery
    /// time, no counter, and no per-packet record — and the sampler
    /// self-terminates, so the run still completes.
    #[test]
    fn sampling_never_perturbs_outcomes() {
        let run = |sample: bool| {
            let (mut net, rt, h0, h1) = line();
            if sample {
                net.enable_sampling(Dur::from_micros(7));
            }
            for s in 0..40 {
                net.inject(
                    &rt,
                    Time::from_nanos(311 * s),
                    FlowId(s % 2),
                    s,
                    1500,
                    h0,
                    h1,
                    SchedHeader::default(),
                    PacketKind::Data { bytes: 1460 },
                );
            }
            net.run_to_completion();
            let outcomes: Vec<_> = net
                .telemetry
                .packets
                .iter()
                .map(|p| (p.delivered.map(|t| t.as_ps()), p.total_qdelay().as_ps()))
                .collect();
            (outcomes, net.telemetry.counters.events, net.take_series())
        };
        let (plain, plain_events, no_series) = run(false);
        let (sampled, sampled_events, series) = run(true);
        assert_eq!(plain, sampled, "sampling changed packet outcomes");
        assert_eq!(
            plain_events, sampled_events,
            "sampling leaked into the event counter"
        );
        assert!(no_series.is_none());
        if ups_obs::COMPILED {
            let series = series.expect("sampling was enabled");
            assert!(!series.samples.is_empty());
            assert_eq!(series.links, 4, "line() has two duplex links");
            // Samples are strictly ordered and on the cadence grid.
            for w in series.samples.windows(2) {
                assert!(w[0].t < w[1].t);
            }
            assert!(series
                .samples
                .iter()
                .all(|s| s.t.as_ps() % Dur::from_micros(7).as_ps() == 0));
            // Mid-run congestion is visible: some sample saw a queue.
            assert!(series.samples.iter().any(|s| s.queued_pkts > 0));
        }
    }

    /// The lifecycle ring records inject/enqueue/tx-start/deliver in
    /// timestamp-faithful form and flags deadline misses, without
    /// changing outcomes.
    #[test]
    fn lifecycle_ring_records_packet_story() {
        let (mut net, rt, h0, h1) = line();
        net.telemetry.enable_lifecycle(256);
        // Flow 0 gets an absurdly tight absolute deadline, so its
        // deliveries must all be recorded as misses.
        net.telemetry.set_flow_deadlines(vec![(0, 1_000)]);
        for s in 0..4 {
            net.inject(
                &rt,
                Time::ZERO,
                FlowId(s % 2),
                s,
                1500,
                h0,
                h1,
                SchedHeader::default(),
                PacketKind::Data { bytes: 1460 },
            );
        }
        net.run_to_completion();
        assert_eq!(net.telemetry.counters.delivered, 4);
        if !ups_obs::COMPILED {
            return;
        }
        let ring = net.telemetry.lifecycle.as_ref().unwrap();
        let count = |kind: ups_obs::LifeKind| ring.iter().filter(|e| e.kind == kind).count();
        assert_eq!(count(ups_obs::LifeKind::Inject), 4);
        assert_eq!(count(ups_obs::LifeKind::Deliver), 4);
        // 2 hops per packet.
        assert_eq!(count(ups_obs::LifeKind::Enqueue), 8);
        assert_eq!(count(ups_obs::LifeKind::TxStart), 8);
        // Only flow 0's two packets miss the 1 ns deadline.
        assert_eq!(count(ups_obs::LifeKind::DeadlineMiss), 2);
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), ring.len());
        assert!(jsonl.contains("\"kind\":\"deadline_miss\""));
    }

    #[test]
    #[should_panic(expected = "compute_routes() before routing()")]
    fn runtime_routing_access_requires_computed_routes() {
        let mut net = Network::new(TraceLevel::Off);
        let h0 = net.add_host("h0");
        let h1 = net.add_host("h1");
        net.add_duplex(h0, h1, Bandwidth::gbps(1), Dur::from_micros(1));
        let _ = net.routing();
    }

    #[test]
    fn topology_changes_invalidate_the_stored_routing_handle() {
        let (mut net, _rt, _h0, _h1) = line();
        assert!(net.routing().ecmp_width(NodeId(0), NodeId(2)) > 0);
        let extra = net.add_host("late");
        let _ = extra;
        // The stored handle is cleared until routes are recomputed.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = net.routing();
        }));
        assert!(result.is_err(), "stale routing handle must not survive");
    }
}
