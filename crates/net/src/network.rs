//! The network: nodes, links, the event loop, and the application hook.
//!
//! This is the ns-2 replacement. A [`Network`] owns every node and link,
//! a deterministic future-event list, and per-packet telemetry. Four
//! event kinds drive everything, ordered by class within an instant:
//!
//! * `Arrive` — a packet has fully arrived at a node (store-and-forward:
//!   forwarding decisions happen only on complete packets);
//! * `Timer` — an application timer (TCP retransmission, flow arrivals);
//! * `TxDone` — a link finished serializing a packet;
//! * `StartTx` — a deferred transmission-start decision, processed after
//!   every same-instant arrival has settled so the port's scheduler sees
//!   the complete queue (the formal model's semantics).
//!
//! Applications ([`App`]) attach to host nodes and may inject packets and
//! set timers; the replay experiments instead pre-schedule open-loop UDP
//! injections directly.

use crate::link::Link;
use crate::node::{NextHop, Node, NodeKind};
use crate::packet::{FlowId, LinkId, NodeId, Packet, PacketId, PacketKind, Path, SchedHeader};
use crate::scheduler::Scheduler;
use crate::slab::{PacketRef, PacketSlab};
use crate::trace::{HopTimes, Telemetry, TraceLevel};
use std::sync::Arc;
use ups_sim::{Bandwidth, Dur, EventQueue, Time};

/// Simulation events, in same-instant ordering-class order: arrivals
/// settle first (class 0), then application timers (1), then
/// transmission completions (2), and transmission-start decisions last
/// (3) — so a port choosing what to send at time `t` sees every packet
/// that has arrived by `t`, as the paper's formal model assumes.
///
/// `Arrive` carries a [`PacketRef`] into the network's [`PacketSlab`],
/// not the packet itself: the event is 16 bytes and scheduling a hop
/// allocates nothing (the old representation boxed every packet into its
/// event — one heap allocation per packet-hop).
#[derive(Debug)]
enum Ev {
    /// Packet fully arrived at `node` (injection or store-and-forward hop).
    Arrive { node: NodeId, pkt: PacketRef },
    /// Application timer at `node`.
    Timer { node: NodeId, id: u64 },
    /// Link `link` finished the transmission tagged `gen`.
    TxDone { link: LinkId, gen: u64 },
    /// Deferred transmission-start decision for `link`.
    StartTx { link: LinkId },
}

/// Event ordering classes (see [`Ev`]). Infinite-bandwidth "wire" links
/// start eagerly (class 3, before scheduler decisions at class 4) so a
/// packet cascading through zero-time hops reaches its next real queue
/// within the same instant, before any port there picks what to send.
mod class {
    pub const ARRIVE: u8 = 0;
    pub const TIMER: u8 = 1;
    pub const TX_DONE: u8 = 2;
    pub const START_WIRE: u8 = 3;
    pub const START_TX: u8 = 4;
}

/// An application endpoint attached to a host node.
///
/// Methods receive `&mut Network` so they can inject packets and arm
/// timers; the app itself is temporarily detached during the callback, so
/// it cannot reentrantly reach its own slot.
pub trait App: std::fmt::Debug + Send {
    /// A packet addressed to this host arrived.
    fn on_deliver(&mut self, net: &mut Network, node: NodeId, pkt: &Packet);
    /// A timer armed with [`Network::set_timer`] fired.
    fn on_timer(&mut self, net: &mut Network, node: NodeId, id: u64);
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    /// All nodes; `NodeId` indexes this vector.
    pub nodes: Vec<Node>,
    /// All unidirectional links; `LinkId` indexes this vector.
    pub links: Vec<Link>,
    /// Telemetry sink.
    pub telemetry: Telemetry,
    queue: EventQueue<Ev>,
    /// Arena for packets travelling between events (see [`PacketSlab`]).
    slab: PacketSlab,
    apps: Vec<Option<Box<dyn App>>>,
    next_pkt_id: u64,
    routes_ready: bool,
}

impl Network {
    /// Create an empty network recording at the given level.
    pub fn new(level: TraceLevel) -> Network {
        Network {
            nodes: Vec::new(),
            links: Vec::new(),
            telemetry: Telemetry::new(level),
            queue: EventQueue::new(),
            slab: PacketSlab::new(),
            apps: Vec::new(),
            next_pkt_id: 0,
            routes_ready: false,
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Add a node.
    pub fn add_node(&mut self, name: impl Into<String>, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, name.into(), kind));
        self.apps.push(None);
        self.routes_ready = false;
        id
    }

    /// Add a host node.
    pub fn add_host(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Host)
    }

    /// Add a router node.
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, NodeKind::Router)
    }

    /// Add a unidirectional link.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, bw: Bandwidth, prop: Dur) -> LinkId {
        assert_ne!(from, to, "self-loop link");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link::new(id, from, to, bw, prop));
        self.nodes[from.0 as usize].out_links.push(id);
        self.routes_ready = false;
        id
    }

    /// Add a bidirectional link (two unidirectional links).
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        bw: Bandwidth,
        prop: Dur,
    ) -> (LinkId, LinkId) {
        (self.add_link(a, b, bw, prop), self.add_link(b, a, bw, prop))
    }

    /// Install a scheduler on one link.
    pub fn set_scheduler(&mut self, link: LinkId, sched: Box<dyn Scheduler>) {
        self.links[link.0 as usize].set_scheduler(sched);
    }

    /// Install schedulers on every link from a factory.
    pub fn set_all_schedulers(&mut self, mut make: impl FnMut(&Link) -> Box<dyn Scheduler>) {
        for i in 0..self.links.len() {
            let sched = make(&self.links[i]);
            self.links[i].set_scheduler(sched);
        }
    }

    /// Set every link's buffer capacity (bytes); `None` = unbounded.
    pub fn set_all_buffers(&mut self, bytes: Option<u64>) {
        for l in &mut self.links {
            l.buffer = bytes;
        }
    }

    /// Enable or disable preemptive transmission on every link.
    pub fn set_all_preemptive(&mut self, on: bool) {
        for l in &mut self.links {
            l.preemptive = on;
        }
    }

    /// Attach an application to a host node.
    pub fn attach_app(&mut self, node: NodeId, app: Box<dyn App>) {
        assert!(
            self.nodes[node.0 as usize].is_host(),
            "apps attach to hosts only"
        );
        self.apps[node.0 as usize] = Some(app);
    }

    /// Detach and return the application at `node`, if any. Used after a
    /// run to harvest application-level results (e.g. flow completions).
    pub fn take_app(&mut self, node: NodeId) -> Option<Box<dyn App>> {
        self.apps[node.0 as usize].take()
    }

    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Compute shortest-path next-hop tables for every (node, destination)
    /// pair. Link cost = propagation delay + transmission time of a
    /// 1500-byte packet; equal-cost next hops form a deterministic ECMP
    /// set. Must be called after topology construction and before
    /// injecting routed traffic.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        // in_links[v] = links arriving at v (for the reverse Dijkstra).
        let mut in_links: Vec<Vec<LinkId>> = vec![Vec::new(); n];
        for l in &self.links {
            in_links[l.to.0 as usize].push(l.id);
        }
        for node in &mut self.nodes {
            node.routes = vec![NextHop::None; n];
        }

        let cost_of = |l: &Link| -> u64 { (l.prop + l.bw.tx_time(1500)).as_ps() };

        // One reverse-Dijkstra per destination.
        let mut dist: Vec<u64> = Vec::new();
        for dest in 0..n {
            dist.clear();
            dist.resize(n, u64::MAX);
            dist[dest] = 0;
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((0u64, dest as u32)));
            while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
                if d > dist[v as usize] {
                    continue;
                }
                for &lid in &in_links[v as usize] {
                    let l = &self.links[lid.0 as usize];
                    let u = l.from.0 as usize;
                    let nd = d + cost_of(l);
                    if nd < dist[u] {
                        dist[u] = nd;
                        heap.push(std::cmp::Reverse((nd, u as u32)));
                    }
                }
            }
            // Collect, per node, all outgoing links on a shortest path.
            for u in 0..n {
                if u == dest || dist[u] == u64::MAX {
                    continue;
                }
                let mut best: Vec<LinkId> = Vec::new();
                for &lid in &self.nodes[u].out_links {
                    let l = &self.links[lid.0 as usize];
                    if dist[l.to.0 as usize] != u64::MAX
                        && cost_of(l) + dist[l.to.0 as usize] == dist[u]
                    {
                        best.push(lid);
                    }
                }
                self.nodes[u].routes[dest] = match best.len() {
                    0 => NextHop::None,
                    1 => NextHop::One(best[0]),
                    _ => NextHop::Ecmp(best.into()),
                };
            }
        }
        self.routes_ready = true;
    }

    /// Resolve the full route for `flow` from `src` to `dst` using the
    /// next-hop tables (per-flow ECMP hashing).
    pub fn resolve_path(&self, src: NodeId, dst: NodeId, flow: FlowId) -> Arc<Path> {
        assert!(self.routes_ready, "compute_routes() before resolve_path()");
        let mut links = Vec::new();
        let mut bw = Vec::new();
        let mut prop = Vec::new();
        let mut at = src;
        while at != dst {
            let hop = self.nodes[at.0 as usize].routes[dst.0 as usize]
                .pick(flow)
                .unwrap_or_else(|| panic!("no route {at:?} -> {dst:?}"));
            let l = &self.links[hop.0 as usize];
            links.push(hop);
            bw.push(l.bw);
            prop.push(l.prop);
            at = l.to;
            assert!(links.len() <= 64, "routing loop {src:?} -> {dst:?}");
        }
        Arc::new(Path {
            links: links.into(),
            bw: bw.into(),
            prop: prop.into(),
        })
    }

    // ------------------------------------------------------------------
    // Injection and timers
    // ------------------------------------------------------------------

    /// Inject a packet at `at` (≥ now) on an explicit path.
    /// Returns the assigned packet id.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_on_path(
        &mut self,
        at: Time,
        flow: FlowId,
        seq: u64,
        size: u32,
        src: NodeId,
        dst: NodeId,
        path: Arc<Path>,
        hdr: SchedHeader,
        kind: PacketKind,
    ) -> PacketId {
        let id = PacketId(self.next_pkt_id);
        self.next_pkt_id += 1;
        let pkt = Packet {
            id,
            flow,
            seq,
            size,
            tx_left: None,
            src,
            dst,
            created: at,
            path,
            hops_done: 0,
            hdr,
            kind,
            qdelay: Dur::ZERO,
            hop_arrive: at,
            hop_first_tx: at,
        };
        self.telemetry.on_inject(&pkt);
        let pkt = self.slab.insert(pkt);
        self.queue
            .push(at, class::ARRIVE, Ev::Arrive { node: src, pkt });
        id
    }

    /// Inject a packet at `at`, resolving the path from the routing tables.
    #[allow(clippy::too_many_arguments)]
    pub fn inject(
        &mut self,
        at: Time,
        flow: FlowId,
        seq: u64,
        size: u32,
        src: NodeId,
        dst: NodeId,
        hdr: SchedHeader,
        kind: PacketKind,
    ) -> PacketId {
        let path = self.resolve_path(src, dst, flow);
        self.inject_on_path(at, flow, seq, size, src, dst, path, hdr, kind)
    }

    /// Arm an application timer at `node` to fire at `at`.
    pub fn set_timer(&mut self, node: NodeId, at: Time, id: u64) {
        self.queue.push(at, class::TIMER, Ev::Timer { node, id });
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Pending event count.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Packets currently travelling between events (injected or
    /// propagating toward their next hop; excludes packets sitting in
    /// link queues).
    pub fn packets_in_flight(&self) -> usize {
        self.slab.len()
    }

    /// Peak simultaneous [`packets_in_flight`](Network::packets_in_flight)
    /// count — the packet arena's high-water mark (capacity diagnostics).
    pub fn peak_packets_in_flight(&self) -> usize {
        self.slab.high_water()
    }

    /// Process a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((now, ev)) = self.queue.pop() else {
            return false;
        };
        self.telemetry.counters.events += 1;
        match ev {
            Ev::Arrive { node, pkt } => self.handle_arrive(node, pkt, now),
            Ev::TxDone { link, gen } => self.handle_tx_done(link, gen, now),
            Ev::Timer { node, id } => self.dispatch_timer(node, id),
            Ev::StartTx { link } => self.handle_start_tx(link, now),
        }
        true
    }

    /// Run until the event queue drains or the next event is after
    /// `deadline`. Returns the time of the last processed event.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.queue.now()
    }

    /// Run until the event queue is fully drained.
    pub fn run_to_completion(&mut self) -> Time {
        while self.step() {}
        self.queue.now()
    }

    fn handle_arrive(&mut self, node: NodeId, pkt: PacketRef, now: Time) {
        let mut pkt = self.slab.remove(pkt);
        if node == pkt.dst && pkt.at_destination() {
            self.telemetry.on_deliver(&pkt, now);
            self.dispatch_deliver(node, pkt, now);
            return;
        }
        let lid = pkt
            .next_link()
            .unwrap_or_else(|| panic!("packet {:?} stranded at {node:?}", pkt.id));
        debug_assert_eq!(
            self.links[lid.0 as usize].from, node,
            "path inconsistent with arrival node"
        );
        pkt.hop_arrive = now;
        let actions = self.links[lid.0 as usize].admit(pkt, now);
        self.apply_port_actions(lid, actions, now);
    }

    fn handle_tx_done(&mut self, lid: LinkId, gen: u64, now: Time) {
        let actions = self.links[lid.0 as usize].tx_done(gen, now);
        self.apply_port_actions(lid, actions, now);
    }

    fn handle_start_tx(&mut self, lid: LinkId, now: Time) {
        if let Some((end, gen)) = self.links[lid.0 as usize].try_start(now) {
            self.queue
                .push(end, class::TX_DONE, Ev::TxDone { link: lid, gen });
        }
    }

    fn apply_port_actions(&mut self, lid: LinkId, actions: crate::link::PortActions, now: Time) {
        for dropped in actions.dropped {
            self.telemetry.on_drop(&dropped);
        }
        if let Some(pkt) = actions.completed {
            self.telemetry.on_hop(
                pkt.id,
                HopTimes {
                    arrive: pkt.hop_arrive,
                    tx_start: pkt.hop_first_tx,
                    tx_end: now,
                },
            );
            let to = self.links[lid.0 as usize].to;
            let prop = self.links[lid.0 as usize].prop;
            let pkt = self.slab.insert(pkt);
            self.queue
                .push(now + prop, class::ARRIVE, Ev::Arrive { node: to, pkt });
        }
        if actions.want_start {
            let cls = if self.links[lid.0 as usize].bw == Bandwidth::INFINITE {
                class::START_WIRE
            } else {
                class::START_TX
            };
            self.queue.push(now, cls, Ev::StartTx { link: lid });
        }
    }

    fn dispatch_deliver(&mut self, node: NodeId, pkt: Packet, _now: Time) {
        if let Some(mut app) = self.apps[node.0 as usize].take() {
            app.on_deliver(self, node, &pkt);
            debug_assert!(
                self.apps[node.0 as usize].is_none(),
                "app slot refilled during callback"
            );
            self.apps[node.0 as usize] = Some(app);
        }
    }

    fn dispatch_timer(&mut self, node: NodeId, id: u64) {
        if let Some(mut app) = self.apps[node.0 as usize].take() {
            app.on_timer(self, node, id);
            self.apps[node.0 as usize] = Some(app);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// All host node ids, in creation order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_host())
            .map(|n| n.id)
            .collect()
    }

    /// All link ids.
    pub fn link_ids(&self) -> Vec<LinkId> {
        (0..self.links.len() as u32).map(LinkId).collect()
    }

    /// The slowest link bandwidth in the network (paper's threshold `T` is
    /// one transmission time on this bottleneck).
    pub fn bottleneck_bw(&self) -> Bandwidth {
        self.links
            .iter()
            .map(|l| l.bw)
            .min()
            .expect("network has no links")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two hosts, one router, 1 Gbps everywhere, 5 us propagation.
    fn line() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(TraceLevel::Hops);
        let h0 = net.add_host("h0");
        let r = net.add_router("r");
        let h1 = net.add_host("h1");
        net.add_duplex(h0, r, Bandwidth::gbps(1), Dur::from_micros(5));
        net.add_duplex(r, h1, Bandwidth::gbps(1), Dur::from_micros(5));
        net.compute_routes();
        (net, h0, h1)
    }

    #[test]
    fn single_packet_end_to_end_latency_is_tmin() {
        let (mut net, h0, h1) = line();
        net.inject(
            Time::ZERO,
            FlowId(0),
            0,
            1500,
            h0,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.run_to_completion();
        let rec = &net.telemetry.packets[0];
        // 2 hops: 12us tx + 5us prop each = 34us.
        assert_eq!(rec.delivered, Some(Time::from_micros(34)));
        assert_eq!(rec.tmin(), Dur::from_micros(34));
        assert_eq!(rec.congestion_points(), 0);
        assert_eq!(net.telemetry.counters.delivered, 1);
    }

    #[test]
    fn back_to_back_packets_queue_at_source() {
        let (mut net, h0, h1) = line();
        for s in 0..3 {
            net.inject(
                Time::ZERO,
                FlowId(0),
                s,
                1500,
                h0,
                h1,
                SchedHeader::default(),
                PacketKind::Data { bytes: 1460 },
            );
        }
        net.run_to_completion();
        // Packet k leaves the host NIC at 12(k+1) us; delivery at +22us more.
        for (k, rec) in net.telemetry.packets.iter().enumerate() {
            let want = Time::from_micros(34 + 12 * k as u64);
            assert_eq!(rec.delivered, Some(want), "packet {k}");
        }
        // Packets 1,2 waited at the host NIC: exactly one congestion point.
        assert_eq!(net.telemetry.packets[0].congestion_points(), 0);
        assert_eq!(net.telemetry.packets[1].congestion_points(), 1);
        assert_eq!(net.telemetry.packets[2].congestion_points(), 1);
        // And their recorded queueing delays are 12us and 24us.
        assert_eq!(
            net.telemetry.packets[1].total_qdelay(),
            Dur::from_micros(12)
        );
        assert_eq!(
            net.telemetry.packets[2].total_qdelay(),
            Dur::from_micros(24)
        );
    }

    #[test]
    fn cross_traffic_congests_shared_link() {
        // h0 and h2 both send to h1 through r at the same instant: the
        // r->h1 link is a congestion point for whoever loses the toss.
        let mut net = Network::new(TraceLevel::Hops);
        let h0 = net.add_host("h0");
        let h2 = net.add_host("h2");
        let r = net.add_router("r");
        let h1 = net.add_host("h1");
        for h in [h0, h2] {
            net.add_duplex(h, r, Bandwidth::gbps(1), Dur::from_micros(5));
        }
        net.add_duplex(r, h1, Bandwidth::gbps(1), Dur::from_micros(5));
        net.compute_routes();
        net.inject(
            Time::ZERO,
            FlowId(0),
            0,
            1500,
            h0,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.inject(
            Time::ZERO,
            FlowId(1),
            0,
            1500,
            h2,
            h1,
            SchedHeader::default(),
            PacketKind::Data { bytes: 1460 },
        );
        net.run_to_completion();
        let cps: Vec<usize> = net
            .telemetry
            .packets
            .iter()
            .map(|r| r.congestion_points())
            .collect();
        cps.iter().for_each(|&c| assert!(c <= 1));
        assert_eq!(cps.iter().sum::<usize>(), 1, "exactly one packet waits");
        // The loser is delayed by exactly one transmission time.
        let d: Vec<Time> = net
            .telemetry
            .packets
            .iter()
            .map(|r| r.delivered.unwrap())
            .collect();
        assert_eq!(d[0].max(d[1]) - d[0].min(d[1]), Dur::from_micros(12));
    }

    #[test]
    fn routes_prefer_fewer_slow_hops() {
        // h0 -> r0 -> h1 direct (fast) vs h0 -> r0 -> r1 -> h1: Dijkstra
        // must pick the 2-hop route.
        let mut net = Network::new(TraceLevel::Delivery);
        let h0 = net.add_host("h0");
        let r0 = net.add_router("r0");
        let r1 = net.add_router("r1");
        let h1 = net.add_host("h1");
        net.add_duplex(h0, r0, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r0, r1, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r0, h1, Bandwidth::gbps(10), Dur::from_micros(1));
        net.add_duplex(r1, h1, Bandwidth::gbps(10), Dur::from_micros(1));
        net.compute_routes();
        let p = net.resolve_path(h0, h1, FlowId(0));
        assert_eq!(p.hops(), 2);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let run = || {
            let (mut net, h0, h1) = line();
            for s in 0..50 {
                net.inject(
                    Time::from_nanos(137 * s),
                    FlowId(s % 3),
                    s,
                    1500,
                    h0,
                    h1,
                    SchedHeader::default(),
                    PacketKind::Data { bytes: 1460 },
                );
            }
            net.run_to_completion();
            net.telemetry
                .packets
                .iter()
                .map(|r| r.delivered.unwrap().as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
