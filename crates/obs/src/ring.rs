//! Bounded ring buffer of packet/flow lifecycle events.

use crate::COMPILED;
use ups_sim::Time;

/// What happened to a packet (or flow) at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifeKind {
    /// Packet entered the network at its source host.
    Inject,
    /// Packet was admitted to a link queue.
    Enqueue,
    /// Packet began serializing onto a wire.
    TxStart,
    /// Packet reached its destination.
    Deliver,
    /// Packet was dropped (buffer overflow).
    Drop,
    /// A deadline-tagged flow's packet arrived after the flow's
    /// absolute deadline.
    DeadlineMiss,
}

impl LifeKind {
    /// Stable lowercase label used in the JSONL export.
    pub fn label(self) -> &'static str {
        match self {
            LifeKind::Inject => "inject",
            LifeKind::Enqueue => "enqueue",
            LifeKind::TxStart => "tx_start",
            LifeKind::Deliver => "deliver",
            LifeKind::Drop => "drop",
            LifeKind::DeadlineMiss => "deadline_miss",
        }
    }
}

/// One structured lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifeEvent {
    /// When it happened.
    pub t: Time,
    /// What happened.
    pub kind: LifeKind,
    /// Flow the packet belongs to.
    pub flow: u64,
    /// Sequence number within the flow.
    pub seq: u64,
    /// Where: link id for queue/wire events, node id for endpoint
    /// events (inject/deliver/deadline-miss).
    pub loc: u32,
}

/// A bounded ring of the most recent lifecycle events.
///
/// Capacity is fixed at construction; pushing past it overwrites the
/// oldest entry, so the hot path never allocates and memory stays
/// bounded on arbitrarily long runs. `total()` still counts every
/// event ever pushed, so "how much did we drop" is always known.
#[derive(Debug, Clone)]
pub struct LifecycleRing {
    buf: Vec<LifeEvent>,
    cap: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    total: u64,
}

impl LifecycleRing {
    /// A ring keeping the most recent `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> LifecycleRing {
        let cap = cap.max(1);
        LifecycleRing {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// Record an event, overwriting the oldest if full.
    #[inline]
    pub fn push(&mut self, ev: LifeEvent) {
        if !COMPILED {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Every event ever pushed (retained or overwritten).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LifeEvent> {
        let (wrapped, recent) = self.buf.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// Export the retained events as JSON Lines, oldest first — one
    /// compact object per line:
    /// `{"t_ps":…,"kind":"…","flow":…,"seq":…,"loc":…}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.len() * 64);
        for ev in self.iter() {
            out.push_str(&format!(
                "{{\"t_ps\":{},\"kind\":\"{}\",\"flow\":{},\"seq\":{},\"loc\":{}}}\n",
                ev.t.as_ps(),
                ev.kind.label(),
                ev.flow,
                ev.seq,
                ev.loc
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_us: u64, kind: LifeKind, seq: u64) -> LifeEvent {
        LifeEvent {
            t: Time::from_micros(t_us),
            kind,
            flow: 7,
            seq,
            loc: 3,
        }
    }

    #[test]
    fn wraps_and_keeps_most_recent() {
        if !COMPILED {
            return;
        }
        let mut r = LifecycleRing::new(3);
        for i in 0..5 {
            r.push(ev(i, LifeKind::Enqueue, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest-first iteration after wrap");
    }

    #[test]
    fn jsonl_lines_parse_as_flat_objects() {
        if !COMPILED {
            return;
        }
        let mut r = LifecycleRing::new(8);
        r.push(ev(1, LifeKind::Inject, 0));
        r.push(ev(2, LifeKind::Drop, 1));
        let out = r.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ps\":1000000,\"kind\":\"inject\",\"flow\":7,\"seq\":0,\"loc\":3}"
        );
        assert!(lines[1].contains("\"kind\":\"drop\""));
    }
}
