//! Fixed log2-bucket histogram: integer counts, exact merge.

/// Number of buckets: one for zero plus one per possible bit width.
pub const BUCKETS: usize = 65;

/// A fixed-size base-2 histogram over `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `b >= 1` holds values whose bit
/// width is `b`, i.e. the half-open range `[2^(b-1), 2^b)`. Recording
/// is a single `leading_zeros` plus an array bump — no allocation, no
/// floating point — and merge is bucket-wise integer addition, which
/// makes aggregation exactly associative and commutative regardless of
/// shard order (the property the parallel sweep relies on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Bucket index for a value: 0 for 0, else its bit width.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket (`u64::MAX` for the top one).
    pub fn bucket_upper(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of all samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Upper bound of the bucket where the cumulative count first
    /// reaches `q` (0 < q <= 1) of the total; 0 when empty. A bucketed
    /// quantile is integer-exact and merge-stable, unlike interpolated
    /// percentiles.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(b);
            }
        }
        u64::MAX
    }

    /// Fold another histogram in: bucket-wise addition.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(2), 3);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // 100 lives in [64,128): upper bound 127.
        assert_eq!(h.quantile_upper(0.8), 127);
        // 1000 lives in [512,1024): upper bound 1023.
        assert_eq!(h.quantile_upper(1.0), 1023);
    }

    /// Merge is associative and commutative across shard orders: any
    /// parenthesization / permutation of per-shard histograms yields
    /// identical state.
    #[test]
    fn merge_is_associative_and_commutative() {
        let shard = |seed: u64| {
            let mut h = Histogram::new();
            let mut x = seed;
            for _ in 0..50 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                h.record(x >> (x % 40));
            }
            h
        };
        let (a, b, c) = (shard(1), shard(2), shard(3));

        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge is not associative");

        // c + a + b (a different permutation)
        let mut perm = c.clone();
        perm.merge(&a);
        perm.merge(&b);
        assert_eq!(left, perm, "merge is not commutative");
    }
}
