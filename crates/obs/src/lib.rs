//! # ups-obs — the deterministic telemetry plane
//!
//! Observability for a deterministic simulator has one extra obligation
//! that production telemetry does not: **observing must never change
//! what is observed**. Every committed artifact in `baselines/` is
//! byte-exact, so a telemetry hook that consumed a random number,
//! reordered an event, or rounded a float differently would show up as
//! a results regression. This crate therefore provides three surfaces
//! that are integer-exact, allocation-free on the hot path, and
//! no-ops when disabled:
//!
//! * [`Registry`] — named integer counters, gauges, and fixed
//!   log2-bucket [`Histogram`]s with dense-index handles. Recording is
//!   a bounds-checked array bump behind a branch on [`ObsLevel`]; with
//!   the `off` cargo feature the bodies compile out entirely
//!   ([`COMPILED`] is `false`). Registries merge associatively and
//!   commutatively by name, so per-shard or per-cell registries
//!   aggregate to the same totals in any order — the property the
//!   parallel sweep pool needs for `--jobs`-independent artifacts.
//! * [`NetSeries`] / [`SamplePoint`] — time-series samples of queue
//!   depth, link utilization, and in-flight population. The *sampling
//!   cadence* is driven by the simulation's own event wheel (see
//!   `ups-net`'s observation event class), not wall clock, so a series
//!   is as reproducible as the run that produced it. The process-wide
//!   default cadence lives here ([`set_sample_interval`]) so worker
//!   threads of a sweep pick it up without plumbing.
//! * [`LifecycleRing`] — a bounded ring buffer of structured
//!   packet/flow lifecycle events ([`LifeEvent`]: inject, enqueue,
//!   tx-start, deliver, drop, deadline-miss) exportable as JSONL for
//!   offline triage. Bounded means the hot path never allocates after
//!   construction; the ring keeps the most recent `cap` events plus an
//!   exact total count.
//!
//! The crate sits at the bottom of the workspace DAG (only `ups-sim`
//! above it) so every layer — net, metrics, sweep, bench — can record
//! into it without cycles.

#![forbid(unsafe_code)]

mod hist;
mod registry;
mod ring;
mod series;

pub use hist::Histogram;
pub use registry::{CounterId, GaugeId, HistId, ObsLevel, Registry};
pub use ring::{LifeEvent, LifeKind, LifecycleRing};
pub use series::{NetSeries, SamplePoint};

use std::sync::atomic::{AtomicU64, Ordering};
use ups_sim::Dur;

/// False when the `off` cargo feature compiled all recording out.
///
/// Recording methods check this first; because it is a `const`, an
/// `off` build reduces them to empty inlinable bodies — the strongest
/// form of the zero-overhead-when-off contract.
pub const COMPILED: bool = cfg!(not(feature = "off"));

/// Process-wide default sampling cadence in picoseconds; 0 = off.
///
/// A global (rather than a constructor argument) is deliberate: the
/// sweep engine runs cells on pooled worker threads, and the byte-
/// identity contract ("artifacts are identical with sampling on") is
/// only testable if sampling can be flipped without touching any
/// runner signature. Networks read this once at construction.
static SAMPLE_INTERVAL_PS: AtomicU64 = AtomicU64::new(0);

/// Set the process-wide default sampling cadence for networks built
/// *after* this call. `None` (the default) disables sampling.
///
/// Tests that flip this global must serialize with each other; the
/// sweep CLI sets it once before spawning workers.
pub fn set_sample_interval(interval: Option<Dur>) {
    let ps = match interval {
        Some(d) if COMPILED => d.as_ps(),
        _ => 0,
    };
    SAMPLE_INTERVAL_PS.store(ps, Ordering::Relaxed);
}

/// The process-wide default sampling cadence, if any.
pub fn sample_interval() -> Option<Dur> {
    match SAMPLE_INTERVAL_PS.load(Ordering::Relaxed) {
        0 => None,
        ps => Some(Dur(ps)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global is process-wide, so this test owns set/clear within
    // one #[test] body (other tests in this crate never set it).
    #[test]
    fn sample_interval_round_trips() {
        assert_eq!(sample_interval(), None);
        set_sample_interval(Some(Dur::from_micros(250)));
        if COMPILED {
            assert_eq!(sample_interval(), Some(Dur::from_micros(250)));
        } else {
            assert_eq!(sample_interval(), None);
        }
        set_sample_interval(None);
        assert_eq!(sample_interval(), None);
    }
}
