//! Named integer metrics with dense handles and associative merge.

use crate::hist::Histogram;
use crate::COMPILED;

/// Runtime telemetry level. [`ObsLevel::Off`] makes every recording
/// method an early-return branch; the `off` cargo feature removes even
/// that branch at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsLevel {
    /// Record nothing.
    Off,
    /// Record counters, gauges, and histograms.
    #[default]
    On,
}

/// Dense handle for a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);
/// Dense handle for a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);
/// Dense handle for a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// A registry of named integer metrics.
///
/// Registration (by name, idempotent) happens at setup time and may
/// allocate; recording through the returned dense handle is an array
/// index plus an integer add. Counters accumulate by addition, gauges
/// are high-water marks (merge takes the max), histograms merge
/// bucket-wise — all three are associative and commutative, so
/// per-shard registries fold to the same aggregate in any order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    level: ObsLevel,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<u64>,
    hist_names: Vec<String>,
    hists: Vec<Histogram>,
}

impl Registry {
    /// An empty registry recording at `level`.
    pub fn new(level: ObsLevel) -> Registry {
        Registry {
            level,
            ..Registry::default()
        }
    }

    /// True when recording methods actually record.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        COMPILED && self.level != ObsLevel::Off
    }

    /// Register (or look up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Register (or look up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(0);
        GaugeId(self.gauges.len() - 1)
    }

    /// Register (or look up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistId {
        if let Some(i) = self.hist_names.iter().position(|n| n == name) {
            return HistId(i);
        }
        self.hist_names.push(name.to_string());
        self.hists.push(Histogram::new());
        HistId(self.hists.len() - 1)
    }

    /// Add to a counter.
    #[inline(always)]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if self.enabled() {
            self.counters[id.0] += n;
        }
    }

    /// Increment a counter by one.
    #[inline(always)]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Raise a gauge to at least `v` (gauges are high-water marks).
    #[inline(always)]
    pub fn raise(&mut self, id: GaugeId, v: u64) {
        if self.enabled() && self.gauges[id.0] < v {
            self.gauges[id.0] = v;
        }
    }

    /// Record a histogram sample.
    #[inline(always)]
    pub fn record(&mut self, id: HistId, v: u64) {
        if self.enabled() {
            self.hists[id.0].record(v);
        }
    }

    /// Current value of a counter by name, 0 if unregistered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter_names
            .iter()
            .position(|n| n == name)
            .map_or(0, |i| self.counters[i])
    }

    /// Current value of a gauge by name, 0 if unregistered.
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauge_names
            .iter()
            .position(|n| n == name)
            .map_or(0, |i| self.gauges[i])
    }

    /// A histogram by name, if registered.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hist_names
            .iter()
            .position(|n| n == name)
            .map(|i| &self.hists[i])
    }

    /// All counters as `(name, value)` in name order (deterministic
    /// export order independent of registration order).
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
            .collect();
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Fold another registry in by name: counters add, gauges max,
    /// histograms merge bucket-wise. Metrics only present in `other`
    /// are created here.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counter_names.iter().zip(other.counters.iter()) {
            let id = self.counter(name);
            self.counters[id.0] += v;
        }
        for (name, v) in other.gauge_names.iter().zip(other.gauges.iter()) {
            let id = self.gauge(name);
            if self.gauges[id.0] < *v {
                self.gauges[id.0] = *v;
            }
        }
        for (name, h) in other.hist_names.iter().zip(other.hists.iter()) {
            let id = self.histogram(name);
            self.hists[id.0].merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(seed: u64) -> Registry {
        let mut r = Registry::new(ObsLevel::On);
        let c = r.counter("pkts");
        let g = r.gauge("peak_queue");
        let h = r.histogram("lateness_us");
        let mut x = seed;
        for _ in 0..20 {
            x = x.wrapping_mul(0x5DEECE66D).wrapping_add(11);
            r.add(c, x % 7);
            r.raise(g, x % 100);
            r.record(h, x % 5000);
        }
        r
    }

    #[test]
    fn record_and_read_back() {
        let mut r = Registry::new(ObsLevel::On);
        let c = r.counter("delivered");
        let g = r.gauge("peak");
        let h = r.histogram("delay");
        r.inc(c);
        r.add(c, 4);
        r.raise(g, 10);
        r.raise(g, 3);
        r.record(h, 100);
        if COMPILED {
            assert_eq!(r.counter_value("delivered"), 5);
            assert_eq!(r.gauge_value("peak"), 10);
            assert_eq!(r.hist("delay").unwrap().count(), 1);
        } else {
            assert_eq!(r.counter_value("delivered"), 0);
        }
        // Registration is idempotent.
        assert_eq!(r.counter("delivered"), c);
    }

    #[test]
    fn off_level_records_nothing() {
        let mut r = Registry::new(ObsLevel::Off);
        let c = r.counter("x");
        r.add(c, 100);
        assert_eq!(r.counter_value("x"), 0);
        assert!(!r.enabled());
    }

    /// Registry merge is associative and commutative across shard
    /// orders — including shards whose metric sets only partially
    /// overlap (registration order differs between folds).
    #[test]
    fn merge_is_order_independent() {
        if !COMPILED {
            return;
        }
        let (a, b, c) = (shard(1), shard(2), shard(3));
        let mut extra = Registry::new(ObsLevel::On);
        let id = extra.counter("only_in_one_shard");
        extra.add(id, 9);

        let fold = |order: &[&Registry]| {
            let mut acc = Registry::new(ObsLevel::On);
            for r in order {
                acc.merge(r);
            }
            (
                acc.counter_value("pkts"),
                acc.counter_value("only_in_one_shard"),
                acc.gauge_value("peak_queue"),
                acc.hist("lateness_us").unwrap().clone(),
            )
        };
        let x = fold(&[&a, &b, &c, &extra]);
        let y = fold(&[&extra, &c, &a, &b]);
        let z = fold(&[&b, &extra, &c, &a]);
        assert_eq!(x, y);
        assert_eq!(x, z);
    }
}
