//! Time-series samples of network state, taken on the event wheel.

use ups_sim::{Dur, Time};

/// One sample of aggregate network state at a simulation instant.
///
/// All fields are integers read directly off the data plane — no
/// derived floats, so a series is byte-stable and merge decisions
/// never depend on rounding. Ratios (e.g. mean link utilization) are
/// computed at export time from `busy_ps_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplePoint {
    /// Simulation instant of the sample.
    pub t: Time,
    /// Total packets queued across all links.
    pub queued_pkts: u64,
    /// Total bytes queued across all links.
    pub queued_bytes: u64,
    /// Deepest single link queue, in packets.
    pub max_queue_pkts: u64,
    /// Links currently serializing a packet.
    pub busy_links: u64,
    /// Packets alive anywhere in the network (queued or on the wire).
    pub in_flight: u64,
    /// Cumulative transmitter busy time summed over all links, in ps.
    pub busy_ps_total: u64,
}

/// A deterministic time series sampled at a fixed cadence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetSeries {
    /// Sampling cadence.
    pub interval: Dur,
    /// Number of links in the observed network (denominator for mean
    /// utilization).
    pub links: u64,
    /// Samples in strictly increasing time order.
    pub samples: Vec<SamplePoint>,
}

impl NetSeries {
    /// An empty series at the given cadence.
    pub fn new(interval: Dur, links: u64) -> NetSeries {
        NetSeries {
            interval,
            links,
            samples: Vec::new(),
        }
    }

    /// The last sample at or before `t` (last-observation-carried-
    /// forward), or `None` when `t` precedes the first sample.
    pub fn at(&self, t: Time) -> Option<&SamplePoint> {
        match self.samples.partition_point(|s| s.t <= t) {
            0 => None,
            i => Some(&self.samples[i - 1]),
        }
    }

    /// Mean link utilization over `[0, t]` as seen by the sample LOCF
    /// at `t`: total busy time / (elapsed × links).
    pub fn mean_utilization(&self, t: Time) -> f64 {
        let Some(s) = self.at(t) else { return 0.0 };
        if t == Time::ZERO || self.links == 0 {
            return 0.0;
        }
        s.busy_ps_total as f64 / (t.as_ps() as f64 * self.links as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t_us: u64, queued: u64, busy_ps: u64) -> SamplePoint {
        SamplePoint {
            t: Time::from_micros(t_us),
            queued_pkts: queued,
            queued_bytes: queued * 1500,
            max_queue_pkts: queued,
            busy_links: (queued > 0) as u64,
            in_flight: queued,
            busy_ps_total: busy_ps,
        }
    }

    #[test]
    fn locf_lookup() {
        let mut s = NetSeries::new(Dur::from_micros(10), 2);
        s.samples.push(pt(10, 5, 1_000_000));
        s.samples.push(pt(20, 3, 2_000_000));
        assert_eq!(s.at(Time::from_micros(5)), None);
        assert_eq!(s.at(Time::from_micros(10)).unwrap().queued_pkts, 5);
        assert_eq!(s.at(Time::from_micros(19)).unwrap().queued_pkts, 5);
        assert_eq!(s.at(Time::from_micros(100)).unwrap().queued_pkts, 3);
        // 2e6 ps busy over 20 us across 2 links = 2e6 / (2e7 * 2).
        let u = s.mean_utilization(Time::from_micros(20));
        assert!((u - 0.05).abs() < 1e-12);
    }
}
