//! `ups-sweep` — a parallel, deterministic experiment-sweep engine.
//!
//! The paper's empirical results are grids: Table 1 is topology ×
//! original scheduler × utilization, and Figures 1–4 are series ×
//! x-axis curves. Statistical rigor wants every cell replicated over
//! several seeds, and running that serially in one thread does not
//! scale, so this crate turns the harness into a declarative sweep
//! engine:
//!
//! * [`SweepSpec`] expands a scalar grid of [`CellCoord`]s (topology,
//!   original scheduler, utilization) × seed replicates into
//!   independent [`Job`]s; [`FigSpec`] does the same for
//!   distribution-style figure grids (named series × a fixed
//!   [`FigAxis`]), whose per-replicate payload is a [`DistMetrics`];
//! * [`pool::run_indexed`] executes jobs on a scoped-thread worker pool
//!   (std-only — no external dependencies) that claims work from a
//!   shared atomic cursor and keys every result to its grid coordinates,
//!   so the aggregate output is **byte-identical regardless of
//!   `--jobs N`**;
//! * [`run_sweep`] aggregates per-replicate [`CellMetrics`] into a
//!   [`SweepResult`] per cell, and [`run_fig_with`] aggregates
//!   [`DistMetrics`] into a [`DistResult`] per series — mean ± stddev
//!   over seeds via [`ups_metrics::Welford`] on every scalar and every
//!   plotted point;
//! * [`artifact`] serializes the resulting [`SweepReport`]/[`FigReport`]
//!   with a hand-rolled, dependency-free JSON and CSV writer so results
//!   land in `target/sweep/*.json`, and parses them back
//!   ([`Json::parse`]);
//! * [`diff`](mod@diff) compares two artifacts structurally, keyed by
//!   grid coordinate, under a configurable tolerance — the primitive
//!   behind `sweep diff` and cross-run regression detection in CI;
//! * [`perf`] is the machine-readable perf history behind `sweep
//!   bench`: one JSON line per benchmark run, plus the min-vs-prior-best
//!   regression gate (`--gate-pct`);
//! * [`scenario`] is the registry of named experiment scenarios —
//!   topology build × workload family × grid — behind
//!   `sweep --grid <scenario>` and the `sweep scenarios` subcommand
//!   (see `docs/SCENARIOS.md` for the catalogue).
//!
//! The `sweep` binary at the workspace root (`cargo run --release --bin
//! sweep`) is the CLI; `ups-bench`'s `table1`, `all_experiments`, and
//! the four `fig*` binaries are thin clients of [`run_sweep`] /
//! [`run_fig_with`].
//!
//! # Artifact schema
//!
//! Every sweep writes `<out>/<name>.json` and `<out>/<name>.csv`
//! (default `out` = `target/sweep`). Files are deterministic: object
//! keys render in insertion order, floats use Rust's shortest
//! round-trip `Display`, and no timestamp, duration, or worker count is
//! ever recorded — so byte equality means result equality.
//!
//! ## Table artifacts (`SweepReport`, `"kind": "table"`)
//!
//! JSON, top level:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `kind` | string | `"table"` — scalar-grid artifact discriminator |
//! | `name` | string | grid name, equals the file stem (`table1`, `smoke`, …) |
//! | `scale` | string | scale label the sweep ran at (`quick`, `full`, …) |
//! | `base_seed` | integer | RNG seed of replicate 0; replicate `r` uses `base_seed + r` |
//! | `replicates` | integer | seed replicates aggregated into each cell |
//! | `cells` | array | one object per grid cell, in the spec's presentation order |
//!
//! Each cell object:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `topo` | string | topology label (coordinate, ⅓) |
//! | `original` | string | original-scheduler label (coordinate, ⅔) |
//! | `util` | number | target utilization of the most-loaded core link (coordinate, 3/3) |
//! | `chaos_drop_ppm` | integer, *optional* | replay-leg drop rate (extra coordinate, perturbed cells only) |
//! | `replicates` | integer | replicates actually aggregated |
//! | `total_packets` | stat | packets replayed |
//! | `frac_overdue` | stat | fraction of packets late in the LSTF replay |
//! | `frac_overdue_gt_t` | stat | fraction late by more than `T` |
//! | `t_us` | stat | the threshold `T` in µs |
//! | `max_congestion_points` | stat | largest congestion-point count in the original schedule |
//! | `mean_slack_us` | stat | mean slack (µs) in the original schedule |
//! | `deadline_tagged` | stat, *optional* | deadline-tagged flows (deadline workloads only) |
//! | `deadline_miss_rate` | stat, *optional* | fraction of tagged flows late or unfinished |
//! | `mean_lateness_us` | stat, *optional* | mean lateness (µs) over late completions |
//! | `p99_lateness_us` | stat, *optional* | p99 lateness (µs, log2-bucket upper bound) |
//! | `fidelity` | stat, *optional* | fraction delivered on time under chaos (perturbed cells only) |
//! | `frac_lost` | stat, *optional* | fraction of recorded packets lost to the perturbation |
//! | `chaos_drops` | stat, *optional* | packets destroyed by the chaos layer, all links |
//! | `chaos_outage_us` | stat, *optional* | total link down/jam time (µs), all links |
//!
//! where a **stat** is `{"mean": …, "stddev": …, "stderr": …}` over the
//! cell's seed replicates (stddev/stderr are 0 for a single replicate;
//! non-finite values render as `null`). The four deadline members
//! appear **only** when the workload tags flows with completion
//! deadlines (e.g. the `i2-deadline-mix` scenario), and the
//! `chaos_drop_ppm` coordinate and four chaos members **only** when the
//! cell's [`ChaosSpec`] is enabled (e.g. the `i2-web-loss` and
//! `dc-k8-web-chaos` scenarios) — deadline-free, chaos-free artifacts
//! are byte-identical to the pre-deadline, pre-chaos schema.
//!
//! CSV: one header line, one line per cell —
//! `topo,original,util,replicates` followed by `<metric>_mean,<metric>_stddev`
//! pairs for the six metrics above, in the same order (plus the four
//! deadline pairs when any cell has deadline data, a `chaos_drop_ppm`
//! coordinate column after `util` and the four chaos pairs at the end
//! when any cell is perturbed).
//!
//! ## Figure artifacts (`FigReport`, `"kind": "figure"`)
//!
//! The distribution payload: every replicate evaluates its measured
//! distribution (delay-ratio CDF, per-bucket FCT means, tail-delay
//! percentiles, Jain indices per window) on the grid's fixed x-axis, and
//! the engine aggregates **per point** across replicates. JSON, top
//! level:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `kind` | string | `"figure"` |
//! | `name` | string | grid name, equals the file stem (`fig1`, …) |
//! | `title` | string | human figure title |
//! | `scale` | string | scale label |
//! | `base_seed` | integer | seed of replicate 0 |
//! | `replicates` | integer | seed replicates per series |
//! | `axis` | string | x-axis name (`ratio`, `percentile`, `t_ms`, `bucket`, …) |
//! | `series` | array | one object per series, in presentation order |
//!
//! Each series object:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `series` | string | series label (the figure cell's coordinate) |
//! | `replicates` | integer | replicates aggregated |
//! | `scalars` | object | named per-series summaries, each a **stat** |
//! | `points` | array | the curve: `{"x": …, ["label": …,] "mean": …, "stddev": …, "stderr": …}` per axis point |
//!
//! `label` appears only on categorical axes (e.g. Figure 2's flow-size
//! buckets, where `x` is the bucket index).
//!
//! Deadline-replay scenarios ([`cell::CellPipeline::DeadlineReplay`],
//! e.g. `i2-deadline-replay`) additionally write a figure artifact
//! `<name>_fig.json`/`.csv` in this same schema: one series per replay
//! candidate (`EDF`, `LSTF`, `Priority`), the `util` axis, and the
//! per-cell `deadline_miss_rate` stat as the plotted points — the
//! miss-rate-vs-utilization curves, built from the table report (so
//! byte-identical for any `--jobs N` by construction). In those
//! scenarios' table artifacts the `original` column carries the *replay*
//! candidate's label; the recorded original is always EDF.
//!
//! CSV (long format): header
//! `series,metric,x,label,mean,stddev,stderr`; scalar rows carry the
//! scalar name in `metric` with empty `x`/`label`, point rows carry the
//! axis name in `metric` plus their `x` (and `label` when categorical).
//!
//! ## Telemetry artifacts (`TelemetryReport`, `"kind": "telemetry"`)
//!
//! Written as `<grid>_telemetry.json`/`.csv` by `sweep --telemetry`
//! (see [`telemetry`]): per-cell time series of network state sampled
//! on the event wheel during the record run. JSON, top level:
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `kind` | string | `"telemetry"` |
//! | `name` | string | file stem (`<grid>_telemetry`) |
//! | `grid` | string | the sampled grid's name |
//! | `scale` | string | scale label |
//! | `base_seed` | integer | seed of replicate 0 |
//! | `replicates` | integer | seed replicates per cell |
//! | `interval_us` | number | sampling cadence (µs) |
//! | `cells` | array | one object per grid cell, in spec order |
//!
//! Each cell carries the `topo`/`original`/`util` coordinate keys
//! (plus `chaos_drop_ppm` on perturbed cells),
//! `replicates` (that produced a series), `links`, and a `series`
//! array: one `{"series": <name>, "points": [{"x": …, "mean": …,
//! "stddev": …, "stderr": …}, …]}` object per sampled quantity
//! (`queue_pkts_total`, `queue_pkts_max`, `in_flight`,
//! `link_util_mean`) on the report's fixed x-grid (µs). Coordinate
//! keys at every level make the artifact `sweep diff`-compatible.
//!
//! CSV (long format): header
//! `topo,original,util,series,x_us,mean,stddev,stderr`, one row per
//! (cell, series, x).

#![forbid(unsafe_code)]

pub mod artifact;
pub mod cell;
pub mod diff;
pub mod engine;
pub mod grid;
pub mod perf;
pub mod pool;
pub mod scenario;
pub mod telemetry;

pub use artifact::Json;
pub use cell::{
    record_and_replay, record_and_replay_deadline_observed, record_and_replay_observed,
    record_and_replay_workload, run_cell, run_cell_workload, CellMetrics, CellPipeline, ChaosCell,
    DeadlineCell, DistMetrics, ObservedRun,
};
pub use diff::{diff_artifacts, DiffOptions, DiffReport};
pub use engine::{
    run_fig_with, run_sweep, run_sweep_with, ChaosAgg, DeadlineAgg, DistResult, FigReport, Stat,
    SweepReport, SweepResult,
};
pub use grid::{
    CellCoord, ChaosSpec, FigAxis, FigJob, FigSpec, Job, SimScale, SweepSpec, TopoKind,
    DEFAULT_CHAOS_SEED,
};
pub use perf::PerfEntry;
pub use scenario::Scenario;
pub use telemetry::{run_telemetry_sweep, TelemetryCell, TelemetryReport, TelemetrySeries};
