//! `ups-sweep` — a parallel, deterministic experiment-sweep engine.
//!
//! Table 1 of the paper is a grid — topology × original scheduler ×
//! link-speed variant × utilization — and statistical rigor wants every
//! cell replicated over several seeds. Running that serially in one
//! thread does not scale, so this crate turns the harness into a
//! declarative sweep engine:
//!
//! * [`SweepSpec`] expands a grid of [`CellCoord`]s (topology, original
//!   scheduler, utilization) × seed replicates into independent [`Job`]s;
//! * [`pool::run_indexed`] executes jobs on a scoped-thread worker pool
//!   (std-only — no external dependencies) that claims work from a
//!   shared atomic cursor and keys every result to its grid coordinates,
//!   so the aggregate output is **byte-identical regardless of
//!   `--jobs N`**;
//! * [`run_sweep`] aggregates per-replicate [`CellMetrics`] into a
//!   [`SweepResult`] per cell — mean ± stddev over seeds via
//!   [`ups_metrics::Welford`];
//! * [`artifact`] serializes the resulting [`SweepReport`] with a
//!   hand-rolled, dependency-free JSON and CSV writer so results land
//!   in `target/sweep/*.json` instead of only stdout tables.
//!
//! The `sweep` binary at the workspace root (`cargo run --release --bin
//! sweep`) is the CLI; `ups-bench`'s `table1`/`all_experiments` are thin
//! clients of [`run_sweep`].

pub mod artifact;
pub mod cell;
pub mod engine;
pub mod grid;
pub mod pool;

pub use artifact::Json;
pub use cell::{record_and_replay, run_cell, CellMetrics};
pub use engine::{run_sweep, run_sweep_with, Stat, SweepReport, SweepResult};
pub use grid::{CellCoord, Job, SimScale, SweepSpec, TopoKind};
