//! Dependency-free JSON and CSV serialization for sweep reports, so
//! results land in `target/sweep/*.{json,csv}` for the benchmarking
//! trajectory instead of only stdout tables — plus the matching
//! [`Json::parse`] reader that `sweep diff` uses to load artifacts
//! back for cross-run comparison.
//!
//! Determinism contract: object keys render in insertion order and
//! floats use Rust's shortest round-trip `Display`, so two structurally
//! equal reports serialize to byte-identical artifacts.
//!
//! See the crate-level docs for the field-by-field artifact schema.

use crate::engine::{FigReport, Stat, SweepReport, SweepResult};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A minimal JSON value with *ordered* object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite numbers).
    Null,
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer (seeds, counts) — rendered without a dot.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(out, "{x}").expect("write to String");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => write!(out, "{n}").expect("write to String"),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parse a JSON document (the inverse of [`Json::render`], used by
    /// `sweep diff` to load artifacts back).
    ///
    /// Supports the subset this crate emits — `null`, numbers, strings,
    /// arrays, objects — which is all any sweep artifact contains.
    /// Numbers without a sign, fraction, or exponent parse as
    /// [`Json::UInt`]; everything else numeric as [`Json::Num`].
    /// Trailing non-whitespace after the document is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing data after JSON document"));
        }
        Ok(v)
    }
}

/// Byte-cursor recursive-descent parser for [`Json::parse`]. The cursor
/// only ever rests on a char boundary: every non-ASCII advance consumes
/// a whole `char`, everything else is ASCII.
struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut plain_uint = true; // no sign, fraction, or exponent
        if self.peek() == Some(b'-') {
            plain_uint = false;
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    plain_uint = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if plain_uint {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("malformed number `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("malformed \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character — an O(1) slice,
                    // the input is already known-valid UTF-8.
                    let c = self.input[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to String"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn stat_json(s: &Stat) -> Json {
    Json::obj(vec![
        ("mean", Json::Num(s.mean)),
        ("stddev", Json::Num(s.stddev)),
        ("stderr", Json::Num(s.stderr)),
    ])
}

fn cell_json(r: &SweepResult) -> Json {
    let mut members = vec![
        ("topo", Json::Str(r.coord.topo.label())),
        ("original", Json::Str(r.coord.sched.label().to_string())),
        ("util", Json::Num(r.coord.util)),
    ];
    // The chaos coordinate appears only on perturbed cells, so clean
    // grids (every committed baseline) keep the pre-chaos schema.
    if r.coord.chaos.enabled() {
        members.push(("chaos_drop_ppm", Json::UInt(r.coord.chaos.drop_ppm as u64)));
    }
    members.extend([
        ("replicates", Json::UInt(r.replicates as u64)),
        ("total_packets", stat_json(&r.total)),
        ("frac_overdue", stat_json(&r.frac_overdue)),
        ("frac_overdue_gt_t", stat_json(&r.frac_gt_t)),
        ("t_us", stat_json(&r.t_us)),
        ("max_congestion_points", stat_json(&r.max_cp)),
        ("mean_slack_us", stat_json(&r.mean_slack_us)),
    ]);
    // Deadline members appear only for deadline-tagged workloads, so
    // deadline-free artifacts (every committed baseline) stay
    // byte-identical to the pre-deadline schema.
    if let Some(d) = &r.deadline {
        members.push(("deadline_tagged", stat_json(&d.tagged)));
        members.push(("deadline_miss_rate", stat_json(&d.miss_rate)));
        members.push(("mean_lateness_us", stat_json(&d.mean_lateness_us)));
        members.push(("p99_lateness_us", stat_json(&d.p99_lateness_us)));
    }
    // Chaos outcome members, likewise only on perturbed cells — the
    // degradation-curve payload (fidelity and loss vs drop rate).
    if let Some(c) = &r.chaos {
        members.push(("fidelity", stat_json(&c.fidelity)));
        members.push(("frac_lost", stat_json(&c.frac_lost)));
        members.push(("chaos_drops", stat_json(&c.chaos_drops)));
        members.push(("chaos_outage_us", stat_json(&c.outage_us)));
    }
    Json::obj(members)
}

/// Quote a CSV field if it contains a comma, quote, or newline.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// `<dir>/<name>.json` + `<dir>/<name>.csv` writer shared by both
/// report kinds; returns the two paths.
fn write_pair(dir: &Path, name: &str, json: String, csv: String) -> io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{name}.json"));
    let csv_path = dir.join(format!("{name}.csv"));
    std::fs::write(&json_path, json)?;
    std::fs::write(&csv_path, csv)?;
    Ok((json_path, csv_path))
}

impl SweepReport {
    /// The full report as a JSON document (ends with a newline).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("kind", Json::Str("table".to_string())),
            ("name", Json::Str(self.name.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("base_seed", Json::UInt(self.base_seed)),
            ("replicates", Json::UInt(self.replicates as u64)),
            (
                "cells",
                Json::Arr(self.results.iter().map(cell_json).collect()),
            ),
        ])
        .render()
    }

    /// The per-cell table as CSV: one header line, one line per cell,
    /// mean and stddev columns for every metric.
    pub fn to_csv(&self) -> String {
        // Deadline and chaos columns extend the header only when some
        // cell has the data, keeping classic CSVs byte-identical.
        let has_deadline = self.results.iter().any(|r| r.deadline.is_some());
        let has_chaos = self.results.iter().any(|r| r.chaos.is_some());
        let mut out = String::from("topo,original,util,");
        if has_chaos {
            out.push_str("chaos_drop_ppm,");
        }
        out.push_str(
            "replicates,\
             total_mean,total_stddev,\
             frac_overdue_mean,frac_overdue_stddev,\
             frac_overdue_gt_t_mean,frac_overdue_gt_t_stddev,\
             t_us_mean,t_us_stddev,\
             max_cp_mean,max_cp_stddev,\
             mean_slack_us_mean,mean_slack_us_stddev",
        );
        if has_deadline {
            out.push_str(
                ",deadline_tagged_mean,deadline_tagged_stddev,\
                 deadline_miss_rate_mean,deadline_miss_rate_stddev,\
                 mean_lateness_us_mean,mean_lateness_us_stddev,\
                 p99_lateness_us_mean,p99_lateness_us_stddev",
            );
        }
        if has_chaos {
            out.push_str(
                ",fidelity_mean,fidelity_stddev,\
                 frac_lost_mean,frac_lost_stddev,\
                 chaos_drops_mean,chaos_drops_stddev,\
                 chaos_outage_us_mean,chaos_outage_us_stddev",
            );
        }
        out.push('\n');
        for r in &self.results {
            let mut stats = vec![
                &r.total,
                &r.frac_overdue,
                &r.frac_gt_t,
                &r.t_us,
                &r.max_cp,
                &r.mean_slack_us,
            ];
            if let Some(d) = &r.deadline {
                stats.extend([
                    &d.tagged,
                    &d.miss_rate,
                    &d.mean_lateness_us,
                    &d.p99_lateness_us,
                ]);
            }
            write!(
                out,
                "{},{},{}",
                csv_field(&r.coord.topo.label()),
                csv_field(r.coord.sched.label()),
                r.coord.util,
            )
            .expect("write to String");
            if has_chaos {
                write!(out, ",{}", r.coord.chaos.drop_ppm).expect("write to String");
            }
            write!(out, ",{}", r.replicates).expect("write to String");
            for s in stats {
                write!(out, ",{},{}", s.mean, s.stddev).expect("write to String");
            }
            // A deadline-free cell in a mixed grid keeps its columns
            // aligned with empty fields.
            if has_deadline && r.deadline.is_none() {
                out.push_str(&",".repeat(8));
            }
            if has_chaos {
                match &r.chaos {
                    Some(c) => {
                        for s in [&c.fidelity, &c.frac_lost, &c.chaos_drops, &c.outage_us] {
                            write!(out, ",{},{}", s.mean, s.stddev).expect("write to String");
                        }
                    }
                    // A clean control cell in a chaos grid keeps its
                    // columns aligned with empty fields.
                    None => out.push_str(&",".repeat(8)),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Write `<dir>/<name>.json` and `<dir>/<name>.csv` (creating `dir`
    /// if needed); returns the two paths.
    pub fn write(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        write_pair(dir, &self.name, self.to_json(), self.to_csv())
    }
}

impl FigReport {
    /// The full figure report as a JSON document (ends with a newline).
    ///
    /// Points are objects carrying their own `x` (and `label` on
    /// categorical axes) so `sweep diff` can match them by coordinate
    /// rather than array position.
    pub fn to_json(&self) -> String {
        let series = self
            .results
            .iter()
            .map(|r| {
                let scalars = self
                    .scalar_names
                    .iter()
                    .zip(&r.scalars)
                    .map(|(name, s)| (name.clone(), stat_json(s)))
                    .collect();
                let points = self
                    .axis
                    .xs
                    .iter()
                    .zip(&r.points)
                    .enumerate()
                    .map(|(i, (&x, s))| {
                        let mut members = vec![("x".to_string(), Json::Num(x))];
                        if let Some(labels) = &self.axis.labels {
                            members.push(("label".to_string(), Json::Str(labels[i].clone())));
                        }
                        members.push(("mean".to_string(), Json::Num(s.mean)));
                        members.push(("stddev".to_string(), Json::Num(s.stddev)));
                        members.push(("stderr".to_string(), Json::Num(s.stderr)));
                        Json::Obj(members)
                    })
                    .collect();
                Json::obj(vec![
                    ("series", Json::Str(r.series.clone())),
                    ("replicates", Json::UInt(r.replicates as u64)),
                    ("scalars", Json::Obj(scalars)),
                    ("points", Json::Arr(points)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("kind", Json::Str("figure".to_string())),
            ("name", Json::Str(self.name.clone())),
            ("title", Json::Str(self.title.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("base_seed", Json::UInt(self.base_seed)),
            ("replicates", Json::UInt(self.replicates as u64)),
            ("axis", Json::Str(self.axis.name.clone())),
            ("series", Json::Arr(series)),
        ])
        .render()
    }

    /// The figure as long-format CSV: one row per (series, scalar) and
    /// per (series, point), with mean/stddev/stderr columns.
    ///
    /// `metric` is the scalar name for scalar rows and the axis name
    /// for point rows; `x`/`label` are empty on scalar rows.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,metric,x,label,mean,stddev,stderr\n");
        for r in &self.results {
            for (name, s) in self.scalar_names.iter().zip(&r.scalars) {
                writeln!(
                    out,
                    "{},{},,,{},{},{}",
                    csv_field(&r.series),
                    csv_field(name),
                    s.mean,
                    s.stddev,
                    s.stderr
                )
                .expect("write to String");
            }
            for (i, (&x, s)) in self.axis.xs.iter().zip(&r.points).enumerate() {
                let label = self
                    .axis
                    .labels
                    .as_ref()
                    .map_or(String::new(), |l| csv_field(&l[i]));
                writeln!(
                    out,
                    "{},{},{},{},{},{},{}",
                    csv_field(&r.series),
                    csv_field(&self.axis.name),
                    x,
                    label,
                    s.mean,
                    s.stddev,
                    s.stderr
                )
                .expect("write to String");
            }
        }
        out
    }

    /// Write `<dir>/<name>.json` and `<dir>/<name>.csv` (creating `dir`
    /// if needed); returns the two paths.
    pub fn write(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        write_pair(dir, &self.name, self.to_json(), self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep_with;
    use crate::grid::{Job, SweepSpec};
    use crate::CellMetrics;

    #[test]
    fn json_renders_ordered_and_escaped() {
        let v = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Str("x\"y\n".to_string())),
            ("arr", Json::Arr(vec![Json::Num(0.5), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let s = v.render();
        // Insertion order preserved: "b" before "a".
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\"x\\\"y\\n\""));
        assert!(s.contains("0.5"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    fn tiny_report() -> SweepReport {
        let spec = SweepSpec::smoke().with_replicates(2);
        run_sweep_with(&spec, "test", 1, |job: &Job| CellMetrics {
            total: 10 * (job.cell + 1),
            frac_overdue: 0.25,
            frac_gt_t: 0.125,
            t_us: 12.0,
            max_cp: 1,
            mean_slack_us: 3.5,
            deadline: None,
            chaos: None,
        })
    }

    #[test]
    fn report_serializations_have_expected_shape() {
        let report = tiny_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"kind\": \"table\",\n  \"name\": \"smoke\""));
        assert!(json.contains("\"frac_overdue\""));
        assert!(json.contains("\"mean\": 0.25"));
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.results.len());
        assert!(lines[0].starts_with("topo,original,util,replicates"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header/row column mismatch"
        );
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let report = tiny_report();
        for doc in [report.to_json(), fig_report().to_json()] {
            let parsed = Json::parse(&doc).expect("parse own artifact");
            assert_eq!(parsed.render(), doc, "render(parse(x)) != x");
        }
    }

    #[test]
    fn parse_handles_escapes_numbers_and_rejects_garbage() {
        let v = Json::parse("{\"a\\n\": [-1.5e3, 7, null, \"\\u0041\"]}").unwrap();
        let Json::Obj(members) = &v else {
            panic!("expected object")
        };
        assert_eq!(members[0].0, "a\n");
        let Json::Arr(items) = &members[0].1 else {
            panic!("expected array")
        };
        assert_eq!(items[0], Json::Num(-1500.0));
        assert_eq!(items[1], Json::UInt(7));
        assert_eq!(items[2], Json::Null);
        assert_eq!(items[3], Json::Str("A".to_string()));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2] trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    fn fig_report() -> crate::engine::FigReport {
        use crate::engine::run_fig_with;
        use crate::grid::{FigAxis, FigSpec};
        let spec = FigSpec::new(
            "figtiny",
            "Tiny figure",
            vec!["A".into(), "B".into()],
            FigAxis::categorical("bucket", vec!["<=1".into(), ">1".into()]),
        )
        .with_scalars(&["median"])
        .with_replicates(2);
        run_fig_with(&spec, "test", 1, |job| crate::DistMetrics {
            scalars: vec![job.seed as f64],
            points: vec![job.series as f64, job.replicate as f64],
        })
    }

    #[test]
    fn fig_serializations_have_expected_shape() {
        let report = fig_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"kind\": \"figure\",\n  \"name\": \"figtiny\""));
        assert!(json.contains("\"axis\": \"bucket\""));
        assert!(json.contains("\"label\": \"<=1\""));
        assert!(json.contains("\"median\""));
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // Header + per series: 1 scalar row + 2 point rows.
        assert_eq!(lines.len(), 1 + 2 * 3);
        assert_eq!(lines[0], "series,metric,x,label,mean,stddev,stderr");
        assert!(lines[1].starts_with("A,median,,,"));
        assert!(lines[2].starts_with("A,bucket,0,<=1,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), lines[0].split(',').count());
        }
    }

    #[test]
    fn write_creates_both_artifacts() {
        let report = tiny_report();
        // Keyed by pid so concurrent test runs on one machine don't race.
        let dir =
            std::env::temp_dir().join(format!("ups-sweep-artifact-test-{}", std::process::id()));
        let (json_path, csv_path) = report.write(&dir).expect("write artifacts");
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            report.to_json()
        );
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), report.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }
}
