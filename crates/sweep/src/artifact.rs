//! Dependency-free JSON and CSV serialization for sweep reports, so
//! results land in `target/sweep/*.{json,csv}` for the benchmarking
//! trajectory instead of only stdout tables.
//!
//! Determinism contract: object keys render in insertion order and
//! floats use Rust's shortest round-trip `Display`, so two structurally
//! equal reports serialize to byte-identical artifacts.

use crate::engine::{Stat, SweepReport, SweepResult};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// A minimal JSON value with *ordered* object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the rendering of non-finite numbers).
    Null,
    /// A number; non-finite values render as `null`.
    Num(f64),
    /// An unsigned integer (seeds, counts) — rendered without a dot.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Pretty-print with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Num(x) => {
                if x.is_finite() {
                    write!(out, "{x}").expect("write to String");
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(n) => write!(out, "{n}").expect("write to String"),
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_json_string(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).expect("write to String"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn stat_json(s: &Stat) -> Json {
    Json::obj(vec![
        ("mean", Json::Num(s.mean)),
        ("stddev", Json::Num(s.stddev)),
        ("stderr", Json::Num(s.stderr)),
    ])
}

fn cell_json(r: &SweepResult) -> Json {
    Json::obj(vec![
        ("topo", Json::Str(r.coord.topo.label())),
        ("original", Json::Str(r.coord.sched.label().to_string())),
        ("util", Json::Num(r.coord.util)),
        ("replicates", Json::UInt(r.replicates as u64)),
        ("total_packets", stat_json(&r.total)),
        ("frac_overdue", stat_json(&r.frac_overdue)),
        ("frac_overdue_gt_t", stat_json(&r.frac_gt_t)),
        ("t_us", stat_json(&r.t_us)),
        ("max_congestion_points", stat_json(&r.max_cp)),
        ("mean_slack_us", stat_json(&r.mean_slack_us)),
    ])
}

/// Quote a CSV field if it contains a comma, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl SweepReport {
    /// The full report as a JSON document (ends with a newline).
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("base_seed", Json::UInt(self.base_seed)),
            ("replicates", Json::UInt(self.replicates as u64)),
            (
                "cells",
                Json::Arr(self.results.iter().map(cell_json).collect()),
            ),
        ])
        .render()
    }

    /// The per-cell table as CSV: one header line, one line per cell,
    /// mean and stddev columns for every metric.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "topo,original,util,replicates,\
             total_mean,total_stddev,\
             frac_overdue_mean,frac_overdue_stddev,\
             frac_overdue_gt_t_mean,frac_overdue_gt_t_stddev,\
             t_us_mean,t_us_stddev,\
             max_cp_mean,max_cp_stddev,\
             mean_slack_us_mean,mean_slack_us_stddev\n",
        );
        for r in &self.results {
            let stats = [
                &r.total,
                &r.frac_overdue,
                &r.frac_gt_t,
                &r.t_us,
                &r.max_cp,
                &r.mean_slack_us,
            ];
            write!(
                out,
                "{},{},{},{}",
                csv_field(&r.coord.topo.label()),
                csv_field(r.coord.sched.label()),
                r.coord.util,
                r.replicates
            )
            .expect("write to String");
            for s in stats {
                write!(out, ",{},{}", s.mean, s.stddev).expect("write to String");
            }
            out.push('\n');
        }
        out
    }

    /// Write `<dir>/<name>.json` and `<dir>/<name>.csv` (creating `dir`
    /// if needed); returns the two paths.
    pub fn write(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.name));
        let csv_path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&json_path, self.to_json())?;
        std::fs::write(&csv_path, self.to_csv())?;
        Ok((json_path, csv_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep_with;
    use crate::grid::{Job, SweepSpec};
    use crate::CellMetrics;

    #[test]
    fn json_renders_ordered_and_escaped() {
        let v = Json::obj(vec![
            ("b", Json::UInt(2)),
            ("a", Json::Str("x\"y\n".to_string())),
            ("arr", Json::Arr(vec![Json::Num(0.5), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let s = v.render();
        // Insertion order preserved: "b" before "a".
        assert!(s.find("\"b\"").unwrap() < s.find("\"a\"").unwrap());
        assert!(s.contains("\"x\\\"y\\n\""));
        assert!(s.contains("0.5"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("q\"q"), "\"q\"\"q\"");
    }

    fn tiny_report() -> SweepReport {
        let spec = SweepSpec::smoke().with_replicates(2);
        run_sweep_with(&spec, "test", 1, |job: &Job| CellMetrics {
            total: 10 * (job.cell + 1),
            frac_overdue: 0.25,
            frac_gt_t: 0.125,
            t_us: 12.0,
            max_cp: 1,
            mean_slack_us: 3.5,
        })
    }

    #[test]
    fn report_serializations_have_expected_shape() {
        let report = tiny_report();
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"name\": \"smoke\""));
        assert!(json.contains("\"frac_overdue\""));
        assert!(json.contains("\"mean\": 0.25"));
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + report.results.len());
        assert!(lines[0].starts_with("topo,original,util,replicates"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header/row column mismatch"
        );
    }

    #[test]
    fn write_creates_both_artifacts() {
        let report = tiny_report();
        // Keyed by pid so concurrent test runs on one machine don't race.
        let dir =
            std::env::temp_dir().join(format!("ups-sweep-artifact-test-{}", std::process::id()));
        let (json_path, csv_path) = report.write(&dir).expect("write artifacts");
        assert_eq!(
            std::fs::read_to_string(&json_path).unwrap(),
            report.to_json()
        );
        assert_eq!(std::fs::read_to_string(&csv_path).unwrap(), report.to_csv());
        std::fs::remove_dir_all(&dir).ok();
    }
}
