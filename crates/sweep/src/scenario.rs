//! The scenario registry: named, declarative experiment scenarios.
//!
//! A [`Scenario`] bundles what §2.3 calls an evaluation setting — a
//! topology build, a workload family, and a utilization × original-
//! scheduler grid — into one registered, runnable entry. The registry
//! ([`REGISTRY`]) is the single source of truth behind
//! `sweep --grid <scenario>`, the `sweep scenarios` CLI subcommand, and
//! `docs/SCENARIOS.md`; adding a scenario here is all it takes to make
//! it runnable, listable, and sweepable with artifacts.
//!
//! Scenarios reuse the whole sweep stack: a scenario's grid expands to
//! [`crate::Job`]s, runs on the deterministic worker pool, and lands as
//! the same `"kind": "table"` JSON/CSV artifacts (byte-identical for
//! every `--jobs N`) that `sweep diff` understands. The only new degree
//! of freedom is the workload family ([`WorkloadKind`]), which the
//! existing named grids fix to web traffic.
//!
//! ```
//! use ups_sweep::scenario;
//!
//! let s = scenario::find("dc-k4-incast-sched").expect("registered");
//! assert_eq!(s.workload, ups_core::WorkloadKind::Incast);
//! assert_eq!(s.spec().cells.len(), 3); // three original schedulers
//! assert!(scenario::names().contains(&"rocketfuel-full"));
//! ```

use crate::cell::CellPipeline;
use crate::engine::{run_sweep_with, DistResult, FigReport, Stat, SweepReport};
use crate::grid::{CellCoord, ChaosSpec, FigAxis, SimScale, SweepSpec, TopoKind};
use ups_core::WorkloadKind;
use ups_sched::SchedKind;
use ups_topo::internet2::I2Variant;

/// A registered experiment scenario: topology + workload + grid.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry key and artifact file stem (kebab-case).
    pub name: &'static str,
    /// One-line summary for `scenarios list`.
    pub title: &'static str,
    /// What the scenario stresses and what to look for — the body of
    /// `scenarios describe`.
    pub detail: &'static str,
    /// Topology under test.
    pub topo: TopoKind,
    /// Workload family every cell draws its flows from.
    pub workload: WorkloadKind,
    /// Which record-and-replay leg the cells run. Under
    /// [`CellPipeline::Replay`], `scheds` lists the *original*
    /// schedulers LSTF replays; under
    /// [`CellPipeline::DeadlineReplay`], the original is always EDF and
    /// `scheds` lists the *replay* candidates (EDF, LSTF, Priority).
    pub pipeline: CellPipeline,
    /// Scheduler grid column (see [`Scenario::pipeline`] for whether it
    /// names the original or the replay candidate).
    pub scheds: &'static [SchedKind],
    /// Target utilizations (one grid column each).
    pub utils: &'static [f64],
    /// Replay-leg drop rates in parts per million (one grid column
    /// each). `&[0]` for the classic clean scenarios; a chaos scenario
    /// sweeps several rates, and rate 0 is the exact clean control.
    pub drops: &'static [u32],
}

impl Scenario {
    /// Expand into the sweep grid: `[topo] × scheds × utils × drops`,
    /// named after the scenario so artifacts land as
    /// `<name>.json`/`.csv`.
    pub fn spec(&self) -> SweepSpec {
        let mut spec = SweepSpec::new(self.name);
        for &sched in self.scheds {
            for &util in self.utils {
                for &ppm in self.drops {
                    spec.cells.push(CellCoord {
                        topo: self.topo,
                        sched,
                        util,
                        chaos: ChaosSpec::drop(ppm),
                    });
                }
            }
        }
        spec
    }

    /// Run the scenario's grid at `sim` scale on up to `jobs` workers.
    /// Same engine, same guarantee: the report serializes byte-identical
    /// for every `jobs` value.
    pub fn run(&self, sim: &SimScale, jobs: usize) -> SweepReport {
        self.run_spec(&self.spec(), sim, jobs)
    }

    /// [`Scenario::run`] with a caller-adjusted spec (replicates, base
    /// seed) — the spec must come from [`Scenario::spec`].
    pub fn run_spec(&self, spec: &SweepSpec, sim: &SimScale, jobs: usize) -> SweepReport {
        let workload = self.workload;
        let pipeline = self.pipeline;
        run_sweep_with(spec, sim.label, jobs, move |job| {
            pipeline.cell(&job.coord, sim, job.seed, workload)
        })
    }

    /// The figure-style payload of a deadline-replay scenario: one
    /// miss-rate-vs-utilization curve per replay candidate, with the
    /// Welford error bars the table report already aggregated. `None`
    /// for classic-pipeline scenarios. Built purely from the (already
    /// `--jobs`-independent) table report, so the figure artifact is
    /// byte-identical for any worker count by construction; it lands as
    /// `<name>_fig.json`/`.csv` next to the table.
    pub fn miss_curves(&self, report: &SweepReport) -> Option<FigReport> {
        if self.pipeline != CellPipeline::DeadlineReplay {
            return None;
        }
        // spec() expands sched-major, util-next, drop-minor; the curve
        // reads each (sched, util)'s first-drop (clean-control) cell.
        let per_sched = self.utils.len() * self.drops.len();
        let results: Vec<DistResult> = self
            .scheds
            .iter()
            .enumerate()
            .map(|(si, &sched)| {
                let cells = &report.results[si * per_sched..(si + 1) * per_sched];
                DistResult {
                    series: sched.label().to_string(),
                    replicates: cells.first().map_or(0, |c| c.replicates),
                    scalars: Vec::new(),
                    points: (0..self.utils.len())
                        .map(|ui| {
                            let cell = &cells[ui * self.drops.len()];
                            cell.deadline.map_or(
                                Stat {
                                    mean: 0.0,
                                    stddev: 0.0,
                                    stderr: 0.0,
                                },
                                |d| d.miss_rate,
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        Some(FigReport {
            name: format!("{}_fig", self.name),
            title: format!("Deadline miss rate vs utilization — {}", self.title),
            scale: report.scale.clone(),
            base_seed: report.base_seed,
            replicates: report.replicates,
            axis: FigAxis::numeric("util", self.utils.to_vec()),
            scalar_names: Vec::new(),
            results,
        })
    }

    /// Multi-line human description (for `scenarios describe`).
    pub fn describe(&self) -> String {
        let utils = self
            .utils
            .iter()
            .map(|u| format!("{}%", (u * 100.0).round()))
            .collect::<Vec<_>>()
            .join(", ");
        let scheds = self
            .scheds
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", ");
        let drops = if self.drops == [0] {
            String::new()
        } else {
            format!(
                "drops:     {} ppm\n",
                self.drops
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        let (sched_role, fig) = match self.pipeline {
            CellPipeline::Replay => ("originals:", String::new()),
            CellPipeline::DeadlineReplay => (
                "replays:  ",
                format!(
                    "           target/sweep/{name}_fig.json, \
                     target/sweep/{name}_fig.csv\n",
                    name = self.name
                ),
            ),
        };
        format!(
            "{name} — {title}\n\
             topology:  {topo}\n\
             workload:  {workload}\n\
             {sched_role} {scheds}\n\
             utils:     {utils}\n\
             {drops}\
             cells:     {cells}\n\n\
             {detail}\n\n\
             run:       cargo run --release --bin sweep -- --grid {name} --jobs 4\n\
             artifacts: target/sweep/{name}.json, target/sweep/{name}.csv\n{fig}",
            name = self.name,
            title = self.title,
            topo = self.topo.label(),
            workload = self.workload.label(),
            cells = self.scheds.len() * self.utils.len() * self.drops.len(),
            detail = self.detail,
        )
    }
}

/// Every registered scenario, in presentation order.
pub const REGISTRY: &[Scenario] = &[
    Scenario {
        name: "i2-web",
        title: "Internet2 WAN under the paper's default web workload",
        detail: "The default scenario of §2.3 as a registry entry: the \
                 I2:1Gbps-10Gbps variant under Random originals across the \
                 full utilization sweep. Expect the Table 1 rows 1-2 shape: \
                 <1% of packets overdue beyond T even at 90% load.",
        topo: TopoKind::I2(I2Variant::Default1g10g),
        workload: WorkloadKind::Web,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.1, 0.3, 0.5, 0.7, 0.9],
        drops: &[0],
    },
    Scenario {
        name: "i2-deadline-mix",
        title: "Internet2 with deadline-tagged urgent flows over web background",
        detail: "A quarter of the offered load is short priority-0 flows \
                 tagged with affine deadlines (1 ms + 50 us/pkt), the rest \
                 heavy-tailed best effort — the traffic mix of the \
                 deadline-scheduling literature. Replayability should hold: \
                 the mix changes burst structure, not the slack argument.",
        topo: TopoKind::I2(I2Variant::Default1g10g),
        workload: WorkloadKind::DeadlineMix,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.3, 0.7],
        drops: &[0],
    },
    Scenario {
        name: "rocketfuel-full",
        title: "Full-scale RocketFuel ISP map (830 hosts), web workload",
        detail: "The paper's actual RocketFuel scenario: 83 core routers, \
                 131 core links, 10 edge routers per core. Half the core is \
                 slower than the access tier, so congestion points move \
                 into the core. This is the largest WAN in the registry \
                 (~2,500 nodes); quick-scale runs take tens of seconds.",
        topo: TopoKind::RocketFuelFull,
        workload: WorkloadKind::Web,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.3, 0.7],
        drops: &[0],
    },
    Scenario {
        name: "dc-k8-web",
        title: "Fat-tree k=8 datacenter (128 hosts), web workload",
        detail: "The paper-scale pFabric fat-tree: 16 core, 32 aggregation, \
                 32 edge switches, 10 Gbps everywhere. Full bisection means \
                 overdue fractions stay near zero until utilization gets \
                 high; this grid is also the scale leg of the PR 4 \
                 event-core claim (see crates/bench/benches/large_topo.rs).",
        topo: TopoKind::FatTreeK(8),
        workload: WorkloadKind::Web,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.3, 0.7],
        drops: &[0],
    },
    Scenario {
        name: "dc-k8-incast",
        title: "Fat-tree k=8 under partition/aggregate incast fan-in",
        detail: "16-way synchronized bursts collide on rotating receiver \
                 downlinks — the congestion is at the last hop, not the \
                 core, the opposite regime from the web grids. Utilization \
                 calibrates the epoch rate against the receiver NIC.",
        topo: TopoKind::FatTreeK(8),
        workload: WorkloadKind::Incast,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.3, 0.7],
        drops: &[0],
    },
    Scenario {
        name: "dc-k4-incast-sched",
        title: "Fat-tree k=4 incast across original schedulers (fast)",
        detail: "The small datacenter under incast, replayed against FIFO, \
                 SJF, and Random originals at 70% — the cheapest scenario \
                 that exercises a non-web workload against multiple \
                 originals; CI and the scenario_tour example run it.",
        topo: TopoKind::FatTreeK(4),
        workload: WorkloadKind::Incast,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Fifo, SchedKind::Sjf, SchedKind::Random],
        utils: &[0.7],
        drops: &[0],
    },
    Scenario {
        name: "i2-web-loss",
        title: "Internet2 web replay under seeded i.i.d. packet loss",
        detail: "The degradation-curve scenario on the WAN: the recorded \
                 Random-original schedule replays over a network that drops \
                 packets i.i.d. at 0 / 0.1% / 1% from a dedicated chaos RNG \
                 stream. Rate 0 is the exact clean control (byte-identical \
                 to a chaos-free build); at higher rates watch fidelity fall \
                 and frac_lost track the drop rate times mean path length.",
        topo: TopoKind::I2(I2Variant::Default1g10g),
        workload: WorkloadKind::Web,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Random],
        utils: &[0.7],
        drops: &[0, 1_000, 10_000],
    },
    Scenario {
        name: "dc-k8-web-chaos",
        title: "Fat-tree k=8 web replay under loss, across two originals",
        detail: "dc-k8-web's datacenter with the same drop-rate sweep as \
                 i2-web-loss, crossed with FIFO and Random originals: the \
                 replay-fidelity-vs-drop-rate curve at scale, and the CI \
                 smoke leg that gates the chaos layer (clean control cells \
                 must stay byte-identical to the dc-k8-web baseline shape).",
        topo: TopoKind::FatTreeK(8),
        workload: WorkloadKind::Web,
        pipeline: CellPipeline::Replay,
        scheds: &[SchedKind::Fifo, SchedKind::Random],
        utils: &[0.7],
        drops: &[0, 1_000, 10_000],
    },
    Scenario {
        name: "i2-deadline-replay",
        title: "Can LSTF replay EDF? Deadline-mix replay on Internet2",
        detail: "The paper's central question asked in the deadline regime: \
                 record network-wide EDF on the deadline-mix workload (every \
                 packet stamped with its flow's virtual deadline), then \
                 replay the identical input under EDF (control), \
                 LSTF-with-deadline-slack (Appendix E predicts a \
                 packet-for-packet identical schedule — frac_overdue 0 in \
                 the EDF and LSTF columns), and a static two-level priority \
                 (the strawman that only sees the tag, not the value). The \
                 deadline_miss_rate column against utilization is the \
                 figure payload, written alongside as \
                 i2-deadline-replay_fig.json.",
        topo: TopoKind::I2(I2Variant::Default1g10g),
        workload: WorkloadKind::DeadlineMix,
        pipeline: CellPipeline::DeadlineReplay,
        scheds: &[SchedKind::Edf, SchedKind::Lstf, SchedKind::Priority],
        utils: &[0.1, 0.3, 0.5, 0.7, 0.9],
        drops: &[0],
    },
    Scenario {
        name: "dc-k8-deadline-replay",
        title: "EDF-vs-LSTF deadline replay on the fat-tree k=8 datacenter",
        detail: "i2-deadline-replay's question at datacenter scale: 128 \
                 hosts, full bisection, the deadline-mix workload's urgent \
                 flows racing their budgets across three candidate replays. \
                 Full bisection keeps miss rates near zero until high load, \
                 so the interesting part of the miss-rate curve is the 90% \
                 cell; the Priority column shows what ignoring deadline \
                 values (keeping only the urgent/best-effort tag) costs.",
        topo: TopoKind::FatTreeK(8),
        workload: WorkloadKind::DeadlineMix,
        pipeline: CellPipeline::DeadlineReplay,
        scheds: &[SchedKind::Edf, SchedKind::Lstf, SchedKind::Priority],
        utils: &[0.3, 0.6, 0.9],
        drops: &[0],
    },
];

/// Look up a scenario by registry name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// All registered names, in presentation order.
pub fn names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// One line per scenario: `name  cells  topology / workload — title`.
pub fn render_list() -> String {
    let mut out = String::new();
    for s in REGISTRY {
        out.push_str(&format!(
            "{:<20} {:>2} cells  {} / {} — {}\n",
            s.name,
            s.scheds.len() * s.utils.len() * s.drops.len(),
            s.topo.label(),
            s.workload.label(),
            s.title,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ups_sim::Dur;

    #[test]
    fn names_are_unique_and_kebab_case() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for n in names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "name `{n}` is not kebab-case"
            );
        }
    }

    #[test]
    fn every_scenario_expands_to_a_nonempty_grid() {
        for s in REGISTRY {
            let spec = s.spec();
            assert_eq!(spec.name, s.name);
            assert_eq!(
                spec.cells.len(),
                s.scheds.len() * s.utils.len() * s.drops.len()
            );
            assert!(!spec.cells.is_empty());
            for c in &spec.cells {
                assert!((0.0..1.0).contains(&c.util));
                assert_eq!(c.topo, s.topo);
            }
        }
    }

    #[test]
    fn chaos_scenarios_sweep_drop_rates_with_a_clean_control() {
        let s = find("dc-k8-web-chaos").unwrap();
        let spec = s.spec();
        assert_eq!(spec.cells.len(), 6); // 2 originals × 1 util × 3 rates
                                         // Drop-minor expansion: every original's first cell is the
                                         // clean control, the rest are perturbed.
        for chunk in spec.cells.chunks(3) {
            assert_eq!(chunk[0].chaos, ChaosSpec::OFF);
            assert!(chunk[1].chaos.enabled() && chunk[2].chaos.enabled());
            assert_eq!(chunk[1].chaos.drop_ppm, 1_000);
            assert_eq!(chunk[2].chaos.drop_ppm, 10_000);
        }
        assert!(find("i2-web-loss").is_some());
        // Clean scenarios never carry a perturbed cell.
        let clean = find("dc-k8-web").unwrap().spec();
        assert!(clean.cells.iter().all(|c| !c.chaos.enabled()));
    }

    #[test]
    fn find_and_list_agree_with_the_registry() {
        assert!(find("dc-k8-web").is_some());
        assert!(find("no-such-scenario").is_none());
        let listing = render_list();
        for s in REGISTRY {
            assert!(listing.contains(s.name), "list missing {}", s.name);
            assert!(s.describe().contains(s.name));
        }
    }

    #[test]
    fn miss_curves_index_the_grid_correctly_and_only_for_deadline_replay() {
        use crate::engine::{DeadlineAgg, SweepResult};
        let s = find("i2-deadline-replay").unwrap();
        assert_eq!(s.pipeline, CellPipeline::DeadlineReplay);
        // Synthetic report in spec cell order: miss rate encodes the
        // (sched, util) coordinate, so the curve builder's indexing is
        // checked without running the simulator.
        let spec = s.spec();
        let zero = Stat {
            mean: 0.0,
            stddev: 0.0,
            stderr: 0.0,
        };
        let stat = |m: f64| Stat {
            mean: m,
            stddev: 0.25,
            stderr: 0.125,
        };
        let results: Vec<SweepResult> = spec
            .cells
            .iter()
            .enumerate()
            .map(|(i, &coord)| SweepResult {
                coord,
                replicates: 2,
                total: zero,
                frac_overdue: zero,
                frac_gt_t: zero,
                t_us: zero,
                max_cp: zero,
                mean_slack_us: zero,
                deadline: Some(DeadlineAgg {
                    tagged: zero,
                    miss_rate: stat(i as f64),
                    mean_lateness_us: zero,
                    p99_lateness_us: zero,
                }),
                chaos: None,
            })
            .collect();
        let report = SweepReport {
            name: spec.name.clone(),
            scale: "tiny".to_string(),
            base_seed: 1,
            replicates: 2,
            results,
        };
        let fig = s
            .miss_curves(&report)
            .expect("deadline scenario has curves");
        assert_eq!(fig.name, "i2-deadline-replay_fig");
        assert_eq!(fig.axis.name, "util");
        assert_eq!(fig.axis.xs, s.utils.to_vec());
        assert_eq!(fig.results.len(), 3);
        let labels: Vec<&str> = fig.results.iter().map(|r| r.series.as_str()).collect();
        assert_eq!(labels, ["EDF", "LSTF", "Priority"]);
        for (si, series) in fig.results.iter().enumerate() {
            assert_eq!(series.replicates, 2);
            assert_eq!(series.points.len(), s.utils.len());
            for (ui, p) in series.points.iter().enumerate() {
                // Cell index in sched-major, util-next, drop-minor order.
                let want = (si * s.utils.len() * s.drops.len() + ui * s.drops.len()) as f64;
                assert_eq!(p.mean, want, "series {si} point {ui}");
                assert_eq!(p.stddev, 0.25, "error bars must survive");
            }
        }
        // Classic-pipeline scenarios carry no figure payload.
        assert!(find("i2-web").unwrap().miss_curves(&report).is_none());
    }

    #[test]
    fn cheap_scenario_runs_end_to_end() {
        let s = find("dc-k4-incast-sched").unwrap();
        let sim = SimScale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            label: "tiny",
        };
        let report = s.run(&sim, 2);
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            assert!(r.total.mean > 0.0, "cell replayed no packets");
        }
    }
}
