//! A deterministic scoped-thread worker pool (std-only — the build
//! container has no registry access, so no rayon).
//!
//! Workers claim items from a shared atomic cursor, so load balances
//! dynamically like work stealing, but every result is keyed to its
//! item index: the returned `Vec` is in item order **regardless of the
//! worker count or completion order**. That index-keying is what makes
//! sweep artifacts byte-identical across `--jobs N`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `f(i, &items[i])` for every item on up to `jobs` worker threads
/// and return the results in item order.
///
/// `jobs` is clamped to `1..=items.len()`; `jobs == 1` runs inline on
/// the caller's thread. If `f` panics, the other workers stop claiming
/// new items (each finishes at most its current one) and the panic
/// propagates to the caller.
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, items.len());
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let panicked = AtomicBool::new(false);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                while !panicked.load(Ordering::Relaxed) {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    // Catch so sibling workers see the flag and stop
                    // claiming (a full-scale queue would otherwise drain
                    // for minutes first), then re-raise: the scope
                    // propagates the original panic to the caller.
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        Ok(r) => done.lock().expect("pool poisoned").push((i, r)),
                        Err(payload) => {
                            panicked.store(true, Ordering::Relaxed);
                            resume_unwind(payload);
                        }
                    }
                }
            });
        }
    });
    let mut pairs = done.into_inner().expect("pool poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 200] {
            let got = run_indexed(&items, jobs, |_, &x| {
                // Stagger completion so out-of-order finishes are likely.
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * x
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn index_argument_matches_item_position() {
        let items = ["a", "b", "c"];
        let got = run_indexed(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = run_indexed(&[] as &[u8], 4, |_, _| 1);
        assert!(got.is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let got = run_indexed(&[1, 2, 3], 0, |_, &x| x + 1);
        assert_eq!(got, [2, 3, 4]);
    }

    #[test]
    fn worker_panic_propagates_and_stops_the_queue() {
        let ran = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_indexed(&items, 2, |_, &x| {
                ran.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("boom");
                }
                // Slow non-panicking jobs so the surviving worker would
                // visibly drain the queue if the stop flag were broken.
                std::thread::sleep(std::time::Duration::from_micros(100));
                x
            })
        }));
        assert!(result.is_err(), "panic must propagate");
        assert!(
            ran.load(Ordering::Relaxed) < items.len(),
            "queue should stop draining after a panic"
        );
    }
}
