//! Machine-readable performance history and the regression gate behind
//! `sweep bench`.
//!
//! Every bench run appends one [`PerfEntry`] as a single JSON line to a
//! history file (default `target/sweep/perf-history.jsonl`). JSONL
//! keeps appends atomic-ish and trivially greppable, and each line
//! parses back through [`Json::parse`], so the history needs no schema
//! migration: unknown future fields are simply ignored by
//! [`PerfEntry::from_json`].
//!
//! The gate ([`gate`]) compares a candidate's best (minimum) iteration
//! time against the best prior entry for the same `(bench, scale)` key
//! and fails when the candidate is more than `gate_pct` percent slower.
//! Minimum-vs-minimum is deliberately forgiving of noise: a single slow
//! iteration (page cache miss, CI neighbor) cannot fail the gate, only
//! a run whose *fastest* iteration regressed can.

use crate::artifact::Json;

/// One benchmark run: the unit appended to the perf history.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Benchmark name (e.g. `fattree_web_forwarding`).
    pub bench: String,
    /// Scale label the run used (`quick`, `full`, …) — part of the
    /// gate key, since timings across scales are incomparable.
    pub scale: String,
    /// Timed iterations aggregated into this entry.
    pub iters: u64,
    /// Packets forwarded per iteration (the throughput denominator).
    pub pkts: u64,
    /// Fastest iteration, milliseconds — the gated statistic.
    pub min_ms: f64,
    /// Mean over timed iterations, milliseconds.
    pub mean_ms: f64,
    /// Throughput of the fastest iteration, packets per second.
    pub pkts_per_sec: f64,
}

impl PerfEntry {
    /// Render as one compact JSON line (no trailing newline). Floats
    /// use Rust's shortest round-trip `Display`, like every artifact.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":{},\"scale\":{},\"iters\":{},\"pkts\":{},\
             \"min_ms\":{},\"mean_ms\":{},\"pkts_per_sec\":{}}}",
            quote(&self.bench),
            quote(&self.scale),
            self.iters,
            self.pkts,
            self.min_ms,
            self.mean_ms,
            self.pkts_per_sec
        )
    }

    /// Rebuild an entry from a parsed history line. Unknown members
    /// are ignored; missing or mistyped required members are errors.
    pub fn from_json(v: &Json) -> Result<PerfEntry, String> {
        let Json::Obj(members) = v else {
            return Err("perf entry: expected a JSON object".to_string());
        };
        let get = |key: &str| -> Result<&Json, String> {
            members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("perf entry: missing `{key}`"))
        };
        let str_of = |key: &str| -> Result<String, String> {
            match get(key)? {
                Json::Str(s) => Ok(s.clone()),
                _ => Err(format!("perf entry: `{key}` must be a string")),
            }
        };
        let uint_of = |key: &str| -> Result<u64, String> {
            match get(key)? {
                Json::UInt(n) => Ok(*n),
                _ => Err(format!("perf entry: `{key}` must be an unsigned integer")),
            }
        };
        let num_of = |key: &str| -> Result<f64, String> {
            match get(key)? {
                Json::Num(x) => Ok(*x),
                Json::UInt(n) => Ok(*n as f64),
                _ => Err(format!("perf entry: `{key}` must be a number")),
            }
        };
        Ok(PerfEntry {
            bench: str_of("bench")?,
            scale: str_of("scale")?,
            iters: uint_of("iters")?,
            pkts: uint_of("pkts")?,
            min_ms: num_of("min_ms")?,
            mean_ms: num_of("mean_ms")?,
            pkts_per_sec: num_of("pkts_per_sec")?,
        })
    }
}

/// Minimal JSON string quoting for bench/scale labels.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a perf-history file: one [`PerfEntry`] per non-empty line.
/// Errors carry the 1-based line number so a corrupted history is easy
/// to repair by hand.
pub fn parse_history(text: &str) -> Result<Vec<PerfEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| format!("perf history line {}: {e}", i + 1))?;
        entries.push(
            PerfEntry::from_json(&v).map_err(|e| format!("perf history line {}: {e}", i + 1))?,
        );
    }
    Ok(entries)
}

/// Gate a candidate run against history.
///
/// Returns `Ok(None)` when no prior entry shares the candidate's
/// `(bench, scale)` key (first run establishes the baseline),
/// `Ok(Some(prior_best_ms))` when the candidate's `min_ms` is within
/// `gate_pct` percent of the best prior `min_ms`, and `Err` with a
/// human-readable verdict when it regressed beyond the threshold.
pub fn gate(
    history: &[PerfEntry],
    candidate: &PerfEntry,
    gate_pct: f64,
) -> Result<Option<f64>, String> {
    let prior_best = history
        .iter()
        .filter(|e| e.bench == candidate.bench && e.scale == candidate.scale)
        .map(|e| e.min_ms)
        .fold(f64::INFINITY, f64::min);
    if !prior_best.is_finite() {
        return Ok(None);
    }
    let limit = prior_best * (1.0 + gate_pct / 100.0);
    if candidate.min_ms <= limit {
        Ok(Some(prior_best))
    } else {
        Err(format!(
            "perf gate: {} ({}) regressed: min {:.3} ms vs prior best {:.3} ms \
             (limit {:.3} ms = best +{gate_pct}%)",
            candidate.bench, candidate.scale, candidate.min_ms, prior_best, limit
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(bench: &str, scale: &str, min_ms: f64) -> PerfEntry {
        PerfEntry {
            bench: bench.to_string(),
            scale: scale.to_string(),
            iters: 5,
            pkts: 10_000,
            min_ms,
            mean_ms: min_ms * 1.1,
            pkts_per_sec: 10_000.0 / (min_ms / 1e3),
        }
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let e = entry("fattree_web_forwarding", "quick", 12.625);
        let line = e.to_json_line();
        assert!(!line.contains('\n'), "one entry per line");
        let parsed = PerfEntry::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn history_parses_lines_and_skips_blanks() {
        let text = format!(
            "{}\n\n{}\n",
            entry("a", "quick", 1.0).to_json_line(),
            entry("b", "full", 2.0).to_json_line()
        );
        let h = parse_history(&text).unwrap();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].bench, "a");
        assert_eq!(h[1].scale, "full");
    }

    #[test]
    fn corrupt_line_is_reported_with_its_number() {
        let text = format!("{}\nnot json\n", entry("a", "quick", 1.0).to_json_line());
        let err = parse_history(&text).unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }

    #[test]
    fn gate_passes_without_prior_baseline() {
        let verdict = gate(&[], &entry("a", "quick", 5.0), 10.0).unwrap();
        assert_eq!(verdict, None);
    }

    #[test]
    fn gate_keys_on_bench_and_scale() {
        let history = vec![entry("a", "full", 1.0), entry("b", "quick", 1.0)];
        // Same bench name at a different scale is not a baseline.
        assert_eq!(gate(&history, &entry("a", "quick", 50.0), 10.0), Ok(None));
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let history = vec![
            entry("a", "quick", 10.0),
            entry("a", "quick", 12.0), // slower later run must not raise the bar
        ];
        assert_eq!(
            gate(&history, &entry("a", "quick", 10.9), 10.0),
            Ok(Some(10.0))
        );
        let err = gate(&history, &entry("a", "quick", 11.1), 10.0).unwrap_err();
        assert!(err.contains("regressed"), "got: {err}");
        assert!(err.contains("11.1"), "verdict names the candidate: {err}");
    }
}
