//! The `"kind": "telemetry"` sweep artifact: deterministic time series
//! of network state per grid cell.
//!
//! A telemetry sweep runs the same record-and-replay cells as a table
//! sweep, with event-wheel sampling enabled
//! ([`ups_obs::set_sample_interval`]) during the *record* leg — the run
//! where the cell's original scheduler actually shapes the queues. Each
//! replicate's [`NetSeries`] is resampled (last observation carried
//! forward) onto a fixed x-grid of `ceil(2 × horizon / interval)`
//! sample instants, so replicates aggregate point-wise into mean ±
//! stddev exactly like figure points, and the artifact is
//! byte-identical for every `--jobs N`.
//!
//! The artifact is `sweep diff`-compatible by construction: cells carry
//! the `topo`/`original`/`util` coordinate keys, series objects carry
//! `series`, and points carry their own `x` (µs).

use crate::artifact::{csv_field, Json};
use crate::cell::{CellMetrics, CellPipeline};
use crate::engine::{aggregate_cells, Stat, SweepReport};
use crate::grid::{CellCoord, SimScale, SweepSpec};
use crate::pool::run_indexed;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use ups_core::WorkloadKind;
use ups_obs::NetSeries;
use ups_sim::{Dur, Time};

/// The sampled quantities, one series per cell: total queued packets,
/// deepest single queue, packets alive anywhere, and cumulative mean
/// link utilization. Names are the artifact's series keys.
const SERIES_NAMES: [&str; 4] = [
    "queue_pkts_total",
    "queue_pkts_max",
    "in_flight",
    "link_util_mean",
];

/// One sampled quantity of one cell, aggregated across replicates:
/// mean ± stddev per x-grid instant.
#[derive(Debug, Clone)]
pub struct TelemetrySeries {
    /// Series key (one of `queue_pkts_total`, `queue_pkts_max`,
    /// `in_flight`, `link_util_mean`).
    pub name: &'static str,
    /// Per-x aggregates, parallel to [`TelemetryReport::xs_us`].
    pub points: Vec<Stat>,
}

/// One grid cell's telemetry: the four series plus cell metadata.
#[derive(Debug, Clone)]
pub struct TelemetryCell {
    /// The grid coordinate.
    pub coord: CellCoord,
    /// Replicates that produced a series (0 when sampling was compiled
    /// out or disabled).
    pub replicates: usize,
    /// Links in the observed network.
    pub links: u64,
    /// The sampled quantities, in `SERIES_NAMES` order
    /// (`queue_pkts_total`, `queue_pkts_max`, `in_flight`,
    /// `link_util_mean`).
    pub series: Vec<TelemetrySeries>,
}

/// A completed telemetry sweep: the time-series artifact written next
/// to the table artifact as `<grid>_telemetry.json`/`.csv`.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Artifact file stem (`<grid>_telemetry`).
    pub name: String,
    /// The grid this telemetry was sampled from.
    pub grid: String,
    /// Scale label the sweep ran at.
    pub scale: String,
    /// Seed of replicate 0.
    pub base_seed: u64,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// Sampling cadence.
    pub interval: Dur,
    /// The fixed x-grid, in µs since simulation start.
    pub xs_us: Vec<f64>,
    /// Per-cell series, in spec order.
    pub cells: Vec<TelemetryCell>,
}

/// Run `spec`'s cells with event-wheel sampling enabled, producing both
/// the ordinary table report and the telemetry artifact.
///
/// Sets the process-wide sample interval for the duration of the sweep
/// and restores the previous value afterwards — callers that flip the
/// global concurrently (tests) must serialize with this.
pub fn run_telemetry_sweep(
    spec: &SweepSpec,
    sim: &SimScale,
    jobs: usize,
    workload: WorkloadKind,
    pipeline: CellPipeline,
    interval: Dur,
) -> (SweepReport, TelemetryReport) {
    assert!(interval > Dur::ZERO, "sampling interval must be positive");
    let clamped;
    let spec = if spec.replicates == 0 {
        clamped = spec.clone().with_replicates(1);
        &clamped
    } else {
        spec
    };
    let previous = ups_obs::sample_interval();
    ups_obs::set_sample_interval(Some(interval));
    let expanded = spec.jobs();
    let measured = run_indexed(&expanded, jobs, |_, job| {
        let run = pipeline.observed(&job.coord, sim, job.seed, workload);
        let mut metrics = CellMetrics::of(&run.report, &run.schedule);
        metrics.deadline = run.deadline;
        metrics.chaos = run.chaos;
        (metrics, run.series)
    });
    ups_obs::set_sample_interval(previous);

    let (metrics, series): (Vec<CellMetrics>, Vec<Option<NetSeries>>) =
        measured.into_iter().unzip();
    let table = aggregate_cells(spec, sim.label, &metrics);

    // Fixed x-grid: the flow-arrival horizon plus an equal drain tail.
    let count = (2 * sim.horizon.as_ps()).div_ceil(interval.as_ps()).max(1);
    let xs_ps: Vec<u64> = (1..=count).map(|k| k * interval.as_ps()).collect();
    let xs_us: Vec<f64> = xs_ps.iter().map(|&ps| ps as f64 / 1e6).collect();

    let cells = spec
        .cells
        .iter()
        .zip(series.chunks(spec.replicates))
        .map(|(&coord, reps)| {
            let sampled: Vec<&NetSeries> = reps.iter().flatten().collect();
            let series = SERIES_NAMES
                .iter()
                .enumerate()
                .map(|(metric, &name)| TelemetrySeries {
                    name,
                    points: xs_ps
                        .iter()
                        .map(|&ps| Stat::of(sampled.iter().map(|s| eval(s, metric, Time(ps)))))
                        .collect(),
                })
                .collect();
            TelemetryCell {
                coord,
                replicates: sampled.len(),
                links: sampled.first().map_or(0, |s| s.links),
                series,
            }
        })
        .collect();

    let telemetry = TelemetryReport {
        name: format!("{}_telemetry", spec.name),
        grid: spec.name.clone(),
        scale: sim.label.to_string(),
        base_seed: spec.base_seed,
        replicates: spec.replicates,
        interval,
        xs_us,
        cells,
    };
    (table, telemetry)
}

/// Evaluate one sampled quantity at `t` (LOCF; 0 before the first
/// sample — the network starts idle).
fn eval(series: &NetSeries, metric: usize, t: Time) -> f64 {
    match metric {
        0 => series.at(t).map_or(0.0, |s| s.queued_pkts as f64),
        1 => series.at(t).map_or(0.0, |s| s.max_queue_pkts as f64),
        2 => series.at(t).map_or(0.0, |s| s.in_flight as f64),
        _ => series.mean_utilization(t),
    }
}

impl TelemetryReport {
    /// The artifact as a JSON document (ends with a newline).
    pub fn to_json(&self) -> String {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                let series = c
                    .series
                    .iter()
                    .map(|s| {
                        let points = self
                            .xs_us
                            .iter()
                            .zip(&s.points)
                            .map(|(&x, p)| {
                                Json::obj(vec![
                                    ("x", Json::Num(x)),
                                    ("mean", Json::Num(p.mean)),
                                    ("stddev", Json::Num(p.stddev)),
                                    ("stderr", Json::Num(p.stderr)),
                                ])
                            })
                            .collect();
                        Json::obj(vec![
                            ("series", Json::Str(s.name.to_string())),
                            ("points", Json::Arr(points)),
                        ])
                    })
                    .collect();
                let mut members = vec![
                    ("topo", Json::Str(c.coord.topo.label())),
                    ("original", Json::Str(c.coord.sched.label().to_string())),
                    ("util", Json::Num(c.coord.util)),
                ];
                // The chaos coordinate keeps cells of a chaos grid
                // uniquely keyed for `sweep diff`; clean grids (every
                // committed baseline) keep the pre-chaos schema.
                if c.coord.chaos.enabled() {
                    members.push(("chaos_drop_ppm", Json::UInt(c.coord.chaos.drop_ppm as u64)));
                }
                members.extend([
                    ("replicates", Json::UInt(c.replicates as u64)),
                    ("links", Json::UInt(c.links)),
                    ("series", Json::Arr(series)),
                ]);
                Json::obj(members)
            })
            .collect();
        Json::obj(vec![
            ("kind", Json::Str("telemetry".to_string())),
            ("name", Json::Str(self.name.clone())),
            ("grid", Json::Str(self.grid.clone())),
            ("scale", Json::Str(self.scale.clone())),
            ("base_seed", Json::UInt(self.base_seed)),
            ("replicates", Json::UInt(self.replicates as u64)),
            ("interval_us", Json::Num(self.interval.as_ps() as f64 / 1e6)),
            ("cells", Json::Arr(cells)),
        ])
        .render()
    }

    /// Long-format CSV: one row per (cell, series, x). The
    /// `chaos_drop_ppm` column appears only when some cell is perturbed,
    /// keeping clean-grid CSVs byte-identical to the pre-chaos schema.
    pub fn to_csv(&self) -> String {
        let has_chaos = self.cells.iter().any(|c| c.coord.chaos.enabled());
        let mut out = String::from("topo,original,util,");
        if has_chaos {
            out.push_str("chaos_drop_ppm,");
        }
        out.push_str("series,x_us,mean,stddev,stderr\n");
        for c in &self.cells {
            for s in &c.series {
                for (&x, p) in self.xs_us.iter().zip(&s.points) {
                    write!(
                        out,
                        "{},{},{}",
                        csv_field(&c.coord.topo.label()),
                        csv_field(c.coord.sched.label()),
                        c.coord.util,
                    )
                    .expect("write to String");
                    if has_chaos {
                        write!(out, ",{}", c.coord.chaos.drop_ppm).expect("write to String");
                    }
                    writeln!(
                        out,
                        ",{},{},{},{},{}",
                        s.name, x, p.mean, p.stddev, p.stderr
                    )
                    .expect("write to String");
                }
            }
        }
        out
    }

    /// Write `<dir>/<name>.json` and `<dir>/<name>.csv` (creating `dir`
    /// if needed); returns the two paths.
    pub fn write(&self, dir: &Path) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let json_path = dir.join(format!("{}.json", self.name));
        let csv_path = dir.join(format!("{}.csv", self.name));
        std::fs::write(&json_path, self.to_json())?;
        std::fs::write(&csv_path, self.to_csv())?;
        Ok((json_path, csv_path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{diff_artifacts, DiffOptions};
    use crate::grid::TopoKind;
    use ups_sched::SchedKind;
    use ups_topo::internet2::I2Variant;

    fn tiny() -> SimScale {
        SimScale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            label: "tiny",
        }
    }

    fn tiny_spec() -> SweepSpec {
        SweepSpec::cartesian(
            "telemetry-test",
            &[TopoKind::I2(I2Variant::Default1g10g)],
            &[SchedKind::Random],
            &[0.5],
        )
        .with_replicates(2)
    }

    /// One end-to-end test owns every assertion that needs the
    /// process-wide sampling global, so nothing here races it.
    #[test]
    fn telemetry_sweep_samples_and_diffs_cleanly() {
        let interval = Dur::from_micros(100);
        let (table, telemetry) = run_telemetry_sweep(
            &tiny_spec(),
            &tiny(),
            2,
            WorkloadKind::Web,
            CellPipeline::Replay,
            interval,
        );
        // Sampling restored the global to its prior (off) state.
        assert_eq!(ups_obs::sample_interval(), None);
        assert_eq!(table.results.len(), 1);
        assert_eq!(telemetry.cells.len(), 1);
        assert_eq!(telemetry.name, "telemetry-test_telemetry");
        // 2 ms horizon, 100 µs cadence → 40 x-points ending at 4 ms.
        assert_eq!(telemetry.xs_us.len(), 40);
        assert_eq!(telemetry.xs_us[0], 100.0);
        assert_eq!(*telemetry.xs_us.last().unwrap(), 4000.0);
        let cell = &telemetry.cells[0];
        assert_eq!(cell.series.len(), 4);
        if ups_obs::COMPILED {
            assert_eq!(cell.replicates, 2);
            assert!(cell.links > 0);
            // The network was busy at some point: some sample saw queued
            // packets or a positive utilization.
            let busy = cell
                .series
                .iter()
                .any(|s| s.points.iter().any(|p| p.mean > 0.0));
            assert!(busy, "every telemetry series is identically zero");
        } else {
            assert_eq!(cell.replicates, 0);
        }
        // The artifact self-diffs clean and parses back.
        let json = telemetry.to_json();
        assert!(json.starts_with("{\n  \"kind\": \"telemetry\""));
        let report = diff_artifacts(&json, &json, &DiffOptions::default()).expect("parses");
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.compared > 0);
        // Worker-count independence: the same sweep on 1 worker
        // serializes byte-identically.
        let (_, again) = run_telemetry_sweep(
            &tiny_spec(),
            &tiny(),
            1,
            WorkloadKind::Web,
            CellPipeline::Replay,
            interval,
        );
        assert_eq!(again.to_json(), json);
        // CSV is aligned.
        let csv = telemetry.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 4 * telemetry.xs_us.len());
        for line in &lines {
            assert_eq!(line.split(',').count(), 8);
        }
    }
}
