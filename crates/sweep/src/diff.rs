//! Cross-run artifact diffing — the primitive behind `sweep diff` and
//! CI regression detection.
//!
//! [`diff`] walks two parsed artifacts ([`Json`] trees) structurally.
//! Arrays of cells are matched **by grid coordinate**, not array
//! position: table cells by `(topo, original, util)`, figure series by
//! `series`, figure points by `x` — so reordering cells is not a
//! regression, while a changed, added, or removed cell is reported
//! under its coordinate (`cells[topo=…,original=FIFO,util=0.7]`), never
//! as a wall of positional noise. Numeric leaves compare under a
//! configurable relative/absolute tolerance; everything else must match
//! exactly.
//!
//! A non-empty [`DiffReport`] is what the CLI turns into a nonzero exit
//! status.

use crate::artifact::Json;

/// Numeric comparison tolerances for [`diff`].
///
/// Two numbers `a`, `b` are equal when
/// `|a - b| <= abs_tol + rel_tol * max(|a|, |b|)`. The default is exact
/// comparison (both tolerances zero) — right for artifacts produced by
/// the deterministic engine, where any drift is a real change.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiffOptions {
    /// Relative tolerance (scaled by the larger magnitude).
    pub rel_tol: f64,
    /// Absolute tolerance (dominates near zero).
    pub abs_tol: f64,
}

impl DiffOptions {
    fn close(&self, a: f64, b: f64) -> bool {
        if a == b {
            return true;
        }
        if !a.is_finite() || !b.is_finite() {
            return false;
        }
        (a - b).abs() <= self.abs_tol + self.rel_tol * a.abs().max(b.abs())
    }
}

/// One divergence between the two artifacts, anchored to a path of
/// object keys and grid coordinates.
#[derive(Debug, Clone)]
pub struct Difference {
    /// Where (e.g. `cells[topo=I2 1G-10G,original=FIFO,util=0.7].frac_overdue.mean`).
    pub path: String,
    /// What (e.g. `0.1 -> 0.25 (rel delta 6e-1)`).
    pub detail: String,
}

/// The outcome of an artifact comparison: every difference found plus
/// how many numeric leaves were actually compared (a self-diff that
/// compared nothing would be vacuous, so the count is surfaced).
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All divergences, in artifact order.
    pub differences: Vec<Difference>,
    /// Number of numeric leaf pairs compared.
    pub compared: usize,
}

impl DiffReport {
    /// True when the artifacts match under the given tolerances.
    pub fn is_clean(&self) -> bool {
        self.differences.is_empty()
    }

    /// Human-readable report: a summary line, then one line per
    /// difference.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} numeric value(s) compared, {} difference(s)\n",
            self.compared,
            self.differences.len()
        );
        for d in &self.differences {
            out.push_str(&format!("  {}: {}\n", d.path, d.detail));
        }
        out
    }

    fn note(&mut self, path: &str, detail: String) {
        self.differences.push(Difference {
            path: path.to_string(),
            detail,
        });
    }
}

/// Compare two parsed artifacts; see the module docs for the matching
/// rules. `old` is the baseline, `new` the candidate.
pub fn diff(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    walk("$", old, new, opts, &mut report);
    report
}

/// Parse two artifact documents and compare them. Errors only on
/// malformed JSON, never on content differences.
pub fn diff_artifacts(old: &str, new: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let old = Json::parse(old).map_err(|e| format!("old artifact: {e}"))?;
    let new = Json::parse(new).map_err(|e| format!("new artifact: {e}"))?;
    Ok(diff(&old, &new, opts))
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Num(_) | Json::UInt(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn as_number(v: &Json) -> Option<f64> {
    match v {
        Json::Num(x) => Some(*x),
        Json::UInt(n) => Some(*n as f64),
        _ => None,
    }
}

/// Render a scalar for use inside a coordinate key.
fn scalar_str(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        Json::Num(x) => format!("{x}"),
        Json::UInt(n) => format!("{n}"),
        other => type_name(other).to_string(),
    }
}

/// The grid coordinate of a cell-like object, if it has one: table
/// cells key by `(topo, original, util)` — extended with the chaos
/// drop rate when the cell carries one — figure series by `series`,
/// figure points by `x`.
fn coord_key(v: &Json) -> Option<String> {
    let Json::Obj(members) = v else { return None };
    let get = |k: &str| members.iter().find(|(key, _)| key == k).map(|(_, v)| v);
    if let (Some(t), Some(o), Some(u)) = (get("topo"), get("original"), get("util")) {
        let chaos = get("chaos_drop_ppm")
            .map(|d| format!(",chaos_drop_ppm={}", scalar_str(d)))
            .unwrap_or_default();
        return Some(format!(
            "topo={},original={},util={}{chaos}",
            scalar_str(t),
            scalar_str(o),
            scalar_str(u)
        ));
    }
    if let Some(s) = get("series") {
        return Some(format!("series={}", scalar_str(s)));
    }
    if let Some(x) = get("x") {
        return Some(format!("x={}", scalar_str(x)));
    }
    None
}

/// Coordinate keys for an array, if *every* element has one and the
/// keys are unique — otherwise the array is compared positionally.
fn array_keys(items: &[Json]) -> Option<Vec<String>> {
    let keys: Vec<String> = items.iter().map(coord_key).collect::<Option<_>>()?;
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    (sorted.len() == keys.len()).then_some(keys)
}

fn walk(path: &str, old: &Json, new: &Json, opts: &DiffOptions, report: &mut DiffReport) {
    match (old, new) {
        (Json::Null, Json::Null) => {}
        (a, b) if as_number(a).is_some() && as_number(b).is_some() => {
            let (x, y) = (as_number(a).unwrap(), as_number(b).unwrap());
            report.compared += 1;
            if !opts.close(x, y) {
                let denom = x.abs().max(y.abs());
                let rel = if denom > 0.0 {
                    format!(" (rel delta {:.3e})", (x - y).abs() / denom)
                } else {
                    String::new()
                };
                report.note(path, format!("{x} -> {y}{rel}"));
            }
        }
        (Json::Str(a), Json::Str(b)) => {
            if a != b {
                report.note(path, format!("`{a}` -> `{b}`"));
            }
        }
        (Json::Arr(a), Json::Arr(b)) => match (array_keys(a), array_keys(b)) {
            (Some(old_keys), Some(new_keys)) => {
                for (key, item) in old_keys.iter().zip(a) {
                    match new_keys.iter().position(|k| k == key) {
                        Some(j) => walk(&format!("{path}[{key}]"), item, &b[j], opts, report),
                        None => report.note(
                            &format!("{path}[{key}]"),
                            "removed (present only in old)".to_string(),
                        ),
                    }
                }
                for key in &new_keys {
                    if !old_keys.contains(key) {
                        report.note(
                            &format!("{path}[{key}]"),
                            "added (present only in new)".to_string(),
                        );
                    }
                }
            }
            _ => {
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    walk(&format!("{path}[{i}]"), x, y, opts, report);
                }
                for i in b.len()..a.len() {
                    report.note(
                        &format!("{path}[{i}]"),
                        "removed (present only in old)".to_string(),
                    );
                }
                for i in a.len()..b.len() {
                    report.note(
                        &format!("{path}[{i}]"),
                        "added (present only in new)".to_string(),
                    );
                }
            }
        },
        (Json::Obj(a), Json::Obj(b)) => {
            for (key, value) in a {
                match b.iter().find(|(k, _)| k == key) {
                    Some((_, other)) => walk(&format!("{path}.{key}"), value, other, opts, report),
                    None => report.note(
                        &format!("{path}.{key}"),
                        "removed (present only in old)".to_string(),
                    ),
                }
            }
            for (key, _) in b {
                if !a.iter().any(|(k, _)| k == key) {
                    report.note(
                        &format!("{path}.{key}"),
                        "added (present only in new)".to_string(),
                    );
                }
            }
        }
        (a, b) => {
            report.note(path, format!("{} -> {}", type_name(a), type_name(b)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_sweep_with;
    use crate::grid::{Job, SweepSpec};
    use crate::CellMetrics;

    fn artifact(bump_cell1: f64) -> String {
        let spec = SweepSpec::smoke().with_replicates(2);
        run_sweep_with(&spec, "test", 1, |job: &Job| CellMetrics {
            total: 100,
            frac_overdue: 0.25 + if job.cell == 1 { bump_cell1 } else { 0.0 },
            frac_gt_t: 0.125,
            t_us: 12.0,
            max_cp: 1,
            mean_slack_us: 3.5,
            deadline: None,
            chaos: None,
        })
        .to_json()
    }

    #[test]
    fn identical_artifacts_are_clean() {
        let report = diff_artifacts(&artifact(0.0), &artifact(0.0), &DiffOptions::default())
            .expect("parses");
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.compared > 0, "self-diff must compare something");
    }

    #[test]
    fn perturbation_within_tolerance_is_clean() {
        let opts = DiffOptions {
            rel_tol: 1e-2,
            abs_tol: 0.0,
        };
        let report = diff_artifacts(&artifact(0.0), &artifact(1e-4), &opts).expect("parses");
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn regression_is_reported_under_its_coordinate() {
        let report =
            diff_artifacts(&artifact(0.0), &artifact(0.1), &DiffOptions::default()).unwrap();
        assert!(!report.is_clean());
        // Only the perturbed cell's frac_overdue stats moved.
        for d in &report.differences {
            assert!(d.path.contains("util=0.7"), "wrong cell named: {}", d.path);
            assert!(d.path.contains("frac_overdue"), "wrong metric: {}", d.path);
        }
        let rendered = report.render();
        assert!(rendered.contains("original=Random"), "{rendered}");
    }

    #[test]
    fn added_and_removed_cells_are_named() {
        let small = run_sweep_with(&SweepSpec::smoke(), "test", 1, |_: &Job| CellMetrics {
            total: 1,
            frac_overdue: 0.0,
            frac_gt_t: 0.0,
            t_us: 12.0,
            max_cp: 0,
            mean_slack_us: 0.0,
            deadline: None,
            chaos: None,
        });
        let big = run_sweep_with(&SweepSpec::util_grid(), "test", 1, |_: &Job| CellMetrics {
            total: 1,
            frac_overdue: 0.0,
            frac_gt_t: 0.0,
            t_us: 12.0,
            max_cp: 0,
            mean_slack_us: 0.0,
            deadline: None,
            chaos: None,
        });
        let report =
            diff_artifacts(&big.to_json(), &small.to_json(), &DiffOptions::default()).unwrap();
        let removed: Vec<_> = report
            .differences
            .iter()
            .filter(|d| d.detail.contains("removed"))
            .collect();
        // util grid has 0.1/0.5/0.9 cells the smoke grid lacks.
        assert_eq!(removed.len(), 3, "{}", report.render());
        assert!(removed.iter().any(|d| d.path.contains("util=0.1")));
        let reverse =
            diff_artifacts(&small.to_json(), &big.to_json(), &DiffOptions::default()).unwrap();
        assert!(reverse
            .differences
            .iter()
            .any(|d| d.detail.contains("added") && d.path.contains("util=0.9")));
    }

    #[test]
    fn cell_reordering_is_not_a_regression() {
        let a = Json::parse(&artifact(0.0)).unwrap();
        // Reverse the cells array in-place.
        let Json::Obj(mut members) = a.clone() else {
            panic!()
        };
        for (key, value) in &mut members {
            if key == "cells" {
                let Json::Arr(items) = value else { panic!() };
                items.reverse();
            }
        }
        let report = diff(&a, &Json::Obj(members), &DiffOptions::default());
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn figure_points_match_by_x() {
        use crate::engine::run_fig_with;
        use crate::grid::{FigAxis, FigSpec};
        let fig = |bump: f64| {
            let spec = FigSpec::new(
                "f",
                "t",
                vec!["FIFO".into()],
                FigAxis::numeric("ratio", vec![0.5, 1.0]),
            );
            run_fig_with(&spec, "test", 1, |_| crate::DistMetrics {
                scalars: vec![],
                points: vec![0.3, 0.7 + bump],
            })
            .to_json()
        };
        let report = diff_artifacts(&fig(0.0), &fig(0.2), &DiffOptions::default()).unwrap();
        assert_eq!(report.differences.len(), 1, "{}", report.render());
        assert!(report.differences[0].path.contains("[x=1]"));
        assert!(report.differences[0].path.contains("series=FIFO"));
    }

    #[test]
    fn metadata_and_type_changes_are_reported() {
        let report = diff_artifacts(
            "{\"scale\": \"quick\", \"n\": 1}",
            "{\"scale\": \"full\", \"n\": null}",
            &DiffOptions::default(),
        )
        .unwrap();
        assert_eq!(report.differences.len(), 2);
        assert!(report.differences[0].detail.contains("`quick` -> `full`"));
        assert!(report.differences[1].detail.contains("number -> null"));
    }
}
