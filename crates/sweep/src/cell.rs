//! Execution of a single sweep job: record the original schedule, replay
//! it under LSTF, and report the cell's replayability metrics.

use crate::grid::{CellCoord, SimScale};
use ups_core::replay::{record_original, replay_schedule, ReplayMode, ReplayReport};
use ups_core::workload::WorkloadKind;
use ups_core::RecordedSchedule;

/// Per-replicate measurements of one grid cell (the sweep analogue of
/// `ups-bench`'s `ReplayRow`, without the display strings).
#[derive(Debug, Clone, Copy)]
pub struct CellMetrics {
    /// Packets replayed.
    pub total: usize,
    /// Fraction overdue.
    pub frac_overdue: f64,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: f64,
    /// The threshold `T` in microseconds.
    pub t_us: f64,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: usize,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: f64,
}

/// Per-replicate payload of a distribution-style (figure) cell: the
/// distribution evaluated on the grid's shared x-axis, plus named
/// scalar summaries.
///
/// A figure runner reduces whatever it measured — sorted delay-ratio
/// samples, FCT means per size bucket, tail-delay percentiles, Jain
/// indices per time window — to one `y` per [`crate::FigAxis`] x-point,
/// so replicates of the same series aggregate point-wise into mean ±
/// stddev ([`crate::Stat`]) regardless of how many raw samples each
/// replicate drew.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMetrics {
    /// One value per [`crate::FigSpec::scalar_names`] entry.
    pub scalars: Vec<f64>,
    /// One value per [`crate::FigAxis::xs`] point.
    pub points: Vec<f64>,
}

/// The record-and-replay pipeline shared by the sweep engine and
/// `ups-bench`'s `run_replay`: record `coord.sched`'s schedule on a
/// fresh topology (default web workload, 1500-byte MTU), rebuild, and
/// replay under `mode`. Pure in its arguments — same inputs, same
/// outputs — which is what lets the pool run cells in any order.
pub fn record_and_replay(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    mode: ReplayMode,
) -> (ReplayReport, RecordedSchedule) {
    record_and_replay_workload(coord, sim, seed, mode, WorkloadKind::Web)
}

/// [`record_and_replay`] generalized over the workload family — the
/// pipeline the scenario registry runs, where a grid pairs its topology
/// with incast or deadline-mix traffic instead of the default web flows.
pub fn record_and_replay_workload(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    mode: ReplayMode,
    workload: WorkloadKind,
) -> (ReplayReport, RecordedSchedule) {
    let mut orig_topo = coord.topo.build(sim);
    let flows = workload.build(&orig_topo, coord.util, sim.horizon, seed);
    let schedule = record_original(&mut orig_topo, &flows, coord.sched, seed, 1500);
    drop(orig_topo);
    let mut replay_topo = coord.topo.build(sim);
    let report = replay_schedule(&mut replay_topo, &schedule, mode);
    (report, schedule)
}

impl CellMetrics {
    /// The canonical reduction of a replay run to cell metrics — the
    /// single home of the unit conversions (T in µs, slack ps → µs),
    /// shared by the sweep engine and `ups-bench`'s row builders.
    pub fn of(report: &ReplayReport, schedule: &RecordedSchedule) -> CellMetrics {
        CellMetrics {
            total: report.total,
            frac_overdue: report.frac_overdue(),
            frac_gt_t: report.frac_overdue_gt_t(),
            t_us: report.t.as_micros_f64(),
            max_cp: schedule.max_congestion_points(),
            mean_slack_us: schedule.mean_slack() / 1e6,
        }
    }
}

/// Run one sweep job: [`record_and_replay`] under (non-preemptive)
/// LSTF, reduced to the cell's replayability metrics.
pub fn run_cell(coord: &CellCoord, sim: &SimScale, seed: u64) -> CellMetrics {
    let (report, schedule) = record_and_replay(coord, sim, seed, ReplayMode::lstf());
    CellMetrics::of(&report, &schedule)
}

/// [`run_cell`] with an explicit workload family — the job runner
/// behind [`crate::scenario::Scenario::run`].
pub fn run_cell_workload(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    workload: WorkloadKind,
) -> CellMetrics {
    let (report, schedule) =
        record_and_replay_workload(coord, sim, seed, ReplayMode::lstf(), workload);
    CellMetrics::of(&report, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::TopoKind;
    use ups_sched::SchedKind;
    use ups_sim::Dur;
    use ups_topo::internet2::I2Variant;

    fn tiny() -> SimScale {
        SimScale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            label: "tiny",
        }
    }

    #[test]
    fn run_cell_is_deterministic_in_seed() {
        let coord = CellCoord {
            topo: TopoKind::I2(I2Variant::Default1g10g),
            sched: SchedKind::Random,
            util: 0.5,
        };
        let a = run_cell(&coord, &tiny(), 7);
        let b = run_cell(&coord, &tiny(), 7);
        assert!(a.total > 0);
        assert_eq!(a.total, b.total);
        assert_eq!(a.frac_overdue, b.frac_overdue);
        assert_eq!(a.mean_slack_us, b.mean_slack_us);
        // A different seed draws a different workload.
        let c = run_cell(&coord, &tiny(), 8);
        assert_ne!(a.total, c.total);
    }
}
