//! Execution of a single sweep job: record the original schedule, replay
//! it under a candidate UPS, and report the cell's replayability metrics.
//! Two pipelines share this machinery ([`CellPipeline`]): the classic
//! record-under-`coord.sched` / replay-under-LSTF leg, and the deadline
//! leg that records EDF on virtual deadlines and replays under the
//! candidate named by `coord.sched`.

use crate::grid::{CellCoord, SimScale};
use ups_core::deadline::{
    deadline_flow_stats, record_deadline_original, replay_deadline, replay_deadline_lossy,
    DeadlineMode,
};
use ups_core::replay::{
    record_original, replay_schedule, replay_schedule_lossy, ReplayMode, ReplayReport,
};
use ups_core::workload::WorkloadKind;
use ups_core::RecordedSchedule;
use ups_net::Telemetry;
use ups_obs::NetSeries;
use ups_sim::Time;
use ups_transport::FlowDesc;

/// Per-replicate measurements of one grid cell (the sweep analogue of
/// `ups-bench`'s `ReplayRow`, without the display strings).
#[derive(Debug, Clone, Copy)]
pub struct CellMetrics {
    /// Packets replayed.
    pub total: usize,
    /// Fraction overdue.
    pub frac_overdue: f64,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: f64,
    /// The threshold `T` in microseconds.
    pub t_us: f64,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: usize,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: f64,
    /// Deadline outcomes of the replay, present only when the workload
    /// tagged at least one flow with a completion deadline (so cells of
    /// deadline-free workloads serialize exactly as before).
    pub deadline: Option<DeadlineCell>,
    /// Chaos outcomes of the replay, present only when the cell's
    /// [`crate::ChaosSpec`] is enabled (so clean cells serialize exactly
    /// as before the chaos layer existed).
    pub chaos: Option<ChaosCell>,
}

/// Chaos outcomes of one replicate's replay under the cell's
/// [`crate::ChaosSpec`]: how faithful the perturbed replay stayed, and
/// what the perturbation actually did to the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosCell {
    /// Fraction of recorded packets delivered no later than the
    /// original schedule ([`ReplayReport::fidelity`]).
    pub fidelity: f64,
    /// Fraction of recorded packets lost to the perturbation.
    pub frac_lost: f64,
    /// Packets the chaos layer destroyed (wire drops + failure and jam
    /// kills), summed over every link.
    pub chaos_drops: u64,
    /// Total time links spent down or jammed (µs), summed over links.
    pub outage_us: f64,
}

/// Deadline outcomes of one replicate's replay, computed through
/// [`ups_metrics::DeadlineLedger`] from the workload's `FlowClass`
/// deadlines and the replay's delivery telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineCell {
    /// Deadline-tagged flows in the workload.
    pub tagged: u64,
    /// Tagged flows that finished late or never finished.
    pub missed: u64,
    /// `missed / tagged` (0 when nothing was tagged).
    pub miss_rate: f64,
    /// Mean lateness (µs) over late completions.
    pub mean_lateness_us: f64,
    /// 99th-percentile lateness (µs, log2-bucket upper bound).
    pub p99_lateness_us: f64,
}

/// Per-replicate payload of a distribution-style (figure) cell: the
/// distribution evaluated on the grid's shared x-axis, plus named
/// scalar summaries.
///
/// A figure runner reduces whatever it measured — sorted delay-ratio
/// samples, FCT means per size bucket, tail-delay percentiles, Jain
/// indices per time window — to one `y` per [`crate::FigAxis`] x-point,
/// so replicates of the same series aggregate point-wise into mean ±
/// stddev ([`crate::Stat`]) regardless of how many raw samples each
/// replicate drew.
#[derive(Debug, Clone, PartialEq)]
pub struct DistMetrics {
    /// One value per [`crate::FigSpec::scalar_names`] entry.
    pub scalars: Vec<f64>,
    /// One value per [`crate::FigAxis::xs`] point.
    pub points: Vec<f64>,
}

/// The record-and-replay pipeline shared by the sweep engine and
/// `ups-bench`'s `run_replay`: record `coord.sched`'s schedule on a
/// fresh topology (default web workload, 1500-byte MTU), rebuild, and
/// replay under `mode`. Pure in its arguments — same inputs, same
/// outputs — which is what lets the pool run cells in any order.
pub fn record_and_replay(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    mode: ReplayMode,
) -> (ReplayReport, RecordedSchedule) {
    record_and_replay_workload(coord, sim, seed, mode, WorkloadKind::Web)
}

/// [`record_and_replay`] generalized over the workload family — the
/// pipeline the scenario registry runs, where a grid pairs its topology
/// with incast or deadline-mix traffic instead of the default web flows.
pub fn record_and_replay_workload(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    mode: ReplayMode,
    workload: WorkloadKind,
) -> (ReplayReport, RecordedSchedule) {
    let run = record_and_replay_observed(coord, sim, seed, mode, workload);
    (run.report, run.schedule)
}

/// Everything one observed replicate produced: the replay score, the
/// recorded schedule, deadline outcomes (when the workload tagged
/// flows), and — when process-wide sampling is enabled
/// ([`ups_obs::set_sample_interval`]) — the time series sampled during
/// the *original* (record) run, where `coord.sched` actually shapes the
/// queues. The replay leg is always LSTF-family, so its series would
/// not vary with the cell's scheduler coordinate.
#[derive(Debug)]
pub struct ObservedRun {
    /// Replay score.
    pub report: ReplayReport,
    /// The recorded original schedule.
    pub schedule: RecordedSchedule,
    /// Deadline outcomes, when the workload tagged flows.
    pub deadline: Option<DeadlineCell>,
    /// Chaos outcomes, when the cell's spec enables perturbation.
    pub chaos: Option<ChaosCell>,
    /// Queue/utilization time series of the record run, when sampling.
    pub series: Option<NetSeries>,
}

/// [`record_and_replay_workload`] with observability harvested: the
/// record-run sampler series is taken before the topology drops, and
/// the replay's delivery telemetry is reduced to deadline outcomes.
/// Strictly read-only over both runs — the report and schedule are
/// bit-identical to the unobserved pipeline's.
pub fn record_and_replay_observed(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    mode: ReplayMode,
    workload: WorkloadKind,
) -> ObservedRun {
    let mut orig_topo = coord.topo.build(sim);
    let flows = workload.build(&orig_topo, coord.util, sim.horizon, seed);
    let schedule = record_original(&mut orig_topo, &flows, coord.sched, seed, 1500);
    let series = orig_topo.net.take_series();
    drop(orig_topo);
    // The record leg always runs clean — chaos perturbs the *replay*
    // only, so the degradation curve measures how the recorded schedule
    // survives an unreliable network, not a different schedule.
    let mut replay_topo = coord.topo.build(sim);
    let (report, chaos) = match coord.chaos.to_policy() {
        None => (replay_schedule(&mut replay_topo, &schedule, mode), None),
        Some(policy) => {
            // Windows are precomputed to a horizon; replay drains past
            // the arrival horizon, so leave generous headroom.
            let chaos_horizon = Time::ZERO + sim.horizon * 8;
            replay_topo
                .net
                .install_chaos(chaos_horizon, |_| Some(policy.clone()));
            let report = replay_schedule_lossy(&mut replay_topo, &schedule, mode);
            let totals = replay_topo.net.chaos_totals();
            let cell = ChaosCell {
                fidelity: report.fidelity(),
                frac_lost: report.frac_lost(),
                chaos_drops: totals.drops,
                outage_us: totals.outage.as_micros_f64(),
            };
            (report, Some(cell))
        }
    };
    let deadline = deadline_cell(&flows, &replay_topo.net.telemetry);
    ObservedRun {
        report,
        schedule,
        deadline,
        chaos,
        series,
    }
}

/// Reduce a run's delivery telemetry to deadline outcomes. `None` when
/// the workload tagged no flows — which is what keeps deadline-free
/// artifacts (every committed baseline) byte-identical to before.
/// The flow-completion bookkeeping itself lives in
/// [`ups_core::deadline::deadline_flow_stats`].
fn deadline_cell(flows: &[FlowDesc], telemetry: &Telemetry) -> Option<DeadlineCell> {
    deadline_flow_stats(flows, telemetry).map(|stats| DeadlineCell {
        tagged: stats.tagged,
        missed: stats.missed,
        miss_rate: stats.miss_rate(),
        mean_lateness_us: stats.mean_lateness_us,
        p99_lateness_us: stats.p99_lateness_us,
    })
}

impl CellMetrics {
    /// The canonical reduction of a replay run to cell metrics — the
    /// single home of the unit conversions (T in µs, slack ps → µs),
    /// shared by the sweep engine and `ups-bench`'s row builders.
    pub fn of(report: &ReplayReport, schedule: &RecordedSchedule) -> CellMetrics {
        CellMetrics {
            total: report.total,
            frac_overdue: report.frac_overdue(),
            frac_gt_t: report.frac_overdue_gt_t(),
            t_us: report.t.as_micros_f64(),
            max_cp: schedule.max_congestion_points(),
            mean_slack_us: schedule.mean_slack() / 1e6,
            deadline: None,
            chaos: None,
        }
    }
}

/// Run one sweep job: [`record_and_replay`] under (non-preemptive)
/// LSTF, reduced to the cell's replayability metrics.
pub fn run_cell(coord: &CellCoord, sim: &SimScale, seed: u64) -> CellMetrics {
    let (report, schedule) = record_and_replay(coord, sim, seed, ReplayMode::lstf());
    CellMetrics::of(&report, &schedule)
}

/// [`run_cell`] with an explicit workload family — the job runner
/// behind [`crate::scenario::Scenario::run`].
pub fn run_cell_workload(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    workload: WorkloadKind,
) -> CellMetrics {
    CellPipeline::Replay.cell(coord, sim, seed, workload)
}

/// Which record-and-replay leg a scenario's cells run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPipeline {
    /// The classic leg: record under the cell's `sched` coordinate (the
    /// original scheduler), replay under non-preemptive LSTF with
    /// `o(p)`-derived slack.
    Replay,
    /// The deadline leg: record under network-wide EDF on per-packet
    /// virtual deadlines, replay under the candidate the cell's `sched`
    /// coordinate names (EDF / LSTF-with-deadline-slack / Priority) —
    /// the coordinate is the *replay* scheduler here, and the artifact's
    /// `original` column carries its label.
    DeadlineReplay,
}

impl CellPipeline {
    /// Run one observed replicate through this pipeline.
    pub fn observed(
        self,
        coord: &CellCoord,
        sim: &SimScale,
        seed: u64,
        workload: WorkloadKind,
    ) -> ObservedRun {
        match self {
            CellPipeline::Replay => {
                record_and_replay_observed(coord, sim, seed, ReplayMode::lstf(), workload)
            }
            CellPipeline::DeadlineReplay => {
                record_and_replay_deadline_observed(coord, sim, seed, workload)
            }
        }
    }

    /// Run one replicate and reduce it to the cell's metrics.
    pub fn cell(
        self,
        coord: &CellCoord,
        sim: &SimScale,
        seed: u64,
        workload: WorkloadKind,
    ) -> CellMetrics {
        let run = self.observed(coord, sim, seed, workload);
        let mut metrics = CellMetrics::of(&run.report, &run.schedule);
        metrics.deadline = run.deadline;
        metrics.chaos = run.chaos;
        metrics
    }
}

/// The deadline pipeline's observed replicate: record EDF on virtual
/// deadlines (clean — chaos perturbs the replay leg only, like the
/// classic pipeline), rebuild, replay under the candidate named by
/// `coord.sched`, and reduce the replay's delivery telemetry to
/// per-flow deadline outcomes.
pub fn record_and_replay_deadline_observed(
    coord: &CellCoord,
    sim: &SimScale,
    seed: u64,
    workload: WorkloadKind,
) -> ObservedRun {
    let mode = DeadlineMode::from_sched(coord.sched).unwrap_or_else(|| {
        panic!(
            "deadline-replay cells take EDF/LSTF/Priority sched coordinates, got {}",
            coord.sched.label()
        )
    });
    let mut orig_topo = coord.topo.build(sim);
    let flows = workload.build(&orig_topo, coord.util, sim.horizon, seed);
    let ds = record_deadline_original(&mut orig_topo, &flows, 1500);
    let series = orig_topo.net.take_series();
    drop(orig_topo);
    let mut replay_topo = coord.topo.build(sim);
    let (report, chaos) = match coord.chaos.to_policy() {
        None => (replay_deadline(&mut replay_topo, &ds, mode), None),
        Some(policy) => {
            let chaos_horizon = Time::ZERO + sim.horizon * 8;
            replay_topo
                .net
                .install_chaos(chaos_horizon, |_| Some(policy.clone()));
            let report = replay_deadline_lossy(&mut replay_topo, &ds, mode);
            let totals = replay_topo.net.chaos_totals();
            let cell = ChaosCell {
                fidelity: report.fidelity(),
                frac_lost: report.frac_lost(),
                chaos_drops: totals.drops,
                outage_us: totals.outage.as_micros_f64(),
            };
            (report, Some(cell))
        }
    };
    let deadline = deadline_cell(&flows, &replay_topo.net.telemetry);
    ObservedRun {
        report,
        schedule: ds.schedule,
        deadline,
        chaos,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{ChaosSpec, TopoKind};
    use ups_sched::SchedKind;
    use ups_sim::Dur;
    use ups_topo::internet2::I2Variant;

    fn tiny() -> SimScale {
        SimScale {
            edges_per_core: 2,
            horizon: Dur::from_millis(2),
            fattree_k: 4,
            label: "tiny",
        }
    }

    #[test]
    fn run_cell_is_deterministic_in_seed() {
        let coord = CellCoord {
            topo: TopoKind::I2(I2Variant::Default1g10g),
            sched: SchedKind::Random,
            util: 0.5,
            chaos: ChaosSpec::OFF,
        };
        let a = run_cell(&coord, &tiny(), 7);
        let b = run_cell(&coord, &tiny(), 7);
        assert!(a.total > 0);
        assert_eq!(a.total, b.total);
        assert_eq!(a.frac_overdue, b.frac_overdue);
        assert_eq!(a.mean_slack_us, b.mean_slack_us);
        assert!(a.chaos.is_none());
        // A different seed draws a different workload.
        let c = run_cell(&coord, &tiny(), 8);
        assert_ne!(a.total, c.total);
    }

    #[test]
    fn chaos_cell_reports_losses_and_leaves_clean_cells_alone() {
        let clean = CellCoord {
            topo: TopoKind::I2(I2Variant::Default1g10g),
            sched: SchedKind::Random,
            util: 0.5,
            chaos: ChaosSpec::OFF,
        };
        let lossy = CellCoord {
            chaos: ChaosSpec::drop(50_000), // 5% — heavy, so losses show
            ..clean
        };
        let a = run_cell_workload(&clean, &tiny(), 7, WorkloadKind::Web);
        let b = run_cell_workload(&lossy, &tiny(), 7, WorkloadKind::Web);
        // Chaos perturbs only the replay leg: the recorded schedule (and
        // thus the packet population) is identical across drop rates.
        assert_eq!(a.total, b.total);
        assert_eq!(a.mean_slack_us, b.mean_slack_us);
        let chaos = b.chaos.expect("lossy cell reports chaos outcomes");
        assert!(chaos.chaos_drops > 0);
        assert!(chaos.frac_lost > 0.0);
        assert!(chaos.fidelity < 1.0);
        // Deterministic for a fixed seed.
        let b2 = run_cell_workload(&lossy, &tiny(), 7, WorkloadKind::Web);
        assert_eq!(b.chaos, b2.chaos);
    }
}
