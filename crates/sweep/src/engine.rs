//! The sweep engine: expand a spec into jobs, execute them on the
//! worker pool, and aggregate replicates into per-cell statistics —
//! scalar Table-1 cells ([`run_sweep_with`]) and distribution-payload
//! figure cells ([`run_fig_with`]) alike.

use crate::cell::{run_cell, CellMetrics, DistMetrics};
use crate::grid::{CellCoord, FigAxis, FigJob, FigSpec, Job, SimScale, SweepSpec};
use crate::pool::run_indexed;
use ups_metrics::Welford;

/// Mean ± spread of one metric over a cell's seed replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub stddev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
}

impl Stat {
    /// Aggregate samples into mean/stddev/stderr (Welford).
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Stat {
        let mut w = Welford::new();
        for x in samples {
            w.push(x);
        }
        Stat {
            mean: w.mean(),
            stddev: w.stddev(),
            stderr: w.stderr(),
        }
    }
}

/// One grid cell's aggregate over its seed replicates.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The grid coordinate.
    pub coord: CellCoord,
    /// Number of seed replicates aggregated.
    pub replicates: usize,
    /// Packets replayed.
    pub total: Stat,
    /// Fraction overdue.
    pub frac_overdue: Stat,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: Stat,
    /// The threshold `T` in microseconds.
    pub t_us: Stat,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: Stat,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: Stat,
    /// Deadline outcomes, aggregated when every replicate reported them
    /// (i.e. the workload tags flows with completion deadlines).
    pub deadline: Option<DeadlineAgg>,
    /// Chaos outcomes, aggregated when every replicate reported them
    /// (i.e. the cell's [`crate::ChaosSpec`] is enabled).
    pub chaos: Option<ChaosAgg>,
}

/// Per-cell aggregate of the replicates' deadline outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineAgg {
    /// Deadline-tagged flows.
    pub tagged: Stat,
    /// Fraction of tagged flows that finished late or never finished.
    pub miss_rate: Stat,
    /// Mean lateness (µs) over late completions.
    pub mean_lateness_us: Stat,
    /// 99th-percentile lateness (µs, log2-bucket upper bound).
    pub p99_lateness_us: Stat,
}

/// Per-cell aggregate of the replicates' chaos outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosAgg {
    /// Replay fidelity (delivered on time / recorded).
    pub fidelity: Stat,
    /// Fraction of recorded packets lost to the perturbation.
    pub frac_lost: Stat,
    /// Packets destroyed by the chaos layer, summed over links.
    pub chaos_drops: Stat,
    /// Total link down/jam time (µs), summed over links.
    pub outage_us: Stat,
}

/// A completed sweep: spec metadata plus one [`SweepResult`] per cell,
/// in the spec's cell order. Contains no timing or worker-count
/// information, so serializations are byte-identical across `--jobs N`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Grid name (artifact file stem).
    pub name: String,
    /// Scale label the sweep ran at (`quick`, `full`, ...).
    pub scale: String,
    /// Seed of replicate 0.
    pub base_seed: u64,
    /// Replicates per cell.
    pub replicates: usize,
    /// Per-cell aggregates, in spec order.
    pub results: Vec<SweepResult>,
}

/// Run `spec` with a caller-supplied job runner on up to `jobs` worker
/// threads. The runner must be pure in the job (same job, same metrics)
/// for the determinism guarantee to hold.
pub fn run_sweep_with<F>(spec: &SweepSpec, scale: &str, jobs: usize, runner: F) -> SweepReport
where
    F: Fn(&Job) -> CellMetrics + Sync,
{
    // The field is pub, so guard against a hand-built spec with
    // replicates 0 (chunks() would panic opaquely below).
    let clamped;
    let spec = if spec.replicates == 0 {
        clamped = spec.clone().with_replicates(1);
        &clamped
    } else {
        spec
    };
    let expanded = spec.jobs();
    let measured = run_indexed(&expanded, jobs, |_, job| runner(job));
    aggregate_cells(spec, scale, &measured)
}

/// Aggregate per-replicate metrics (in job order: cell-major,
/// replicate-minor, `spec.replicates` per cell) into the per-cell
/// report. Shared by [`run_sweep_with`] and the telemetry sweep, which
/// measures series alongside the metrics.
pub(crate) fn aggregate_cells(
    spec: &SweepSpec,
    scale: &str,
    measured: &[CellMetrics],
) -> SweepReport {
    let results = spec
        .cells
        .iter()
        .zip(measured.chunks(spec.replicates.max(1)))
        .map(|(&coord, reps)| SweepResult {
            coord,
            replicates: reps.len(),
            total: Stat::of(reps.iter().map(|m| m.total as f64)),
            frac_overdue: Stat::of(reps.iter().map(|m| m.frac_overdue)),
            frac_gt_t: Stat::of(reps.iter().map(|m| m.frac_gt_t)),
            t_us: Stat::of(reps.iter().map(|m| m.t_us)),
            max_cp: Stat::of(reps.iter().map(|m| m.max_cp as f64)),
            mean_slack_us: Stat::of(reps.iter().map(|m| m.mean_slack_us)),
            deadline: reps
                .iter()
                .map(|m| m.deadline)
                .collect::<Option<Vec<_>>>()
                .map(|ds| DeadlineAgg {
                    tagged: Stat::of(ds.iter().map(|d| d.tagged as f64)),
                    miss_rate: Stat::of(ds.iter().map(|d| d.miss_rate)),
                    mean_lateness_us: Stat::of(ds.iter().map(|d| d.mean_lateness_us)),
                    p99_lateness_us: Stat::of(ds.iter().map(|d| d.p99_lateness_us)),
                }),
            chaos: reps
                .iter()
                .map(|m| m.chaos)
                .collect::<Option<Vec<_>>>()
                .map(|cs| ChaosAgg {
                    fidelity: Stat::of(cs.iter().map(|c| c.fidelity)),
                    frac_lost: Stat::of(cs.iter().map(|c| c.frac_lost)),
                    chaos_drops: Stat::of(cs.iter().map(|c| c.chaos_drops as f64)),
                    outage_us: Stat::of(cs.iter().map(|c| c.outage_us)),
                }),
        })
        .collect();
    SweepReport {
        name: spec.name.clone(),
        scale: scale.to_string(),
        base_seed: spec.base_seed,
        replicates: spec.replicates,
        results,
    }
}

/// Run `spec`'s record-and-replay cells at `sim` scale on up to `jobs`
/// worker threads. The aggregate report is byte-identical for any
/// `jobs` value.
pub fn run_sweep(spec: &SweepSpec, sim: &SimScale, jobs: usize) -> SweepReport {
    run_sweep_with(spec, sim.label, jobs, |job| {
        run_cell(&job.coord, sim, job.seed)
    })
}

/// One figure series' aggregate over its seed replicates: per-scalar
/// and per-x-point mean ± stddev/stderr.
#[derive(Debug, Clone)]
pub struct DistResult {
    /// Series label (the grid coordinate of a figure cell).
    pub series: String,
    /// Number of seed replicates aggregated.
    pub replicates: usize,
    /// Scalar summaries, parallel to [`FigReport::scalar_names`].
    pub scalars: Vec<Stat>,
    /// Plotted points, parallel to the axis' `xs`.
    pub points: Vec<Stat>,
}

/// A completed figure sweep: spec metadata, the shared x-axis, and one
/// [`DistResult`] per series, in spec order. Like [`SweepReport`], it
/// carries no timing or worker-count information, so serializations are
/// byte-identical across `--jobs N`.
#[derive(Debug, Clone)]
pub struct FigReport {
    /// Grid name (artifact file stem).
    pub name: String,
    /// Human title for report headers.
    pub title: String,
    /// Scale label the sweep ran at (`quick`, `full`, ...).
    pub scale: String,
    /// Seed of replicate 0.
    pub base_seed: u64,
    /// Replicates per series.
    pub replicates: usize,
    /// The shared x-axis.
    pub axis: FigAxis,
    /// Names of the scalar summaries.
    pub scalar_names: Vec<String>,
    /// Per-series aggregates, in spec order.
    pub results: Vec<DistResult>,
}

/// Run a figure grid with a caller-supplied job runner on up to `jobs`
/// worker threads, aggregating each series' replicates point-wise.
///
/// The runner must be pure in the job (same job, same payload) for the
/// determinism guarantee to hold, and every payload it returns must
/// have `spec.axis.xs.len()` points and `spec.scalar_names.len()`
/// scalars (checked — a mismatched payload is a programming error that
/// would silently misalign the artifact otherwise).
pub fn run_fig_with<F>(spec: &FigSpec, scale: &str, jobs: usize, runner: F) -> FigReport
where
    F: Fn(&FigJob) -> DistMetrics + Sync,
{
    let clamped;
    let spec = if spec.replicates == 0 {
        clamped = spec.clone().with_replicates(1);
        &clamped
    } else {
        spec
    };
    if let Some(labels) = &spec.axis.labels {
        assert_eq!(
            labels.len(),
            spec.axis.xs.len(),
            "axis labels must parallel xs"
        );
    }
    let expanded = spec.jobs();
    let measured = run_indexed(&expanded, jobs, |_, job| {
        let m = runner(job);
        assert_eq!(
            m.points.len(),
            spec.axis.xs.len(),
            "series `{}` replicate {}: payload has {} points for a {}-point axis",
            spec.series[job.series],
            job.replicate,
            m.points.len(),
            spec.axis.xs.len()
        );
        assert_eq!(
            m.scalars.len(),
            spec.scalar_names.len(),
            "series `{}` replicate {}: payload has {} scalars for {} names",
            spec.series[job.series],
            job.replicate,
            m.scalars.len(),
            spec.scalar_names.len()
        );
        m
    });
    let results = spec
        .series
        .iter()
        .zip(measured.chunks(spec.replicates))
        .map(|(series, reps)| DistResult {
            series: series.clone(),
            replicates: reps.len(),
            scalars: (0..spec.scalar_names.len())
                .map(|i| Stat::of(reps.iter().map(|m| m.scalars[i])))
                .collect(),
            points: (0..spec.axis.xs.len())
                .map(|i| Stat::of(reps.iter().map(|m| m.points[i])))
                .collect(),
        })
        .collect();
    FigReport {
        name: spec.name.clone(),
        title: spec.title.clone(),
        scale: scale.to_string(),
        base_seed: spec.base_seed,
        replicates: spec.replicates,
        axis: spec.axis.clone(),
        scalar_names: spec.scalar_names.clone(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast synthetic runner: metrics derived arithmetically from the
    /// grid coordinates, so engine behavior is testable without the
    /// simulator.
    fn synthetic(job: &Job) -> CellMetrics {
        CellMetrics {
            total: 100 + job.seed as usize,
            frac_overdue: job.coord.util / 2.0 + job.replicate as f64 * 0.01,
            frac_gt_t: job.coord.util / 4.0,
            t_us: 12.0,
            max_cp: job.cell,
            mean_slack_us: 1.0,
            deadline: None,
            chaos: None,
        }
    }

    #[test]
    fn aggregates_replicates_per_cell() {
        let spec = SweepSpec::smoke().with_replicates(3).with_seed(5);
        let report = run_sweep_with(&spec, "test", 2, synthetic);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.replicates, 3);
        let r = &report.results[0];
        assert_eq!(r.replicates, 3);
        // Seeds 5, 6, 7 → totals 105, 106, 107 → mean 106, stddev 1.
        assert_eq!(r.total.mean, 106.0);
        assert!((r.total.stddev - 1.0).abs() < 1e-12);
        // Constant across replicates → zero spread.
        assert_eq!(r.t_us.mean, 12.0);
        assert_eq!(r.t_us.stddev, 0.0);
    }

    #[test]
    fn report_is_identical_for_any_worker_count() {
        let spec = SweepSpec::table1().with_replicates(2);
        let a = run_sweep_with(&spec, "test", 1, synthetic);
        let b = run_sweep_with(&spec, "test", 8, synthetic);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.frac_overdue, y.frac_overdue);
            assert_eq!(x.total, y.total);
            assert_eq!(x.max_cp, y.max_cp);
        }
    }

    #[test]
    fn hand_built_zero_replicates_is_clamped() {
        let mut spec = SweepSpec::smoke();
        spec.replicates = 0; // bypasses the with_replicates clamp
        let report = run_sweep_with(&spec, "test", 1, synthetic);
        assert_eq!(report.replicates, 1);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].replicates, 1);
    }

    fn fig_spec() -> FigSpec {
        FigSpec::new(
            "figtest",
            "Fig test",
            vec!["a".into(), "b".into()],
            FigAxis::numeric("x", vec![0.0, 1.0, 2.0]),
        )
        .with_scalars(&["median"])
    }

    /// Synthetic figure runner: y = series + x·replicate-offset so both
    /// the per-point mean and the spread are predictable.
    fn synthetic_fig(job: &FigJob) -> DistMetrics {
        DistMetrics {
            scalars: vec![10.0 * job.series as f64 + job.seed as f64],
            points: (0..3)
                .map(|x| job.series as f64 + x as f64 * job.replicate as f64)
                .collect(),
        }
    }

    #[test]
    fn fig_engine_aggregates_points_per_series() {
        let spec = fig_spec().with_replicates(2).with_seed(5);
        let report = run_fig_with(&spec, "test", 2, synthetic_fig);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.axis.xs.len(), 3);
        let a = &report.results[0];
        assert_eq!(a.replicates, 2);
        // Series 0, x=2: replicates give 0 and 2 → mean 1, stddev √2.
        assert_eq!(a.points[2].mean, 1.0);
        assert!((a.points[2].stddev - 2f64.sqrt()).abs() < 1e-12);
        // Scalars: seeds 5, 6 → mean 5.5.
        assert_eq!(a.scalars[0].mean, 5.5);
        // x=0 is constant across replicates → zero spread.
        assert_eq!(a.points[0].stddev, 0.0);
    }

    #[test]
    fn fig_report_is_identical_for_any_worker_count() {
        let spec = fig_spec().with_replicates(3);
        let a = run_fig_with(&spec, "test", 1, synthetic_fig);
        let b = run_fig_with(&spec, "test", 8, synthetic_fig);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.series, y.series);
            assert_eq!(x.points, y.points);
            assert_eq!(x.scalars, y.scalars);
        }
    }

    #[test]
    #[should_panic(expected = "points")]
    fn fig_engine_rejects_misaligned_payload() {
        let spec = fig_spec();
        run_fig_with(&spec, "test", 1, |_| DistMetrics {
            scalars: vec![0.0],
            points: vec![1.0], // axis has 3 points
        });
    }

    #[test]
    fn single_replicate_has_zero_spread() {
        let spec = SweepSpec::smoke();
        let report = run_sweep_with(&spec, "test", 4, synthetic);
        for r in &report.results {
            assert_eq!(r.replicates, 1);
            assert_eq!(r.frac_overdue.stddev, 0.0);
            assert_eq!(r.frac_overdue.stderr, 0.0);
        }
    }
}
