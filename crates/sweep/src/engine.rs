//! The sweep engine: expand a spec into jobs, execute them on the
//! worker pool, and aggregate replicates into per-cell statistics.

use crate::cell::{run_cell, CellMetrics};
use crate::grid::{CellCoord, Job, SimScale, SweepSpec};
use crate::pool::run_indexed;
use ups_metrics::Welford;

/// Mean ± spread of one metric over a cell's seed replicates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub stddev: f64,
    /// Standard error of the mean.
    pub stderr: f64,
}

impl Stat {
    fn of(samples: impl IntoIterator<Item = f64>) -> Stat {
        let mut w = Welford::new();
        for x in samples {
            w.push(x);
        }
        Stat {
            mean: w.mean(),
            stddev: w.stddev(),
            stderr: w.stderr(),
        }
    }
}

/// One grid cell's aggregate over its seed replicates.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The grid coordinate.
    pub coord: CellCoord,
    /// Number of seed replicates aggregated.
    pub replicates: usize,
    /// Packets replayed.
    pub total: Stat,
    /// Fraction overdue.
    pub frac_overdue: Stat,
    /// Fraction overdue by more than `T`.
    pub frac_gt_t: Stat,
    /// The threshold `T` in microseconds.
    pub t_us: Stat,
    /// Largest congestion-point count in the original schedule.
    pub max_cp: Stat,
    /// Mean slack (µs) in the original schedule.
    pub mean_slack_us: Stat,
}

/// A completed sweep: spec metadata plus one [`SweepResult`] per cell,
/// in the spec's cell order. Contains no timing or worker-count
/// information, so serializations are byte-identical across `--jobs N`.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Grid name (artifact file stem).
    pub name: String,
    /// Scale label the sweep ran at (`quick`, `full`, ...).
    pub scale: String,
    /// Seed of replicate 0.
    pub base_seed: u64,
    /// Replicates per cell.
    pub replicates: usize,
    /// Per-cell aggregates, in spec order.
    pub results: Vec<SweepResult>,
}

/// Run `spec` with a caller-supplied job runner on up to `jobs` worker
/// threads. The runner must be pure in the job (same job, same metrics)
/// for the determinism guarantee to hold.
pub fn run_sweep_with<F>(spec: &SweepSpec, scale: &str, jobs: usize, runner: F) -> SweepReport
where
    F: Fn(&Job) -> CellMetrics + Sync,
{
    // The field is pub, so guard against a hand-built spec with
    // replicates 0 (chunks() would panic opaquely below).
    let clamped;
    let spec = if spec.replicates == 0 {
        clamped = spec.clone().with_replicates(1);
        &clamped
    } else {
        spec
    };
    let expanded = spec.jobs();
    let measured = run_indexed(&expanded, jobs, |_, job| runner(job));
    let results = spec
        .cells
        .iter()
        .zip(measured.chunks(spec.replicates))
        .map(|(&coord, reps)| SweepResult {
            coord,
            replicates: reps.len(),
            total: Stat::of(reps.iter().map(|m| m.total as f64)),
            frac_overdue: Stat::of(reps.iter().map(|m| m.frac_overdue)),
            frac_gt_t: Stat::of(reps.iter().map(|m| m.frac_gt_t)),
            t_us: Stat::of(reps.iter().map(|m| m.t_us)),
            max_cp: Stat::of(reps.iter().map(|m| m.max_cp as f64)),
            mean_slack_us: Stat::of(reps.iter().map(|m| m.mean_slack_us)),
        })
        .collect();
    SweepReport {
        name: spec.name.clone(),
        scale: scale.to_string(),
        base_seed: spec.base_seed,
        replicates: spec.replicates,
        results,
    }
}

/// Run `spec`'s record-and-replay cells at `sim` scale on up to `jobs`
/// worker threads. The aggregate report is byte-identical for any
/// `jobs` value.
pub fn run_sweep(spec: &SweepSpec, sim: &SimScale, jobs: usize) -> SweepReport {
    run_sweep_with(spec, sim.label, jobs, |job| {
        run_cell(&job.coord, sim, job.seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast synthetic runner: metrics derived arithmetically from the
    /// grid coordinates, so engine behavior is testable without the
    /// simulator.
    fn synthetic(job: &Job) -> CellMetrics {
        CellMetrics {
            total: 100 + job.seed as usize,
            frac_overdue: job.coord.util / 2.0 + job.replicate as f64 * 0.01,
            frac_gt_t: job.coord.util / 4.0,
            t_us: 12.0,
            max_cp: job.cell,
            mean_slack_us: 1.0,
        }
    }

    #[test]
    fn aggregates_replicates_per_cell() {
        let spec = SweepSpec::smoke().with_replicates(3).with_seed(5);
        let report = run_sweep_with(&spec, "test", 2, synthetic);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.replicates, 3);
        let r = &report.results[0];
        assert_eq!(r.replicates, 3);
        // Seeds 5, 6, 7 → totals 105, 106, 107 → mean 106, stddev 1.
        assert_eq!(r.total.mean, 106.0);
        assert!((r.total.stddev - 1.0).abs() < 1e-12);
        // Constant across replicates → zero spread.
        assert_eq!(r.t_us.mean, 12.0);
        assert_eq!(r.t_us.stddev, 0.0);
    }

    #[test]
    fn report_is_identical_for_any_worker_count() {
        let spec = SweepSpec::table1().with_replicates(2);
        let a = run_sweep_with(&spec, "test", 1, synthetic);
        let b = run_sweep_with(&spec, "test", 8, synthetic);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.frac_overdue, y.frac_overdue);
            assert_eq!(x.total, y.total);
            assert_eq!(x.max_cp, y.max_cp);
        }
    }

    #[test]
    fn hand_built_zero_replicates_is_clamped() {
        let mut spec = SweepSpec::smoke();
        spec.replicates = 0; // bypasses the with_replicates clamp
        let report = run_sweep_with(&spec, "test", 1, synthetic);
        assert_eq!(report.replicates, 1);
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].replicates, 1);
    }

    #[test]
    fn single_replicate_has_zero_spread() {
        let spec = SweepSpec::smoke();
        let report = run_sweep_with(&spec, "test", 4, synthetic);
        for r in &report.results {
            assert_eq!(r.replicates, 1);
            assert_eq!(r.frac_overdue.stddev, 0.0);
            assert_eq!(r.frac_overdue.stderr, 0.0);
        }
    }
}
