//! Grid vocabulary: topology selectors, cell coordinates, the
//! [`SweepSpec`] that expands a scalar (Table-1 style) grid into
//! independent jobs, and the [`FigSpec`] analogue for
//! distribution-style figure grids (named series × fixed x-axis).

use ups_net::TraceLevel;
use ups_sched::SchedKind;
use ups_sim::Dur;
use ups_topo::internet2::{self, I2Config, I2Variant};
use ups_topo::{fattree, rocketfuel, Topology};

/// Simulation-size knobs a sweep cell needs to build its topology and
/// workload. `ups-bench`'s `Scale` carries the CLI-facing superset and
/// converts down via `Scale::sim()`.
#[derive(Debug, Clone, Copy)]
pub struct SimScale {
    /// Edge routers (and hosts) per core router on WAN topologies.
    pub edges_per_core: usize,
    /// Flow-arrival horizon for open-loop workloads.
    pub horizon: Dur,
    /// Fat-tree arity.
    pub fattree_k: usize,
    /// Human label for report headers and artifact metadata.
    pub label: &'static str,
}

/// Topology selector for replay experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// Internet2 with one of the paper's bandwidth variants.
    I2(I2Variant),
    /// Synthetic RocketFuel (83 routers / 131 links), sized by the
    /// sweep's `SimScale` (half its `edges_per_core`, minimum 1).
    RocketFuel,
    /// Full-bisection fat-tree datacenter at the sweep's
    /// `SimScale::fattree_k` arity.
    FatTree,
    /// Fat-tree pinned to an explicit even arity, independent of the
    /// scale knobs — how the scenario registry names k=8 exactly.
    FatTreeK(usize),
    /// RocketFuel at the paper's full scale (10 edge routers per core,
    /// 830 hosts), independent of the scale knobs.
    RocketFuelFull,
}

impl TopoKind {
    /// Display label (matches Table 1's "Topology" column).
    pub fn label(self) -> String {
        match self {
            TopoKind::I2(v) => v.label().to_string(),
            TopoKind::RocketFuel => "RocketFuel".to_string(),
            TopoKind::FatTree => "Datacenter".to_string(),
            TopoKind::FatTreeK(k) => format!("Datacenter(k={k})"),
            TopoKind::RocketFuelFull => "RocketFuel-full".to_string(),
        }
    }

    /// Build a fresh instance at the given scale.
    pub fn build(self, sim: &SimScale) -> Topology {
        match self {
            TopoKind::I2(variant) => internet2::build(
                &I2Config {
                    variant,
                    edges_per_core: sim.edges_per_core,
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
            TopoKind::RocketFuel => rocketfuel::build(
                &rocketfuel::RocketFuelConfig {
                    edges_per_core: (sim.edges_per_core / 2).max(1),
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
            TopoKind::FatTree => fattree::build(
                &fattree::FatTreeConfig {
                    k: sim.fattree_k,
                    ..Default::default()
                },
                TraceLevel::Hops,
            ),
            TopoKind::FatTreeK(k) => {
                fattree::build(&fattree::FatTreeConfig::for_k(k), TraceLevel::Hops)
            }
            TopoKind::RocketFuelFull => {
                rocketfuel::build(&rocketfuel::RocketFuelConfig::full(), TraceLevel::Hops)
            }
        }
    }
}

/// Seed of the chaos RNG stream when a spec doesn't pick its own.
/// Deliberately disjoint from workload `base_seed` values (which start
/// at 1) so perturbation draws never alias workload draws.
pub const DEFAULT_CHAOS_SEED: u64 = 0xC11A05;

/// Grid-level description of a [`ups_net::ChaosPolicy`], in integer
/// units so cell coordinates stay `Copy + PartialEq` and artifact
/// coordinates stay exactly representable. All-zero (`ChaosSpec::OFF`)
/// means no chaos: the cell replays on the strict (loss-free) path and
/// its artifact bytes are identical to a build without the chaos layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// I.i.d. per-packet wire-drop probability, in parts per million.
    pub drop_ppm: u32,
    /// Periodic link-failure period in microseconds (0 = no failures).
    pub fail_period_us: u32,
    /// Down time per failure window in microseconds.
    pub fail_down_us: u32,
    /// Periodic jamming period in microseconds (0 = no jamming).
    pub jam_period_us: u32,
    /// Jam burst length in microseconds.
    pub jam_burst_us: u32,
    /// Chaos RNG seed (independent of the workload seed by design).
    pub seed: u64,
}

impl ChaosSpec {
    /// No perturbation: the strict replay path, byte-identical to the
    /// pre-chaos baselines.
    pub const OFF: ChaosSpec = ChaosSpec {
        drop_ppm: 0,
        fail_period_us: 0,
        fail_down_us: 0,
        jam_period_us: 0,
        jam_burst_us: 0,
        seed: DEFAULT_CHAOS_SEED,
    };

    /// Pure i.i.d. loss at the given rate; `0` canonicalizes to
    /// [`ChaosSpec::OFF`] so drop-rate sweeps include an exact control
    /// cell.
    pub fn drop(ppm: u32) -> ChaosSpec {
        if ppm == 0 {
            ChaosSpec::OFF
        } else {
            ChaosSpec {
                drop_ppm: ppm,
                ..ChaosSpec::OFF
            }
        }
    }

    /// Whether any perturbation is configured.
    pub fn enabled(&self) -> bool {
        self.drop_ppm > 0 || self.fail_period_us > 0 || self.jam_period_us > 0
    }

    /// Lower into the `ups-net` policy, or `None` when disabled (so
    /// disabled cells never even install the chaos hook and keep the
    /// wire fast path).
    pub fn to_policy(&self) -> Option<ups_net::ChaosPolicy> {
        if !self.enabled() {
            return None;
        }
        let mut p = ups_net::ChaosPolicy::new(self.seed);
        if self.drop_ppm > 0 {
            p = p.drop_prob(self.drop_ppm as f64 / 1e6);
        }
        if self.fail_period_us > 0 {
            p = p.fail_periodic(
                Dur::from_micros(self.fail_period_us as u64),
                Dur::from_micros(self.fail_down_us as u64),
            );
        }
        if self.jam_period_us > 0 {
            p = p.jam(ups_net::JamSpec::Periodic {
                start: ups_sim::Time::ZERO + Dur::from_micros(self.jam_period_us as u64),
                period: Dur::from_micros(self.jam_period_us as u64),
                burst: Dur::from_micros(self.jam_burst_us as u64),
            });
        }
        Some(p)
    }
}

/// One cell of the sweep grid (the seed replicate is *not* part of the
/// coordinate — replicates of the same cell aggregate into one
/// [`crate::SweepResult`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellCoord {
    /// Topology under test.
    pub topo: TopoKind,
    /// Original scheduling algorithm whose schedule LSTF replays.
    pub sched: SchedKind,
    /// Target utilization of the most-loaded core link.
    pub util: f64,
    /// Perturbation applied to the replay leg ([`ChaosSpec::OFF`] for
    /// the classic clean grids).
    pub chaos: ChaosSpec,
}

/// One unit of work: a cell coordinate plus a seed replicate.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Index of the cell in [`SweepSpec::cells`].
    pub cell: usize,
    /// Replicate number within the cell (0-based).
    pub replicate: usize,
    /// RNG seed for this replicate (`base_seed + replicate`).
    pub seed: u64,
    /// The grid coordinate.
    pub coord: CellCoord,
}

/// A declarative sweep: a named list of grid cells, replicated over
/// seeds. Expansion order is canonical (cell-major, then replicate), so
/// the aggregate output is independent of execution order.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Grid name — becomes the artifact file stem (`<name>.json`).
    pub name: String,
    /// The grid cells, in presentation order.
    pub cells: Vec<CellCoord>,
    /// Seed replicates per cell.
    pub replicates: usize,
    /// Seed of replicate 0; replicate `r` runs with `base_seed + r`.
    pub base_seed: u64,
}

impl SweepSpec {
    /// An empty spec with the given name, one replicate, seed 1.
    pub fn new(name: impl Into<String>) -> SweepSpec {
        SweepSpec {
            name: name.into(),
            cells: Vec::new(),
            replicates: 1,
            base_seed: 1,
        }
    }

    /// Cartesian grid: every topology × scheduler × utilization.
    pub fn cartesian(
        name: impl Into<String>,
        topos: &[TopoKind],
        scheds: &[SchedKind],
        utils: &[f64],
    ) -> SweepSpec {
        let mut spec = SweepSpec::new(name);
        for &topo in topos {
            for &sched in scheds {
                for &util in utils {
                    spec.cells.push(CellCoord {
                        topo,
                        sched,
                        util,
                        chaos: ChaosSpec::OFF,
                    });
                }
            }
        }
        spec
    }

    /// The paper's Table 1 grid, in the table's row order: a utilization
    /// sweep under Random, the bandwidth variants, the other topologies,
    /// and the original-scheduler sweep.
    pub fn table1() -> SweepSpec {
        let i2 = TopoKind::I2(I2Variant::Default1g10g);
        let mut spec = SweepSpec::new("table1");
        for util in [0.1, 0.3, 0.5, 0.7, 0.9] {
            spec.cells.push(CellCoord {
                topo: i2,
                sched: SchedKind::Random,
                util,
                chaos: ChaosSpec::OFF,
            });
        }
        for variant in [I2Variant::Access1g1g, I2Variant::Access10g10g] {
            spec.cells.push(CellCoord {
                topo: TopoKind::I2(variant),
                sched: SchedKind::Random,
                util: 0.7,
                chaos: ChaosSpec::OFF,
            });
        }
        for topo in [TopoKind::RocketFuel, TopoKind::FatTree] {
            spec.cells.push(CellCoord {
                topo,
                sched: SchedKind::Random,
                util: 0.7,
                chaos: ChaosSpec::OFF,
            });
        }
        for sched in [
            SchedKind::Fifo,
            SchedKind::Fq,
            SchedKind::Sjf,
            SchedKind::Lifo,
            SchedKind::FqFifoPlusMix,
        ] {
            spec.cells.push(CellCoord {
                topo: i2,
                sched,
                util: 0.7,
                chaos: ChaosSpec::OFF,
            });
        }
        spec
    }

    /// A 2-cell grid for CI smoke runs: the default topology under
    /// Random at 30% and 70% utilization.
    pub fn smoke() -> SweepSpec {
        SweepSpec::cartesian(
            "smoke",
            &[TopoKind::I2(I2Variant::Default1g10g)],
            &[SchedKind::Random],
            &[0.3, 0.7],
        )
    }

    /// Table 1 rows 1-2 only: the utilization sweep under Random.
    pub fn util_grid() -> SweepSpec {
        SweepSpec::cartesian(
            "util",
            &[TopoKind::I2(I2Variant::Default1g10g)],
            &[SchedKind::Random],
            &[0.1, 0.3, 0.5, 0.7, 0.9],
        )
    }

    /// Table 1 row 5 plus Random: the original-scheduler sweep at 70%.
    pub fn sched_grid() -> SweepSpec {
        SweepSpec::cartesian(
            "sched",
            &[TopoKind::I2(I2Variant::Default1g10g)],
            &[
                SchedKind::Random,
                SchedKind::Fifo,
                SchedKind::Fq,
                SchedKind::Sjf,
                SchedKind::Lifo,
                SchedKind::FqFifoPlusMix,
            ],
            &[0.7],
        )
    }

    /// Table 1 rows 3-4: every topology family and variant at 70%.
    pub fn topo_grid() -> SweepSpec {
        SweepSpec::cartesian(
            "topo",
            &[
                TopoKind::I2(I2Variant::Default1g10g),
                TopoKind::I2(I2Variant::Access1g1g),
                TopoKind::I2(I2Variant::Access10g10g),
                TopoKind::RocketFuel,
                TopoKind::FatTree,
            ],
            &[SchedKind::Random],
            &[0.7],
        )
    }

    /// Set the replicate count (builder style).
    pub fn with_replicates(mut self, replicates: usize) -> SweepSpec {
        self.replicates = replicates.max(1);
        self
    }

    /// Set the base seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> SweepSpec {
        self.base_seed = seed;
        self
    }

    /// Expand into jobs: cell-major, replicate-minor, so chunking the
    /// result by `replicates` groups each cell's replicates together.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.cells.len() * self.replicates);
        for (cell, &coord) in self.cells.iter().enumerate() {
            for replicate in 0..self.replicates {
                jobs.push(Job {
                    cell,
                    replicate,
                    seed: self.base_seed + replicate as u64,
                    coord,
                });
            }
        }
        jobs
    }
}

/// The x-axis a figure grid's distribution payload is sampled on.
///
/// Every replicate of every series evaluates its distribution at the
/// same `xs`, so per-point aggregation across seed replicates (mean ±
/// stddev via Welford) is well-defined and artifacts stay
/// byte-identical for any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct FigAxis {
    /// Axis name (JSON/CSV field, e.g. `ratio`, `percentile`, `t_ms`).
    pub name: String,
    /// The x points, in presentation order.
    pub xs: Vec<f64>,
    /// Optional human labels for categorical axes (e.g. Figure 2's
    /// flow-size buckets). When present, must parallel `xs`.
    pub labels: Option<Vec<String>>,
}

impl FigAxis {
    /// A numeric axis with no categorical labels.
    pub fn numeric(name: impl Into<String>, xs: Vec<f64>) -> FigAxis {
        FigAxis {
            name: name.into(),
            xs,
            labels: None,
        }
    }

    /// A categorical axis: x is the category index, `labels` the names.
    pub fn categorical(name: impl Into<String>, labels: Vec<String>) -> FigAxis {
        FigAxis {
            name: name.into(),
            xs: (0..labels.len()).map(|i| i as f64).collect(),
            labels: Some(labels),
        }
    }
}

/// A distribution-style figure grid: one cell per named series (an
/// original scheduler, an FCT scheme, ...), each replicated over seeds,
/// reporting one distribution payload ([`crate::DistMetrics`]) per
/// replicate. The figure analogue of [`SweepSpec`].
#[derive(Debug, Clone)]
pub struct FigSpec {
    /// Grid name — becomes the artifact file stem (`<name>.json`).
    pub name: String,
    /// Human title for report headers.
    pub title: String,
    /// Series labels, in presentation order (one grid cell each).
    pub series: Vec<String>,
    /// The shared x-axis every replicate samples its payload on.
    pub axis: FigAxis,
    /// Names of the per-replicate scalar summaries (e.g. `median`),
    /// parallel to [`crate::DistMetrics::scalars`].
    pub scalar_names: Vec<String>,
    /// Seed replicates per series.
    pub replicates: usize,
    /// Seed of replicate 0; replicate `r` runs with `base_seed + r`.
    pub base_seed: u64,
}

/// One unit of figure work: a series index plus a seed replicate.
#[derive(Debug, Clone, Copy)]
pub struct FigJob {
    /// Index into [`FigSpec::series`].
    pub series: usize,
    /// Replicate number within the series (0-based).
    pub replicate: usize,
    /// RNG seed for this replicate (`base_seed + replicate`).
    pub seed: u64,
}

impl FigSpec {
    /// A figure grid with the given series and axis, one replicate,
    /// seed 1, no scalar summaries.
    pub fn new(
        name: impl Into<String>,
        title: impl Into<String>,
        series: Vec<String>,
        axis: FigAxis,
    ) -> FigSpec {
        FigSpec {
            name: name.into(),
            title: title.into(),
            series,
            axis,
            scalar_names: Vec::new(),
            replicates: 1,
            base_seed: 1,
        }
    }

    /// Set the per-replicate scalar summary names (builder style).
    pub fn with_scalars(mut self, names: &[&str]) -> FigSpec {
        self.scalar_names = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Set the replicate count (builder style; clamped to ≥ 1).
    pub fn with_replicates(mut self, replicates: usize) -> FigSpec {
        self.replicates = replicates.max(1);
        self
    }

    /// Set the base seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> FigSpec {
        self.base_seed = seed;
        self
    }

    /// Expand into jobs: series-major, replicate-minor, so chunking the
    /// result by `replicates` groups each series' replicates together.
    pub fn jobs(&self) -> Vec<FigJob> {
        let mut jobs = Vec::with_capacity(self.series.len() * self.replicates);
        for series in 0..self.series.len() {
            for replicate in 0..self.replicates {
                jobs.push(FigJob {
                    series,
                    replicate,
                    seed: self.base_seed + replicate as u64,
                });
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_jobs_expand_series_major_with_seed_offsets() {
        let spec = FigSpec::new(
            "f",
            "t",
            vec!["a".into(), "b".into()],
            FigAxis::numeric("x", vec![0.0, 1.0]),
        )
        .with_replicates(2)
        .with_seed(10);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            (jobs[0].series, jobs[0].replicate, jobs[0].seed),
            (0, 0, 10)
        );
        assert_eq!(
            (jobs[1].series, jobs[1].replicate, jobs[1].seed),
            (0, 1, 11)
        );
        assert_eq!(
            (jobs[2].series, jobs[2].replicate, jobs[2].seed),
            (1, 0, 10)
        );
    }

    #[test]
    fn categorical_axis_indexes_labels() {
        let axis = FigAxis::categorical("bucket", vec!["<=1".into(), "2-3".into()]);
        assert_eq!(axis.xs, vec![0.0, 1.0]);
        assert_eq!(axis.labels.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn fig_replicates_clamp_to_at_least_one() {
        let spec = FigSpec::new("f", "t", vec![], FigAxis::numeric("x", vec![]));
        assert_eq!(spec.with_replicates(0).replicates, 1);
    }

    #[test]
    fn chaos_spec_canonicalizes_and_lowers() {
        assert_eq!(ChaosSpec::drop(0), ChaosSpec::OFF);
        assert!(!ChaosSpec::OFF.enabled());
        assert!(ChaosSpec::OFF.to_policy().is_none());
        let loss = ChaosSpec::drop(10_000);
        assert!(loss.enabled());
        assert!(loss.to_policy().is_some());
        // Clean grids carry the exact OFF spec in every cell.
        assert!(SweepSpec::table1().cells.iter().all(|c| !c.chaos.enabled()));
    }

    #[test]
    fn table1_has_fourteen_cells() {
        let spec = SweepSpec::table1();
        assert_eq!(spec.cells.len(), 14);
        // Row order matches the paper's table: utilization sweep first.
        assert_eq!(spec.cells[0].util, 0.1);
        assert_eq!(spec.cells[4].util, 0.9);
        assert_eq!(spec.cells[8].topo, TopoKind::FatTree);
        assert_eq!(spec.cells[13].sched, SchedKind::FqFifoPlusMix);
    }

    #[test]
    fn jobs_expand_cell_major_with_seed_offsets() {
        let spec = SweepSpec::smoke().with_replicates(3).with_seed(10);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), 6);
        assert_eq!((jobs[0].cell, jobs[0].replicate, jobs[0].seed), (0, 0, 10));
        assert_eq!((jobs[2].cell, jobs[2].replicate, jobs[2].seed), (0, 2, 12));
        assert_eq!((jobs[3].cell, jobs[3].replicate, jobs[3].seed), (1, 0, 10));
        assert_eq!(jobs[3].coord.util, 0.7);
    }

    #[test]
    fn cartesian_expands_all_combinations() {
        let spec = SweepSpec::cartesian(
            "x",
            &[TopoKind::RocketFuel, TopoKind::FatTree],
            &[SchedKind::Fifo, SchedKind::Lifo, SchedKind::Random],
            &[0.5, 0.9],
        );
        assert_eq!(spec.cells.len(), 12);
        assert_eq!(spec.replicates, 1);
    }

    #[test]
    fn replicates_clamp_to_at_least_one() {
        assert_eq!(SweepSpec::smoke().with_replicates(0).replicates, 1);
    }
}
