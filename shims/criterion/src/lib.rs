//! Offline API-subset shim of the `criterion` crate.
//!
//! Implements the names the workspace's benches use — `Criterion`,
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`/`criterion_main!` —
//! with a plain wall-clock measurement loop (one timed pass per sample,
//! mean and min reported). No statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; carries default sample settings.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let group = BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        };
        eprintln!("group {}", group.name);
        group
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark("", &id.into_benchmark_id(), sample_size, None, f);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Work-per-iteration label used to report a rate alongside the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &self.name,
            &id.into_benchmark_id(),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// A benchmark name, optionally parameterized (`name/param`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Handed to the benchmark closure; times the routine passed to `iter`.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    // The shim IS a timer — wall-clock is its entire purpose.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }
}

fn run_benchmark<F>(
    group: &str,
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    // Warm-up pass (untimed), then `sample_size` timed samples.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..sample_size {
        f(&mut bencher);
        total += bencher.elapsed;
        min = min.min(bencher.elapsed);
    }
    let mean = total / sample_size as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_second(n, mean)),
        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
            format!(" ({:.0} B/s)", per_second(n, mean))
        }
    });
    eprintln!(
        "bench {label}: mean {mean:?}, min {min:?} over {sample_size} samples{}",
        rate.unwrap_or_default()
    );
}

fn per_second(amount_per_iter: u64, mean: Duration) -> f64 {
    if mean.is_zero() {
        return f64::INFINITY;
    }
    amount_per_iter as f64 / mean.as_secs_f64()
}

/// Bundle benchmark functions into one group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target. `cargo bench`
/// passes flags like `--bench`; the shim ignores its argv.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
