//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// `Vec` strategy: a length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
