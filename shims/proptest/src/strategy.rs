//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer/float ranges, tuples, [`Just`], and [`OneOf`].

use crate::test_runner::TestRng;

/// A source of random values of one type. Upstream strategies build lazy
/// shrink trees; the shim generates values directly (no shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategies behind references generate like the referent.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Box a strategy for storage in a homogeneous [`OneOf`] arm list.
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among strategies of a common value type
/// (the expansion of `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.arms.len() as u128) as usize;
        self.arms[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    (lo + rng.next_below(span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    (lo + rng.next_below(span) as i128) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_unit_f64() as f32
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_unit_f64()
    }
}

impl Strategy for core::ops::RangeInclusive<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.next_unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
