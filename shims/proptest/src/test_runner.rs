//! Runner configuration and the deterministic RNG behind case generation.

/// Mirrors the upstream `ProptestConfig` fields the workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition not met — try another input.
    Reject(String),
    /// `prop_assert!`-family failure — the property is false.
    Fail(String),
}

/// SplitMix64: tiny, portable, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Deterministic per-test seed so failures reproduce across runs
    /// and machines (FNV-1a over the test name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }
}
