//! Offline API-subset shim of the `proptest` crate.
//!
//! Provides deterministic randomized testing with the upstream names the
//! workspace uses: the [`proptest!`] macro, range / tuple / collection /
//! [`strategy::Just`] / `prop_oneof!` strategies, `prop_assert!`-family
//! macros, and [`test_runner::ProptestConfig`]. There is no shrinking:
//! a failing case panics with the generated inputs' debug output, which
//! is enough to reproduce (generation is seeded per test name).

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests need.
    /// Upstream's prelude exposes the crate itself as `prop` so that
    /// `prop::collection::vec(..)` works.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body; failure aborts the run
/// with the formatted message (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    left, right, ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Discard the current case (it does not count toward `cases`) when a
/// generated input does not meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Pick uniformly among several strategies producing the same value type.
/// (Upstream supports weighted arms; the shim is uniform-only.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(::core::stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected <= config.max_global_rejects,
                                "{}: too many prop_assume rejections ({rejected})",
                                ::core::stringify!($name),
                            );
                        }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            ::std::panic!(
                                "proptest case {}/{} of `{}` failed: {}",
                                accepted + 1,
                                config.cases,
                                ::core::stringify!($name),
                                msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}
