//! The paper's three appendix counterexamples, executed on the real
//! simulator (unit-time congestion points, idealized free hops):
//!
//! * Figure 6 — simple priorities cannot replay two congestion points
//!   per packet (a priority cycle), while LSTF can;
//! * Figure 7 — LSTF itself fails at three congestion points;
//! * Figure 5 — *no* black-box UPS exists: two schedules give packets
//!   `a` and `x` identical `(i, o, path)` yet demand opposite orders.
//!
//! ```sh
//! cargo run --release --example theory_demo
//! ```

use ups::core::theory::{fig5, fig6, fig7, lateness_units, UNIT};

fn main() {
    // --- Figure 6 ------------------------------------------------------
    println!("== Figure 6: the priority cycle (2 congestion points) ==");
    for prios in [[0i64, 1, 2], [1, 2, 0], [2, 0, 1]] {
        let rep = fig6::priority_replay(prios);
        println!(
            "priorities (a,b,c) = {prios:?}: {} overdue, lateness (units) {:?}",
            rep.overdue,
            lateness_units(&rep)
        );
    }
    let lstf = fig6::lstf_replay();
    println!(
        "LSTF on the same schedule: {} overdue (max lateness {} ps)\n",
        lstf.overdue,
        lstf.max_lateness()
    );

    // --- Figure 7 ------------------------------------------------------
    println!("== Figure 7: LSTF fails at 3 congestion points ==");
    let (sched, rep) = fig7::lstf_replay();
    println!(
        "slacks (units): a={} b={} (c,d tight)",
        sched.packets[0].slack() / UNIT.as_i64(),
        sched.packets[1].slack() / UNIT.as_i64(),
    );
    println!(
        "LSTF replay: {} overdue, lateness (units) {:?}\n",
        rep.overdue,
        lateness_units(&rep)
    );

    // --- Figure 5 ------------------------------------------------------
    println!("== Figure 5: no black-box UPS exists ==");
    let (o_a, o_x, r1, r2) = fig5::demonstrate();
    println!("a and x have identical (i, o, path) in both cases:");
    println!("  o(a) = {o_a}, o(x) = {o_x}");
    println!(
        "case 1 (needs a first): {} overdue, worst {:+.2} units",
        r1.overdue,
        r1.max_lateness() as f64 / UNIT.as_i64() as f64
    );
    println!(
        "case 2 (needs x first): {} overdue, worst {:+.2} units",
        r2.overdue,
        r2.max_lateness() as f64 / UNIT.as_i64() as f64
    );
    println!("a deterministic scheduler must fail at least one of them.");
}
