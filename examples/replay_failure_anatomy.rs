//! Anatomy of a replay failure: record a LIFO schedule on Internet2,
//! replay it with LSTF, and dissect *which* packets miss their targets
//! and by how much — the paper's §2.3 analysis, reproduced as a tool.
//!
//! ```sh
//! cargo run --release --example replay_failure_anatomy
//! ```

use ups::core::replay::{record_original, replay_schedule, ReplayMode};
use ups::core::workload::default_udp_workload;
use ups::net::TraceLevel;
use ups::sched::SchedKind;
use ups::sim::Dur;
use ups::topo::internet2::{build, I2Config};

fn main() {
    let factory = || build(&I2Config::default(), TraceLevel::Hops);

    let mut original = factory();
    let flows = default_udp_workload(&original, 0.7, Dur::from_millis(10), 11);
    let schedule = record_original(&mut original, &flows, SchedKind::Lifo, 11, 1500);
    drop(original);

    println!(
        "original LIFO schedule: {} packets, congestion-point histogram:",
        schedule.len()
    );
    let hist = schedule.congestion_point_histogram();
    let total: usize = hist.iter().sum();
    for (k, &n) in hist.iter().enumerate() {
        println!(
            "  {k} congestion points: {:>6.2}%",
            100.0 * n as f64 / total as f64
        );
    }

    for mode in [ReplayMode::lstf(), ReplayMode::lstf_preemptive()] {
        let mut replay = factory();
        let report = replay_schedule(&mut replay, &schedule, mode);
        println!(
            "\n{} replay: {:.3}% overdue, {:.3}% by more than T",
            mode.label(),
            report.frac_overdue() * 100.0,
            report.frac_overdue_gt_t() * 100.0
        );

        // Overdue rate by congestion-point count: the theory says ≤2 is
        // always safe; misses concentrate at ≥3.
        let mut by_cp: Vec<(usize, usize)> = vec![(0, 0); hist.len()];
        for (rec, &late) in schedule.packets.iter().zip(&report.lateness) {
            by_cp[rec.congestion_points].0 += 1;
            if late > 1_000 {
                by_cp[rec.congestion_points].1 += 1;
            }
        }
        for (k, &(n, o)) in by_cp.iter().enumerate() {
            if n > 0 {
                println!(
                    "  cp={k}: {:>6} packets, {:>6.3}% overdue",
                    n,
                    100.0 * o as f64 / n as f64
                );
            }
        }
        // The queueing-delay ratio story of Figure 1.
        let below_one = report.qdelay_ratios.iter().filter(|&&r| r <= 1.0).count();
        println!(
            "  queueing-delay ratio <= 1 for {:.1}% of queued packets \
             (LSTF eliminates \"wasted waiting\")",
            100.0 * below_one as f64 / report.qdelay_ratios.len().max(1) as f64
        );
    }
}
