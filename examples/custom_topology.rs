//! Build a custom network from scratch — a two-pod leaf–spine — wire
//! LSTF everywhere, and measure per-link utilization and queueing. This
//! is the "bring your own topology" path a downstream user would take.
//!
//! ```sh
//! cargo run --release --example custom_topology
//! ```

use ups::core::workload::to_flow_descs;
use ups::flowgen::{poisson_workload, PoissonConfig};
use ups::net::{Network, TraceLevel};
use ups::sched::lstf;
use ups::sim::{Bandwidth, Dur};
use ups::topo::Topology;
use ups::transport::{inject_udp_flows, HeaderStamper};

/// Two spines, four leaves, four hosts per leaf, 10 Gbps fabric with a
/// 40 Gbps spine tier.
fn leaf_spine() -> Topology {
    let mut net = Network::new(TraceLevel::Hops);
    let spines: Vec<_> = (0..2)
        .map(|i| net.add_router(format!("spine{i}")))
        .collect();
    let leaves: Vec<_> = (0..4).map(|i| net.add_router(format!("leaf{i}"))).collect();

    let mut core_links = Vec::new();
    for &s in &spines {
        for &l in &leaves {
            let (a, b) = net.add_duplex(l, s, Bandwidth::gbps(40), Dur::from_nanos(400));
            core_links.extend([a, b]);
        }
    }
    let mut hosts = Vec::new();
    let mut host_links = Vec::new();
    for (li, &l) in leaves.iter().enumerate() {
        for h in 0..4 {
            let host = net.add_host(format!("h{li}.{h}"));
            let (a, b) = net.add_duplex(host, l, Bandwidth::gbps(10), Dur::from_nanos(200));
            host_links.extend([a, b]);
            hosts.push(host);
        }
    }
    let routes = net.compute_routes();
    let topo = Topology {
        net,
        routes,
        name: "LeafSpine(2x4)".into(),
        hosts,
        core_links,
        access_links: Vec::new(),
        host_links,
    };
    topo.validate();
    topo
}

fn main() {
    let mut topo = leaf_spine();
    println!(
        "{}: {} nodes, {} links, {} hosts",
        topo.name,
        topo.net.nodes.len(),
        topo.net.links.len(),
        topo.hosts.len()
    );

    // LSTF on every port; a 60%-utilization Poisson workload.
    topo.net
        .configure_links(|_| ups_net::LinkPolicy::keep().scheduler(Box::new(lstf())));
    let flows = to_flow_descs(&poisson_workload(
        &topo,
        &PoissonConfig {
            utilization: 0.6,
            horizon: Dur::from_millis(5),
            seed: 7,
            ..Default::default()
        },
    ));
    let mut stamper = HeaderStamper::zero();
    inject_udp_flows(
        &mut topo.net,
        &std::sync::Arc::clone(&topo.routes),
        &flows,
        1500,
        &mut stamper,
    );
    let end = topo.net.run_to_completion();

    println!(
        "{} flows / {} packets delivered by {}",
        flows.len(),
        topo.net.telemetry.counters.delivered,
        end
    );

    // Per-tier utilization summary.
    let elapsed = end - ups::sim::Time::ZERO;
    let mut spine_util: Vec<f64> = Vec::new();
    for &l in &topo.core_links {
        spine_util.push(topo.net.links[l.0 as usize].utilization(elapsed));
    }
    spine_util.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "fabric link utilization: min {:.1}% median {:.1}% max {:.1}%",
        spine_util[0] * 100.0,
        spine_util[spine_util.len() / 2] * 100.0,
        spine_util[spine_util.len() - 1] * 100.0
    );

    // ECMP check: flows between the same leaf pair spread over spines.
    let deepest = topo
        .net
        .links
        .iter()
        .max_by_key(|l| l.stats.max_queue_pkts)
        .expect("links");
    println!(
        "deepest queue: {} -> {} ({} packets)",
        topo.net.nodes[deepest.from.0 as usize].name,
        topo.net.nodes[deepest.to.0 as usize].name,
        deepest.stats.max_queue_pkts
    );
}
