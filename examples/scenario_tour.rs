//! A tour of the scenario registry: list every registered scenario,
//! then run the cheapest non-web one end-to-end at a reduced scale and
//! read its replayability row by row.
//!
//! ```sh
//! cargo run --release --example scenario_tour
//! ```
//!
//! The registry (`ups::sweep::scenario`) is the declarative catalogue
//! behind `sweep --grid <scenario>` and `sweep scenarios list|describe|
//! run`; `docs/SCENARIOS.md` documents every entry with its topology
//! sketch and repro command.

use ups::sweep::scenario;
use ups::sweep::SimScale;

fn main() {
    println!("registered scenarios:\n");
    print!("{}", scenario::render_list());

    // Run the fast datacenter-incast scenario at a tiny horizon: three
    // original schedulers' schedules, each replayed under LSTF.
    let s = scenario::find("dc-k4-incast-sched").expect("registered scenario");
    println!("\nrunning `{}` at a reduced horizon...\n", s.name);
    let sim = SimScale {
        edges_per_core: 2,
        horizon: ups::sim::Dur::from_millis(2),
        fattree_k: 4,
        label: "tour",
    };
    let report = s.run(&sim, 2);
    println!(
        "{:<18} {:>5} {:<9} {:>9} {:>12} {:>12}",
        "Topology", "Util", "Original", "Packets", "FracOverdue", "Frac>T"
    );
    for r in &report.results {
        println!(
            "{:<18} {:>4.0}% {:<9} {:>9.0} {:>12.6} {:>12.6}",
            r.coord.topo.label(),
            r.coord.util * 100.0,
            r.coord.sched.label(),
            r.total.mean,
            r.frac_overdue.mean,
            r.frac_gt_t.mean,
        );
    }
    println!(
        "\nevery scenario runs the same way: cargo run --release --bin sweep -- \
         --grid <name> --jobs 4"
    );
}
