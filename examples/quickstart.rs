//! Quickstart: record a schedule produced by a Random scheduler on a
//! small Internet2 network, replay it with LSTF, and print the paper's
//! headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ups::core::replay::{replay_experiment, ReplayMode};
use ups::core::workload::default_udp_workload;
use ups::net::TraceLevel;
use ups::sched::SchedKind;
use ups::sim::Dur;
use ups::topo::internet2::{build, I2Config};

fn main() {
    // 1. A fresh Internet2 topology factory: the original run and the
    //    replay each get an identical, clean network.
    let factory = || build(&I2Config::default(), TraceLevel::Hops);

    // 2. A Poisson UDP workload with heavy-tailed flow sizes, calibrated
    //    so the most-loaded core link runs at 70% utilization.
    let topo = factory();
    let flows = default_udp_workload(&topo, 0.7, Dur::from_millis(10), 42);
    println!(
        "topology {:?}: {} hosts, {} links; {} flows",
        topo.name,
        topo.hosts.len(),
        topo.net.links.len(),
        flows.len()
    );
    drop(topo);

    // 3. Record the original schedule under Random scheduling, then
    //    replay the identical input under LSTF with
    //    slack = o(p) − i(p) − tmin(p).
    let (schedule, report) = replay_experiment(
        factory,
        &flows,
        SchedKind::Random,
        ReplayMode::lstf(),
        42,
        1500,
    );

    println!(
        "recorded {} packets; max congestion points {}; mean slack {:.1}us",
        schedule.len(),
        schedule.max_congestion_points(),
        schedule.mean_slack() / 1e6
    );
    println!(
        "LSTF replay: {:.4}% overdue, {:.4}% overdue by more than T = {}",
        report.frac_overdue() * 100.0,
        report.frac_overdue_gt_t() * 100.0,
        report.t
    );

    // 4. The omniscient UPS (per-hop output-time vectors) is exact.
    let mut topo = factory();
    let omni = ups::core::replay::replay_schedule(&mut topo, &schedule, ReplayMode::Omniscient);
    assert!(omni.perfect(), "Appendix B guarantees a perfect replay");
    println!(
        "omniscient replay: perfect ({} packets on time)",
        omni.total
    );
}
