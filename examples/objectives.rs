//! The practical side of universality (§3): one LSTF slack heuristic per
//! network-wide objective, compared with the specialist scheduler for
//! that objective — on a dumbbell so the effects are easy to see.
//!
//! ```sh
//! cargo run --release --example objectives
//! ```

use ups::core::objectives::Scheme;
use ups::core::{run_fairness, run_fct, run_tail_delays};
use ups::metrics::Cdf;
use ups::net::{FlowId, TraceLevel};
use ups::sim::{Bandwidth, Dur, Time};
use ups::topo::simple::dumbbell;
use ups::transport::FlowDesc;

fn topo() -> ups::topo::Topology {
    dumbbell(
        8,
        Bandwidth::gbps(10),
        Bandwidth::gbps(1),
        Dur::from_micros(20),
        TraceLevel::Delivery,
    )
}

fn main() {
    // --- Objective 1: mean flow completion time (§3.1) ---------------
    // Two mice and six elephants race across the bottleneck; SJF-style
    // slack (flow_size × D) should protect the mice, FIFO should not.
    let t = topo();
    let flows: Vec<FlowDesc> = (0..8)
        .map(|i| FlowDesc {
            id: FlowId(i),
            src: t.hosts[i as usize],
            dst: t.hosts[8 + i as usize],
            pkts: if i < 2 { 20 } else { 500 },
            start: Time::ZERO,
            deadline: None,
        })
        .collect();
    println!("== mean FCT (two 20-packet mice vs six 500-packet elephants) ==");
    for scheme in [
        Scheme::Fifo,
        Scheme::Sjf,
        Scheme::LstfFct {
            d: Dur::from_secs(1),
        },
    ] {
        let res = run_fct(topo(), &flows, &scheme, 500_000, Time::from_secs(5));
        let mouse_fct: Vec<f64> = res
            .iter()
            .filter(|r| r.desc.pkts < 100)
            .filter_map(|r| r.fct().map(|d| d.as_secs_f64() * 1e3))
            .collect();
        println!(
            "{:<12} mouse FCTs: {:?} ms",
            scheme.label(),
            mouse_fct
                .iter()
                .map(|f| (f * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }

    // --- Objective 2: tail packet delay (§3.2) ------------------------
    let t = topo();
    let flows: Vec<FlowDesc> = (0..8)
        .map(|i| FlowDesc {
            id: FlowId(i),
            src: t.hosts[i as usize],
            dst: t.hosts[8 + (i as usize + 1) % 8],
            pkts: 200,
            start: Time::from_micros(11 * i),
            deadline: None,
        })
        .collect();
    println!("\n== tail packet delay (UDP, identical load) ==");
    for scheme in [
        Scheme::Fifo,
        Scheme::LstfConst {
            slack: Dur::from_secs(1),
        },
    ] {
        let delays = run_tail_delays(topo(), &flows, &scheme, 1500, None);
        let cdf = Cdf::new(delays);
        println!(
            "{:<12} mean {:.1}us p99 {:.1}us max {:.1}us",
            scheme.label(),
            cdf.mean() * 1e6,
            cdf.quantile(0.99) * 1e6,
            cdf.quantile(1.0) * 1e6
        );
    }

    // --- Objective 3: fairness (§3.3) ---------------------------------
    let t = topo();
    let flows: Vec<FlowDesc> = (0..8)
        .map(|i| FlowDesc {
            id: FlowId(i),
            src: t.hosts[i as usize],
            dst: t.hosts[8 + i as usize],
            pkts: u64::MAX / 2,
            start: Time::from_micros(40 * i),
            deadline: None,
        })
        .collect();
    println!("\n== fairness (8 long-lived TCP flows share 1 Gbps) ==");
    for scheme in [
        Scheme::Fifo,
        Scheme::Fq,
        Scheme::LstfVc {
            rest: Bandwidth::mbps(10),
        },
    ] {
        let pts = run_fairness(
            topo(),
            &flows,
            &scheme,
            Dur::from_millis(1),
            Time::from_millis(15),
            None,
        );
        let series: Vec<f64> = pts
            .iter()
            .map(|p| (p.jain * 1000.0).round() / 1000.0)
            .collect();
        println!("{:<12} Jain index per ms: {series:?}", scheme.label());
    }
}
