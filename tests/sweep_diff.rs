//! `sweep diff` end-to-end through the actual binary: the exit-code
//! contract CI's regression check relies on. Exit 0 = artifacts match
//! under the tolerance, 1 = regression (differences found), 2 =
//! usage/IO/parse error.

use std::path::PathBuf;
use std::process::Command;
use ups_sweep::{run_sweep_with, CellMetrics, Job, SweepSpec};

/// A synthetic 2-cell table artifact; `bump` perturbs one metric of the
/// second cell (util=0.7) so regressions land on a known coordinate.
fn artifact(bump: f64) -> String {
    let spec = SweepSpec::smoke().with_replicates(2);
    run_sweep_with(&spec, "test", 1, |job: &Job| CellMetrics {
        total: 100,
        frac_overdue: 0.25 + if job.cell == 1 { bump } else { 0.0 },
        frac_gt_t: 0.125,
        t_us: 12.0,
        max_cp: 1,
        mean_slack_us: 3.5,
        deadline: None,
        chaos: None,
    })
    .to_json()
}

/// Write `content` under a pid-keyed temp dir (concurrent test runs on
/// one machine must not race) and return the path.
fn write_tmp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ups-sweep-diff-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write artifact");
    path
}

/// Run `sweep diff` with the given arguments; returns (exit code, stdout).
fn run_diff(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .arg("diff")
        .args(args)
        .output()
        .expect("spawn sweep binary");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn identical_artifacts_exit_zero() {
    let a = write_tmp("self_a.json", &artifact(0.0));
    let b = write_tmp("self_b.json", &artifact(0.0));
    let (code, stdout) = run_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("artifacts match"), "{stdout}");
    assert!(stdout.contains("0 difference(s)"), "{stdout}");
}

#[test]
fn perturbation_within_tolerance_exits_zero() {
    let a = write_tmp("tol_a.json", &artifact(0.0));
    let b = write_tmp("tol_b.json", &artifact(1e-6));
    let (code, stdout) = run_diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--rel-tol",
        "1e-3",
    ]);
    assert_eq!(code, 0, "{stdout}");
    // The same pair without the tolerance is a regression.
    let (code, _) = run_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1);
}

#[test]
fn regression_exits_nonzero_and_names_the_coordinate() {
    let a = write_tmp("reg_a.json", &artifact(0.0));
    let b = write_tmp("reg_b.json", &artifact(0.1));
    let (code, stdout) = run_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("artifacts DIFFER"), "{stdout}");
    // The offending cell is named by coordinate, metric and values.
    assert!(
        stdout.contains("original=Random,util=0.7") && stdout.contains("frac_overdue"),
        "{stdout}"
    );
}

#[test]
fn added_and_removed_cells_exit_nonzero() {
    let smoke = artifact(0.0);
    let util = run_sweep_with(
        &SweepSpec::util_grid().with_replicates(2),
        "test",
        1,
        |_: &Job| CellMetrics {
            total: 100,
            frac_overdue: 0.25,
            frac_gt_t: 0.125,
            t_us: 12.0,
            max_cp: 1,
            mean_slack_us: 3.5,
            deadline: None,
            chaos: None,
        },
    )
    .to_json();
    let a = write_tmp("cells_a.json", &smoke);
    let b = write_tmp("cells_b.json", &util);
    let (code, stdout) = run_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1, "{stdout}");
    assert!(
        stdout.contains("added") && stdout.contains("util=0.1"),
        "added cells must be named: {stdout}"
    );
}

#[test]
fn bad_usage_and_missing_files_exit_two() {
    let (code, _) = run_diff(&["only-one-path.json"]);
    assert_eq!(code, 2, "one path must be a usage error");
    let a = write_tmp("exists.json", &artifact(0.0));
    let (code, _) = run_diff(&[a.to_str().unwrap(), "/nonexistent/artifact.json"]);
    assert_eq!(code, 2, "missing file must be an IO error, not a diff");
    let garbage = write_tmp("garbage.json", "not json at all");
    let (code, _) = run_diff(&[a.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(code, 2, "parse failure must be an error, not a diff");
}
