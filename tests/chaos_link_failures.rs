//! Link-down edge cases of the chaos layer: an in-service packet killed
//! by a failure must be fully accounted (LinkStats, telemetry counters,
//! no PacketSlab leak), a down link must refuse arrivals, failures must
//! drain every scheduler's queue consistently, and jamming must kill
//! only the in-service packet while the queue survives.

use std::sync::Arc;
use ups::net::{ChaosPolicy, FlowId, JamSpec, LinkPolicy, TraceLevel};
use ups::sched::SchedKind;
use ups::sim::{Bandwidth, Dur, Time};
use ups::topo::simple::{dumbbell, line};
use ups::topo::Topology;
use ups::transport::{inject_udp_flows, FlowDesc, HeaderStamper};

fn inject(topo: &mut Topology, flows: &[FlowDesc]) {
    let routes = Arc::clone(&topo.routes);
    let mut stamper = HeaderStamper::zero();
    inject_udp_flows(&mut topo.net, &routes, flows, 1500, &mut stamper);
}

/// One packet, one link, one failure window opening mid-serialization:
/// the in-service packet must surface as a drop in both the link stats
/// and the network counters, and must not leak a slab slot.
#[test]
fn failure_mid_transmission_drops_the_in_service_packet_cleanly() {
    let mut topo = line(
        1,
        Bandwidth::gbps(1),
        Dur::from_micros(5),
        TraceLevel::Delivery,
    );
    let (src, dst) = (topo.hosts[0], topo.hosts[1]);
    inject(
        &mut topo,
        &[FlowDesc {
            id: FlowId(0),
            src,
            dst,
            pkts: 1,
            start: Time::ZERO,
            deadline: None,
        }],
    );
    // 1500 B at 1 Gbps serializes for 12 µs; fail the NIC at 5 µs.
    topo.net.install_chaos(Time::from_millis(1), |l| {
        (l.from == src)
            .then(|| ChaosPolicy::new(3).fail(Time::from_micros(5), Time::from_micros(8)))
    });
    topo.net.run_to_completion();

    assert_eq!(
        topo.net.packets_in_flight(),
        0,
        "chaos kill leaked a slab slot"
    );
    let c = &topo.net.telemetry.counters;
    assert_eq!(c.injected, 1);
    assert_eq!(c.delivered, 0, "the killed packet must not be delivered");
    assert_eq!(c.dropped, 1, "the kill must surface in the drop counter");

    let link = topo.net.links.iter().find(|l| l.from == src).unwrap();
    assert_eq!(link.stats.enqueued, 1);
    assert_eq!(link.stats.tx_done, 0);
    assert_eq!(link.stats.dropped, 1);
    assert_eq!(link.stats.chaos_drops, 1);
    assert_eq!(link.stats.chaos_downs, 1);
    assert_eq!(link.stats.chaos_outage, Dur::from_micros(3));
    assert_eq!(link.queue_len(), 0);
    assert_eq!(topo.net.chaos_totals().drops, 1);
}

/// While down, a link refuses arrivals outright; every refusal and the
/// initial in-service kill are chaos drops, and service resumes exactly
/// at recovery — nothing else in the run is lost.
#[test]
fn a_down_link_refuses_arrivals_and_accounts_every_loss() {
    let mut topo = line(
        1,
        Bandwidth::gbps(1),
        Dur::from_micros(5),
        TraceLevel::Delivery,
    );
    let (src, dst) = (topo.hosts[0], topo.hosts[1]);
    // 100 packets paced back-to-back at the NIC rate (12 µs apart).
    inject(
        &mut topo,
        &[FlowDesc {
            id: FlowId(0),
            src,
            dst,
            pkts: 100,
            start: Time::ZERO,
            deadline: None,
        }],
    );
    topo.net.install_chaos(Time::from_millis(10), |l| {
        (l.from == src)
            .then(|| ChaosPolicy::new(9).fail(Time::from_micros(100), Time::from_micros(220)))
    });
    topo.net.run_to_completion();

    assert_eq!(topo.net.packets_in_flight(), 0);
    let link = topo.net.links.iter().find(|l| l.from == src).unwrap();
    // Unbounded buffers: chaos is the only loss source on this link.
    assert_eq!(link.stats.dropped, link.stats.chaos_drops);
    assert_eq!(link.stats.chaos_downs, 1);
    assert_eq!(link.stats.chaos_outage, Dur::from_micros(120));
    // One in-service kill plus ~10 refused arrivals over the 120 µs window.
    assert!(
        (9..=12).contains(&link.stats.chaos_drops),
        "unexpected chaos drops: {}",
        link.stats.chaos_drops
    );
    let c = &topo.net.telemetry.counters;
    assert_eq!(c.injected, 100);
    assert_eq!(c.delivered + c.dropped, c.injected, "packet conservation");
    assert_eq!(c.dropped, link.stats.chaos_drops as u64);
    // Every survivor of the failed hop reaches the destination.
    assert_eq!(c.delivered, link.stats.tx_done);
}

/// A failure drains the whole scheduler queue through the scheduler's
/// own dequeue for every registered kind: stats stay consistent, the
/// queue and slab end empty, and post-recovery service still works.
#[test]
fn failure_drains_the_queue_consistently_under_every_scheduler() {
    for kind in SchedKind::ALL {
        let mut topo = dumbbell(
            2,
            Bandwidth::gbps(10),
            Bandwidth::gbps(1),
            Dur::from_micros(5),
            TraceLevel::Delivery,
        );
        topo.net
            .configure_links(|l| LinkPolicy::keep().scheduler(kind.build(l.id, 7)));
        let flows: Vec<FlowDesc> = (0..2)
            .map(|i| FlowDesc {
                id: FlowId(i),
                src: topo.hosts[i as usize],
                dst: topo.hosts[2 + i as usize],
                pkts: 60,
                start: Time::ZERO,
                deadline: None,
            })
            .collect();
        inject(&mut topo, &flows);
        // 2×10 Gbps offered into 1 Gbps: a deep bottleneck queue by 200 µs.
        topo.net.install_chaos(Time::from_millis(20), |l| {
            (l.bw == Bandwidth::gbps(1))
                .then(|| ChaosPolicy::new(5).fail(Time::from_micros(200), Time::from_micros(260)))
        });
        topo.net.run_to_completion();

        let label = kind.label();
        assert_eq!(topo.net.packets_in_flight(), 0, "{label}: slab leak");
        let c = &topo.net.telemetry.counters;
        assert_eq!(c.injected, 120, "{label}: injection count");
        assert_eq!(c.delivered + c.dropped, c.injected, "{label}: conservation");
        assert!(c.delivered > 0, "{label}: service never resumed");
        let bottleneck = topo
            .net
            .links
            .iter()
            .find(|l| l.bw == Bandwidth::gbps(1) && l.stats.enqueued > 0)
            .expect("loaded bottleneck link");
        assert!(
            bottleneck.stats.chaos_drops > 1,
            "{label}: failure should have drained a queue, dropped {}",
            bottleneck.stats.chaos_drops
        );
        assert_eq!(
            bottleneck.stats.dropped, bottleneck.stats.chaos_drops,
            "{label}: chaos must be the only loss source"
        );
        assert_eq!(bottleneck.queue_len(), 0, "{label}: queue not drained");
        assert_eq!(bottleneck.stats.chaos_downs, 1, "{label}: down windows");
    }
}

/// Jamming is gentler than failure: the in-service packet dies, but the
/// queue keeps its packets and accepts arrivals, so exactly one packet
/// is lost and everything else is delivered after the window closes.
#[test]
fn jamming_kills_only_the_in_service_packet_and_keeps_the_queue() {
    let mut topo = dumbbell(
        2,
        Bandwidth::gbps(10),
        Bandwidth::gbps(1),
        Dur::from_micros(5),
        TraceLevel::Delivery,
    );
    let flows: Vec<FlowDesc> = (0..2)
        .map(|i| FlowDesc {
            id: FlowId(i),
            src: topo.hosts[i as usize],
            dst: topo.hosts[2 + i as usize],
            pkts: 60,
            start: Time::ZERO,
            deadline: None,
        })
        .collect();
    inject(&mut topo, &flows);
    topo.net.install_chaos(Time::from_millis(20), |l| {
        (l.bw == Bandwidth::gbps(1)).then(|| {
            ChaosPolicy::new(4).jam(JamSpec::Periodic {
                start: Time::from_micros(200),
                period: Dur::from_millis(50),
                burst: Dur::from_micros(60),
            })
        })
    });
    topo.net.run_to_completion();

    assert_eq!(topo.net.packets_in_flight(), 0);
    let bottleneck = topo
        .net
        .links
        .iter()
        .find(|l| l.bw == Bandwidth::gbps(1) && l.stats.enqueued > 0)
        .expect("loaded bottleneck link");
    assert_eq!(bottleneck.stats.chaos_jams, 1);
    assert_eq!(
        bottleneck.stats.chaos_drops, 1,
        "a jam kills the in-service packet and nothing else"
    );
    assert_eq!(bottleneck.stats.chaos_outage, Dur::from_micros(60));
    assert_eq!(
        bottleneck.queue_len(),
        0,
        "queue must drain after the window"
    );
    let c = &topo.net.telemetry.counters;
    assert_eq!(c.injected, 120);
    assert_eq!(c.dropped, 1);
    assert_eq!(c.delivered, 119, "the surviving queue must be delivered");
}
