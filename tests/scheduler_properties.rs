//! Property-based tests of scheduler invariants: conservation (no
//! packet is lost or duplicated), ordering laws, and drop-victim
//! behavior, across every algorithm.

// Hash maps here are keyed-lookup-only (annotated in-line for the
// determinism lint); clippy's blanket type ban is relaxed file-wide.
#![allow(clippy::disallowed_types)]

use proptest::prelude::*;
use ups::net::testutil::queued_full;
use ups::net::Fifo;
use ups::net::{EvictOutcome, Queued, Scheduler};
use ups::sched::{
    drr::Drr, edf::edf, fifoplus::fifo_plus, fq::Fq, lifo::Lifo, lstf::lstf, prio::sjf,
    random::Random, srpt::Srpt, SchedKind,
};

/// A generated packet description: (flow, slack, prio, enqueue ns).
type Desc = (u64, i64, i64, u64);

fn descs() -> impl Strategy<Value = Vec<Desc>> {
    prop::collection::vec((0u64..6, 0i64..2_000_000, 0i64..1_000, 0u64..1_000), 1..60)
}

fn enqueue_all(s: &mut dyn Scheduler, items: &[Desc]) {
    for (i, &(flow, slack, prio, enq)) in items.iter().enumerate() {
        let mut q = queued_full(flow, i as u64, slack, prio, enq);
        q.arrival_seq = i as u64;
        s.enqueue(q);
    }
}

fn drain(s: &mut dyn Scheduler) -> Vec<Queued> {
    std::iter::from_fn(|| s.dequeue()).collect()
}

fn all_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fifo::new()),
        Box::new(Lifo::new()),
        Box::new(Random::new(42)),
        Box::new(sjf()),
        Box::new(Srpt::new()),
        Box::new(Fq::new()),
        Box::new(Drr::new(1500)),
        Box::new(fifo_plus()),
        Box::new(lstf()),
        Box::new(edf()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn every_scheduler_conserves_packets(items in descs()) {
        for mut s in all_schedulers() {
            enqueue_all(s.as_mut(), &items);
            prop_assert_eq!(s.len(), items.len(), "{} len", s.name());
            let out = drain(s.as_mut());
            let mut seqs: Vec<u64> = out.iter().map(|q| q.pkt.seq).collect();
            seqs.sort_unstable();
            let want: Vec<u64> = (0..items.len() as u64).collect();
            prop_assert_eq!(seqs, want, "{} lost or duplicated packets", s.name());
            prop_assert!(s.dequeue().is_none());
            prop_assert_eq!(s.len(), 0);
        }
    }

    #[test]
    fn lstf_dequeues_in_deadline_order(items in descs()) {
        let mut s = lstf();
        enqueue_all(&mut s, &items);
        let out = drain(&mut s);
        let keys: Vec<i64> = out.iter().map(|q| q.slack_deadline()).collect();
        prop_assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "out-of-order deadlines: {keys:?}"
        );
    }

    #[test]
    fn sjf_dequeues_in_priority_order(items in descs()) {
        let mut s = sjf();
        enqueue_all(&mut s, &items);
        let out = drain(&mut s);
        let prios: Vec<i64> = out.iter().map(|q| q.pkt.hdr.prio).collect();
        prop_assert!(prios.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn fifo_preserves_arrival_order(items in descs()) {
        let mut s = Fifo::new();
        enqueue_all(&mut s, &items);
        let out = drain(&mut s);
        let seqs: Vec<u64> = out.iter().map(|q| q.arrival_seq).collect();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn srpt_serves_flows_in_fcfs_within_flow(items in descs()) {
        let mut s = Srpt::new();
        enqueue_all(&mut s, &items);
        let out = drain(&mut s);
        // Within each flow, packets come out in arrival order
        // (starvation prevention: flow head first).
        let mut last_seen: std::collections::HashMap<u64, u64> = Default::default();
        for q in &out {
            if let Some(&prev) = last_seen.get(&q.pkt.flow.0) {
                prop_assert!(prev < q.arrival_seq, "flow reordered internally");
            }
            last_seen.insert(q.pkt.flow.0, q.arrival_seq);
        }
    }

    #[test]
    fn lstf_eviction_keeps_the_most_urgent(items in descs()) {
        prop_assume!(items.len() >= 2);
        let mut s = lstf();
        enqueue_all(&mut s, &items);
        // Evict against a mid-urgency probe: whatever happens, the
        // minimum deadline in the queue must never be evicted.
        let before_min = {
            let out = drain(&mut s);
            let min = out.iter().map(|q| q.slack_deadline()).min().unwrap();
            for q in out {
                s.enqueue(q);
            }
            min
        };
        let probe = queued_full(99, 999, 1_000_000, 0, 500);
        match s.evict_for(&probe) {
            EvictOutcome::Evicted(v) => {
                prop_assert!(
                    v.slack_deadline() >= before_min,
                    "evicted a packet more urgent than the minimum"
                );
            }
            EvictOutcome::DropIncoming => {}
        }
    }

    #[test]
    fn factory_builds_are_empty_and_named(seed in 0u64..100) {
        for kind in [
            SchedKind::Fifo, SchedKind::Lifo, SchedKind::Random,
            SchedKind::Priority, SchedKind::Sjf, SchedKind::Srpt,
            SchedKind::Fq, SchedKind::Drr, SchedKind::FifoPlus,
            SchedKind::Lstf, SchedKind::Edf, SchedKind::FqFifoPlusMix,
        ] {
            let s = kind.build(ups::net::LinkId(seed as u32), seed);
            prop_assert_eq!(s.len(), 0);
            prop_assert!(!s.name().is_empty());
        }
    }
}

#[test]
fn random_scheduler_is_seed_deterministic_across_drains() {
    let items: Vec<Desc> = (0..40).map(|i| (i % 5, 0, 0, i)).collect();
    let drain_with = |seed: u64| {
        let mut s = Random::new(seed);
        enqueue_all(&mut s, &items);
        drain(&mut s)
            .into_iter()
            .map(|q| q.pkt.seq)
            .collect::<Vec<_>>()
    };
    assert_eq!(drain_with(7), drain_with(7));
    assert_ne!(drain_with(7), drain_with(8));
}
